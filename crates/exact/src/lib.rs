#![warn(missing_docs)]

//! Exact optimal busy-time schedules for small instances.
//!
//! The paper evaluates its algorithms by their approximation ratios; to
//! reproduce those ratios empirically we need `OPT(J)` itself. The problem
//! is NP-hard already for `g = 2` (Winkler & Zhang, cited as \[19\]), so
//! exact solving is exponential — but branch-and-bound with the paper's own
//! lower bounds (Observation 1.1) prunes well enough for the instance sizes
//! experiments use (n ≤ ~20 per connected component).
//!
//! Two independent solvers cross-check each other:
//!
//! * [`ExactBB`] — depth-first branch-and-bound over job-to-machine
//!   assignments with machine-symmetry breaking, an incumbent warm-started
//!   by the approximation algorithms, and admissible pruning bounds.
//! * [`ExactDp`] — an O(3ⁿ) bitmask dynamic program over job subsets
//!   (machines = the parts of a set partition), for n small enough.
//!
//! Both implement [`busytime_core::algo::Scheduler`], decompose by connected
//! components first (optimal schedules never span components) and return
//! certified optimal schedules.

pub mod bb;
pub mod dp;

pub use bb::ExactBB;
pub use dp::ExactDp;
