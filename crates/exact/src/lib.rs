#![warn(missing_docs)]

//! Exact optimal busy-time schedules for small instances.
//!
//! The paper evaluates its algorithms by their approximation ratios; to
//! reproduce those ratios empirically we need `OPT(J)` itself. The problem
//! is NP-hard already for `g = 2` (Winkler & Zhang, cited as \[19\]), so
//! exact solving is exponential — but branch-and-bound with the paper's own
//! lower bounds (Observation 1.1) prunes well enough for the instance sizes
//! experiments use (n ≤ ~20 per connected component).
//!
//! Two independent solvers cross-check each other:
//!
//! * [`ExactBB`] — depth-first branch-and-bound over job-to-machine
//!   assignments with machine-symmetry breaking, an incumbent warm-started
//!   by the approximation algorithms, and admissible pruning bounds.
//! * [`ExactDp`] — an O(3ⁿ) bitmask dynamic program over job subsets
//!   (machines = the parts of a set partition), for n small enough.
//!
//! Both implement [`busytime_core::algo::Scheduler`], decompose by connected
//! components first (optimal schedules never span components) and return
//! certified optimal schedules.

pub mod bb;
pub mod dp;

pub use bb::ExactBB;
pub use dp::ExactDp;

use busytime_core::solve::SolverRegistry;

/// Registers the exact solvers onto a [`SolverRegistry`].
///
/// Both are size-guarded: they refuse components beyond their per-component
/// job limits with [`busytime_core::algo::SchedulerError::TooLarge`] rather
/// than running for exponential time, so registering them in a serving
/// registry is safe. `exact` is an alias for `exact-bb` (the solver with
/// the larger practical reach).
pub fn register(registry: &mut SolverRegistry) {
    registry.register(
        "exact-bb",
        "exact optimum by branch-and-bound (size-guarded, ≤ 24 jobs/component)",
        Some("= OPT (exponential time)"),
        Box::new(|opts| Box::new(ExactBB::new().with_warm_start(opts.warm_start.clone()))),
    );
    registry.register(
        "exact-dp",
        "exact optimum by O(3^n) bitmask DP (size-guarded, ≤ 15 jobs/component)",
        Some("= OPT (exponential time)"),
        Box::new(|_| Box::new(ExactDp::new())),
    );
    registry.alias("exact", "exact-bb");
}

#[cfg(test)]
mod registry_tests {
    use busytime_core::solve::{SolveRequest, SolverRegistry};
    use busytime_core::Instance;

    #[test]
    fn exact_solvers_register_and_solve() {
        let mut reg = SolverRegistry::with_defaults();
        super::register(&mut reg);
        let inst = Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 2);
        for key in ["exact-bb", "exact-dp", "exact"] {
            let report = SolveRequest::new(&inst)
                .solver(key)
                .solve_with(&reg)
                .unwrap();
            assert_eq!(report.cost, 8, "{key} missed the optimum");
            assert_eq!(report.gap, 1.0);
        }
    }

    #[test]
    fn size_guard_refuses_oversized_components() {
        let mut reg = SolverRegistry::with_defaults();
        super::register(&mut reg);
        // one connected component with 30 jobs exceeds both guards
        let inst = Instance::from_pairs((0..30).map(|i| (i, i + 40)), 2);
        let err = SolveRequest::new(&inst).solver("exact-dp").solve_with(&reg);
        assert!(err.is_err());
    }
}
