//! Bitmask dynamic program: an independent exact solver for tiny instances.
//!
//! A schedule is a set partition of the jobs into feasible machine loads
//! (subsets whose max overlap is ≤ g), minimizing the summed spans. The DP
//! runs over subsets: `dp[mask]` = optimal cost of scheduling exactly the
//! jobs in `mask`; transitions peel off the part containing the
//! lowest-indexed job of `mask` (canonical, so each partition is counted
//! once). `O(3ⁿ)` submask enumeration — practical to n ≈ 15, and entirely
//! different machinery from the branch-and-bound solver, which makes it a
//! strong cross-check.

use std::borrow::Cow;

use busytime_core::algo::{Decomposed, Scheduler, SchedulerError};
use busytime_core::{CancelToken, Instance, Schedule};
use busytime_interval::{span, sweep, Interval};

/// Exact optimum by bitmask DP over job subsets.
#[derive(Clone, Copy, Debug)]
pub struct ExactDp {
    /// Refuse component instances larger than this (default 15).
    pub max_jobs: usize,
}

impl Default for ExactDp {
    fn default() -> Self {
        ExactDp { max_jobs: 15 }
    }
}

impl ExactDp {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Optimal cost of an instance (convenience wrapper).
    pub fn opt_value(&self, inst: &Instance) -> Result<i64, SchedulerError> {
        Ok(self.schedule(inst)?.cost(inst))
    }

    /// How a deadline cut is reported: the DP holds no feasible incumbent
    /// until the table is complete, so expiry is *true exhaustion* —
    /// [`SchedulerError::Infeasible`] — unlike the branch-and-bound solver,
    /// which always carries a warm-start incumbent.
    fn cut_error(&self, done: usize, total: usize) -> SchedulerError {
        SchedulerError::Infeasible {
            scheduler: Scheduler::name(self).into_owned(),
            budget: format!("deadline expired after {done} of {total} DP rows"),
        }
    }

    #[allow(clippy::needless_range_loop)] // bitmask code reads clearer indexed
    fn solve_component(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let n = inst.len();
        if n == 0 {
            return Ok(Schedule::from_assignment(Vec::new()));
        }
        if n > self.max_jobs {
            return Err(SchedulerError::TooLarge {
                scheduler: Scheduler::name(self).into_owned(),
                limit: format!("component n ≤ {} (got {n})", self.max_jobs),
            });
        }
        let full = (1usize << n) - 1;
        let g = inst.g() as usize;

        // per-subset feasibility (max overlap ≤ g) and span
        let mut part_cost = vec![i64::MAX; full + 1];
        let mut scratch: Vec<Interval> = Vec::with_capacity(n);
        for mask in 1..=full {
            // cooperative deadline check per DP row (strided clock read)
            if mask & 0xFFF == 0 && cancel.is_cancelled() {
                return Err(self.cut_error(mask, full));
            }
            scratch.clear();
            for j in 0..n {
                if mask & (1 << j) != 0 {
                    scratch.push(inst.job(j));
                }
            }
            if sweep::max_overlap(&scratch) <= g {
                part_cost[mask] = span(&scratch);
            }
        }

        let mut dp = vec![i64::MAX; full + 1];
        let mut choice = vec![0usize; full + 1];
        dp[0] = 0;
        for mask in 1..=full {
            if mask & 0xFFF == 0 && cancel.is_cancelled() {
                return Err(self.cut_error(mask, full));
            }
            let low = mask & mask.wrapping_neg(); // bit of the lowest job
                                                  // iterate submasks of mask containing `low`
            let rest = mask ^ low;
            let mut sub = rest;
            loop {
                let part = sub | low;
                if part_cost[part] != i64::MAX && dp[mask ^ part] != i64::MAX {
                    let cand = dp[mask ^ part] + part_cost[part];
                    if cand < dp[mask] {
                        dp[mask] = cand;
                        choice[mask] = part;
                    }
                }
                if sub == 0 {
                    break;
                }
                sub = (sub - 1) & rest;
            }
        }

        // reconstruct the partition
        let mut assign = vec![0usize; n];
        let mut mask = full;
        let mut machine = 0usize;
        while mask != 0 {
            let part = choice[mask];
            debug_assert_ne!(part, 0, "dp must cover every non-empty mask");
            for j in 0..n {
                if part & (1 << j) != 0 {
                    assign[j] = machine;
                }
            }
            machine += 1;
            mask ^= part;
        }
        Ok(Schedule::from_assignment(assign))
    }
}

impl Scheduler for ExactDp {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("ExactDp")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        struct Component<'a>(&'a ExactDp);
        impl Scheduler for Component<'_> {
            fn name(&self) -> Cow<'static, str> {
                Cow::Borrowed("ExactDp/component")
            }
            fn schedule_with(
                &self,
                inst: &Instance,
                cancel: &CancelToken,
            ) -> Result<Schedule, SchedulerError> {
                self.0.solve_component(inst, cancel)
            }
        }
        Decomposed::new(Component(self)).schedule_with(inst, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb::ExactBB;
    use busytime_core::algo::FirstFit;
    use busytime_core::bounds;

    #[test]
    fn trivial_cases() {
        let empty = Instance::new(vec![], 2);
        assert_eq!(ExactDp::new().opt_value(&empty).unwrap(), 0);
        let single = Instance::from_pairs([(3, 9)], 4);
        assert_eq!(ExactDp::new().opt_value(&single).unwrap(), 6);
    }

    #[test]
    fn matches_hand_computed() {
        // 4 identical jobs, g = 2 → 2 machines × 10
        let inst = Instance::from_pairs([(0, 10); 4], 2);
        assert_eq!(ExactDp::new().opt_value(&inst).unwrap(), 20);
        // left/right tight family
        let inst = Instance::from_pairs([(-5, 0), (0, 5), (-5, 0), (0, 5)], 2);
        assert_eq!(ExactDp::new().opt_value(&inst).unwrap(), 10);
    }

    #[test]
    fn agrees_with_branch_and_bound() {
        let mut state = 777u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for round in 0..25 {
            let n = 5 + (next() % 6) as usize;
            let g = 1 + (next() % 4) as u32;
            let pairs: Vec<(i64, i64)> = (0..n)
                .map(|_| {
                    let s = (next() % 25) as i64;
                    let l = 1 + (next() % 10) as i64;
                    (s, s + l)
                })
                .collect();
            let inst = Instance::from_pairs(pairs, g);
            let dp = ExactDp::new().opt_value(&inst).unwrap();
            let bb = ExactBB::new().opt_value(&inst).unwrap();
            assert_eq!(dp, bb, "solvers disagree on round {round}: {inst:?}");
            assert!(dp >= bounds::component_lower_bound(&inst));
            let ff = FirstFit::paper().schedule(&inst).unwrap().cost(&inst);
            assert!(dp <= ff && ff <= 4 * dp);
        }
    }

    #[test]
    fn schedule_is_feasible_and_optimal_cost() {
        let inst = Instance::from_pairs([(0, 4), (1, 5), (3, 7), (6, 9), (0, 9)], 2);
        let sched = ExactDp::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.cost(&inst), ExactDp::new().opt_value(&inst).unwrap());
    }

    #[test]
    fn size_guard() {
        let inst = Instance::from_pairs((0..20).map(|i| (i, i + 4)), 2);
        assert!(matches!(
            ExactDp { max_jobs: 12 }.schedule(&inst),
            Err(SchedulerError::TooLarge { .. })
        ));
    }

    #[test]
    fn components_solved_independently() {
        // two far-apart components of 8 jobs each: DP handles 16 jobs via
        // decomposition even though max_jobs = 10
        let mut pairs: Vec<(i64, i64)> = (0..8).map(|i| (i, i + 3)).collect();
        pairs.extend((0..8).map(|i| (1000 + i, 1000 + i + 3)));
        let inst = Instance::from_pairs(pairs, 2);
        let sched = ExactDp { max_jobs: 10 }.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
    }
}
