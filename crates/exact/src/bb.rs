//! Branch-and-bound exact solver.

use std::borrow::Cow;

use std::collections::HashMap;

use busytime_core::algo::{
    BestFit, Decomposed, FirstFit, NextFitProper, Scheduler, SchedulerError,
};
use busytime_core::memo::WarmStart;
use busytime_core::{bounds, CancelToken, Instance, MachineLoad, Schedule};
use busytime_interval::{Interval, IntervalSet};

/// Exact optimum by depth-first branch-and-bound.
///
/// ```
/// use busytime_core::Instance;
/// use busytime_exact::ExactBB;
/// // the clique-tight family: the optimum groups the sides
/// let inst = Instance::from_pairs([(-5, 0), (0, 5), (-5, 0), (0, 5)], 2);
/// assert_eq!(ExactBB::new().opt_value(&inst).unwrap(), 10);
/// ```
///
/// Search space: jobs in non-decreasing start order; each job goes to one of
/// the machines opened so far (if it fits) or to exactly *one* fresh machine
/// (machines are interchangeable, so multiple "new machine" branches would
/// be symmetric duplicates).
///
/// Pruning (admissible — never cuts an optimal branch):
/// * incumbent: cost already ≥ best known complete schedule (warm-started
///   with FirstFit / BestFit / NextFit);
/// * coverage: the final cost is at least the current busy total plus the
///   measure of `∪(remaining jobs) \ ∪(current busy sets)` — uncovered time
///   where some remaining job is active forces some machine to become busy;
/// * global: Observation 1.1's `max(⌈len/g⌉, span)` per component.
#[derive(Clone, Debug)]
pub struct ExactBB {
    /// Refuse component instances larger than this (default 24).
    pub max_jobs: usize,
    /// Abort after this many search nodes (default 200 million).
    pub node_budget: u64,
    /// A machine-grouping hint from a cached near-match solution (see
    /// [`busytime_core::memo`]): jobs hinted to the same label start on
    /// one machine, and the resulting candidate seeds the incumbent when
    /// it beats the approximation warm starts. Purely an accelerator —
    /// the search still certifies optimality.
    pub warm: Option<WarmStart>,
}

impl Default for ExactBB {
    fn default() -> Self {
        ExactBB {
            max_jobs: 24,
            node_budget: 200_000_000,
            warm: None,
        }
    }
}

impl ExactBB {
    /// Default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Configuration with a custom per-component job limit.
    pub fn with_max_jobs(max_jobs: usize) -> Self {
        ExactBB {
            max_jobs,
            ..Self::default()
        }
    }

    /// Attaches (or clears) a near-match warm-start hint.
    pub fn with_warm_start(mut self, warm: Option<WarmStart>) -> Self {
        self.warm = warm;
        self
    }

    /// Optimal cost of an instance (convenience wrapper).
    pub fn opt_value(&self, inst: &Instance) -> Result<i64, SchedulerError> {
        Ok(self.schedule(inst)?.cost(inst))
    }

    fn solve_component(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let n = inst.len();
        if n == 0 {
            return Ok(Schedule::from_assignment(Vec::new()));
        }
        if n > self.max_jobs {
            return Err(SchedulerError::TooLarge {
                scheduler: Scheduler::name(self).into_owned(),
                limit: format!("component n ≤ {} (got {n})", self.max_jobs),
            });
        }

        // warm start: best of the approximation algorithms
        let mut incumbent: Option<(i64, Vec<usize>)> = None;
        for warm in [
            FirstFit::paper().schedule(inst),
            BestFit.schedule(inst),
            NextFitProper::new().schedule(inst),
        ]
        .into_iter()
        .flatten()
        {
            let cost = warm.cost(inst);
            if incumbent.as_ref().is_none_or(|(c, _)| cost < *c) {
                incumbent = Some((cost, warm.assignment().to_vec()));
            }
        }
        // a cached near-match grouping, when supplied, competes with the
        // approximations for the starting incumbent
        if let Some(warm) = &self.warm {
            if let Some((cost, assign)) = warm_candidate(inst, warm) {
                if incumbent.as_ref().is_none_or(|(c, _)| cost < *c) {
                    incumbent = Some((cost, assign));
                }
            }
        }
        let (mut best_cost, mut best_assign) = incumbent.expect("warm start always succeeds");
        let global_lb = bounds::lower_bound(inst);

        if best_cost == global_lb {
            return Ok(Schedule::from_assignment(best_assign));
        }
        // an already-expired token means no search at all: the warm-start
        // incumbent is the answer (feasible, flagged upstream)
        if cancel.is_cancelled() {
            return Ok(Schedule::from_assignment(best_assign));
        }

        // jobs in start order; suffix union sets for the coverage bound
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (inst.job(i).start, inst.job(i).end));
        let mut suffix_union: Vec<IntervalSet> = vec![IntervalSet::new(); n + 1];
        for pos in (0..n).rev() {
            let mut set = suffix_union[pos + 1].clone();
            set.insert(inst.job(order[pos]));
            suffix_union[pos] = set;
        }

        struct Ctx<'a> {
            inst: &'a Instance,
            order: &'a [usize],
            suffix_union: &'a [IntervalSet],
            global_lb: i64,
            best_cost: i64,
            best_assign: Vec<usize>,
            assign: Vec<usize>,
            nodes: u64,
            node_budget: u64,
            exhausted: bool,
            cancel: &'a CancelToken,
            /// Latched when `cancel` fires at a branch checkpoint; the
            /// search unwinds and the incumbent is returned.
            cut: bool,
        }

        fn busy_total(machines: &[MachineLoad]) -> i64 {
            machines.iter().map(|m| m.busy_time()).sum()
        }

        fn uncovered(remaining: &IntervalSet, machines: &[MachineLoad]) -> i64 {
            // measure of remaining-union not covered by any machine's busy set
            let mut covered = IntervalSet::new();
            for m in machines {
                covered = covered.union(m.busy_set());
            }
            remaining.measure() - remaining.intersection(&covered).measure()
        }

        fn dfs(ctx: &mut Ctx<'_>, pos: usize, machines: &mut Vec<MachineLoad>) {
            ctx.nodes += 1;
            if ctx.nodes > ctx.node_budget {
                ctx.exhausted = true;
                return;
            }
            // cooperative deadline check at branch granularity; the stride
            // keeps the clock read off the per-node hot path
            if ctx.nodes & 0x3FF == 0 && ctx.cancel.is_cancelled() {
                ctx.cut = true;
                return;
            }
            let current = busy_total(machines);
            if pos == ctx.order.len() {
                if current < ctx.best_cost {
                    ctx.best_cost = current;
                    ctx.best_assign = ctx.assign.clone();
                }
                return;
            }
            // admissible bound
            let bound = current + uncovered(&ctx.suffix_union[pos], machines);
            if bound.max(ctx.global_lb) >= ctx.best_cost {
                return;
            }
            let job_id = ctx.order[pos];
            let iv = ctx.inst.job(job_id);
            let g = ctx.inst.g();
            // children: existing machines (cheapest busy growth first), then
            // one fresh machine
            let mut children: Vec<(i64, usize)> = machines
                .iter()
                .enumerate()
                .filter(|(_, m)| m.can_fit(&iv, g))
                .map(|(idx, m)| (m.busy_increase(&iv), idx))
                .collect();
            children.sort_unstable();
            for (_, idx) in children {
                machines[idx].push(job_id, &iv);
                ctx.assign[job_id] = idx;
                dfs(ctx, pos + 1, machines);
                if ctx.exhausted || ctx.cut {
                    return;
                }
                // rebuild the machine without the job (MachineLoad has no
                // pop; reconstruct — cheap at these sizes)
                let rebuilt = rebuild_without(ctx.inst, machines[idx].jobs(), job_id);
                machines[idx] = rebuilt;
            }
            // one fresh machine (symmetry breaking)
            let mut fresh = MachineLoad::new();
            fresh.push(job_id, &iv);
            machines.push(fresh);
            ctx.assign[job_id] = machines.len() - 1;
            dfs(ctx, pos + 1, machines);
            machines.pop();
        }

        fn rebuild_without(inst: &Instance, jobs: &[usize], drop: usize) -> MachineLoad {
            let mut m = MachineLoad::new();
            let mut dropped = false;
            for &j in jobs {
                if j == drop && !dropped {
                    dropped = true;
                    continue;
                }
                m.push(j, &inst.job(j));
            }
            m
        }

        let mut ctx = Ctx {
            inst,
            order: &order,
            suffix_union: &suffix_union,
            global_lb,
            best_cost,
            best_assign: std::mem::take(&mut best_assign),
            assign: vec![0usize; n],
            nodes: 0,
            node_budget: self.node_budget,
            exhausted: false,
            cancel,
            cut: false,
        };
        let mut machines: Vec<MachineLoad> = Vec::new();
        dfs(&mut ctx, 0, &mut machines);
        if ctx.exhausted {
            return Err(SchedulerError::TooLarge {
                scheduler: String::from("ExactBB"),
                limit: format!("node budget {} exhausted", self.node_budget),
            });
        }
        // a cut search returns its incumbent (the warm start guarantees
        // one exists) — feasible but no longer certified optimal; the
        // pipeline flags the report `deadline_hit`
        best_cost = ctx.best_cost;
        let _ = best_cost;
        Ok(Schedule::from_assignment(ctx.best_assign))
    }
}

/// Builds a feasible candidate from a [`WarmStart`] hint: jobs whose
/// interval occurrence carries a cached machine label are grouped with
/// their label-mates (capacity permitting); everything else — and any
/// hinted job its label machine can no longer hold — falls back to first
/// fit. Returns the candidate's cost and assignment, or `None` when the
/// hint labels none of this component's jobs.
fn warm_candidate(inst: &Instance, warm: &WarmStart) -> Option<(i64, Vec<usize>)> {
    let n = inst.len();
    let g = inst.g();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| (inst.job(i).start, inst.job(i).end));
    let mut machines: Vec<MachineLoad> = Vec::new();
    let mut label_machine: HashMap<usize, usize> = HashMap::new();
    let mut occurrence: HashMap<Interval, usize> = HashMap::new();
    let mut assign = vec![0usize; n];
    let mut hinted_jobs = 0usize;
    for &i in &order {
        let iv = inst.job(i);
        let occ = {
            let count = occurrence.entry(iv).or_insert(0);
            let o = *count;
            *count += 1;
            o
        };
        let hint = warm.labels(&iv).and_then(|labels| labels.get(occ)).copied();
        if hint.is_some() {
            hinted_jobs += 1;
        }
        let target = hint.and_then(|label| match label_machine.get(&label).copied() {
            Some(m) if machines[m].can_fit(&iv, g) => Some(m),
            // the label's machine is full here (the near match differed
            // around this job) — first-fit below
            Some(_) => None,
            None => {
                machines.push(MachineLoad::new());
                let m = machines.len() - 1;
                label_machine.insert(label, m);
                Some(m)
            }
        });
        let m = target.unwrap_or_else(|| {
            (0..machines.len())
                .find(|&m| machines[m].can_fit(&iv, g))
                .unwrap_or_else(|| {
                    machines.push(MachineLoad::new());
                    machines.len() - 1
                })
        });
        machines[m].push(i, &iv);
        assign[i] = m;
    }
    if hinted_jobs == 0 {
        return None;
    }
    Some((machines.iter().map(MachineLoad::busy_time).sum(), assign))
}

impl Scheduler for ExactBB {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("ExactBB")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        // optimal schedules never span components: solve per component
        struct Component<'a>(&'a ExactBB);
        impl Scheduler for Component<'_> {
            fn name(&self) -> Cow<'static, str> {
                Cow::Borrowed("ExactBB/component")
            }
            fn schedule_with(
                &self,
                inst: &Instance,
                cancel: &CancelToken,
            ) -> Result<Schedule, SchedulerError> {
                self.0.solve_component(inst, cancel)
            }
        }
        Decomposed::new(Component(self)).schedule_with(inst, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cases() {
        let empty = Instance::new(vec![], 2);
        assert_eq!(ExactBB::new().opt_value(&empty).unwrap(), 0);
        let single = Instance::from_pairs([(3, 9)], 2);
        assert_eq!(ExactBB::new().opt_value(&single).unwrap(), 6);
    }

    #[test]
    fn g1_is_total_len() {
        let inst = Instance::from_pairs([(0, 5), (2, 8), (4, 9), (10, 12)], 1);
        assert_eq!(ExactBB::new().opt_value(&inst).unwrap(), inst.total_len());
    }

    #[test]
    fn identical_stack_packs_exactly() {
        // 6 copies of [0,10], g = 3 → two machines, cost 20
        let inst = Instance::from_pairs([(0, 10); 6], 3);
        assert_eq!(ExactBB::new().opt_value(&inst).unwrap(), 20);
    }

    #[test]
    fn grouping_beats_interleaving() {
        // the clique tight family: OPT groups sides → 2L
        let l = 50i64;
        let inst = Instance::from_pairs([(-l, 0), (0, l), (-l, 0), (0, l)], 2);
        let sched = ExactBB::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.cost(&inst), 2 * l);
        // the two lefts share a machine
        assert_eq!(sched.machine_of(0), sched.machine_of(2));
    }

    #[test]
    fn fig4_instance_opt_is_g_plus_1() {
        // Fig. 4 scaled to ticks: unit = 12, ε' = 1. g left jobs [0,12],
        // g right jobs [22,34], g(g−1) middle jobs [11,23]. OPT packs each
        // group onto its own machines: 12·(g+1).
        let g = 3u32;
        let unit = 12i64;
        let eps = 1i64;
        let mut pairs = Vec::new();
        for _ in 0..g {
            pairs.push((0, unit));
            pairs.push((2 * unit - 2 * eps, 3 * unit - 2 * eps));
        }
        for _ in 0..(g * (g - 1)) {
            pairs.push((unit - eps, 2 * unit - eps));
        }
        let inst = Instance::from_pairs(pairs, g);
        let opt = ExactBB::new().opt_value(&inst).unwrap();
        assert_eq!(opt, unit * i64::from(g + 1));
    }

    #[test]
    fn never_above_approximations_nor_below_bound() {
        // deterministic pseudo-random small instances
        let mut state = 12345u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..15 {
            let n = 6 + (next() % 6) as usize;
            let pairs: Vec<(i64, i64)> = (0..n)
                .map(|_| {
                    let s = (next() % 30) as i64;
                    let l = 1 + (next() % 12) as i64;
                    (s, s + l)
                })
                .collect();
            let inst = Instance::from_pairs(pairs, 2 + (next() % 3) as u32);
            let opt = ExactBB::new().opt_value(&inst).unwrap();
            assert!(opt >= bounds::component_lower_bound(&inst));
            let ff = FirstFit::paper().schedule(&inst).unwrap().cost(&inst);
            assert!(opt <= ff);
            assert!(ff <= 4 * opt, "Theorem 2.1 violated: FF={ff}, OPT={opt}");
        }
    }

    #[test]
    fn size_guard() {
        let inst = Instance::from_pairs((0..30).map(|i| (i, i + 5)), 2);
        assert!(matches!(
            ExactBB::with_max_jobs(10).schedule(&inst),
            Err(SchedulerError::TooLarge { .. })
        ));
    }
}
