//! Property tests: the two exact solvers agree with each other and sandwich
//! every approximation algorithm.

use busytime_core::algo::{BestFit, CliqueScheduler, FirstFit, NextFitProper, Scheduler};
use busytime_core::{bounds, Instance};
use busytime_exact::{ExactBB, ExactDp};
use busytime_interval::Interval;
use proptest::prelude::*;

fn arb_small_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0i64..30, 1i64..12), 1..10),
        1u32..5,
    )
        .prop_map(|(pairs, g)| {
            Instance::new(
                pairs
                    .into_iter()
                    .map(|(s, l)| Interval::with_len(s, l))
                    .collect(),
                g,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Branch-and-bound and bitmask DP compute the same optimum.
    #[test]
    fn solvers_agree(inst in arb_small_instance()) {
        let bb = ExactBB::new().opt_value(&inst).unwrap();
        let dp = ExactDp::new().opt_value(&inst).unwrap();
        prop_assert_eq!(bb, dp);
    }

    /// OPT is sandwiched: LB ≤ OPT ≤ every algorithm; FirstFit ≤ 4·OPT,
    /// BestFit/NextFit feasible.
    #[test]
    fn opt_sandwich(inst in arb_small_instance()) {
        let opt = ExactBB::new().opt_value(&inst).unwrap();
        prop_assert!(bounds::component_lower_bound(&inst) <= opt);
        prop_assert!(bounds::best_lower_bound(&inst) <= opt);
        for (cap, sched) in [
            (4, FirstFit::paper().schedule(&inst).unwrap()),
            (i64::MAX, BestFit.schedule(&inst).unwrap()),
            (i64::MAX, NextFitProper::new().schedule(&inst).unwrap()),
        ] {
            let cost = sched.cost(&inst);
            prop_assert!(cost >= opt);
            if cap != i64::MAX {
                prop_assert!(cost <= cap * opt);
            }
        }
    }

    /// The optimal schedule itself is feasible and achieves the optimal value.
    #[test]
    fn optimal_schedule_is_feasible(inst in arb_small_instance()) {
        let sched = ExactBB::new().schedule(&inst).unwrap();
        prop_assert_eq!(sched.validate(&inst), Ok(()));
        let dp_sched = ExactDp::new().schedule(&inst).unwrap();
        prop_assert_eq!(dp_sched.validate(&inst), Ok(()));
        prop_assert_eq!(sched.cost(&inst), dp_sched.cost(&inst));
    }

    /// On clique instances the δ-bound (Theorem A.1's proof) stays below OPT
    /// and the clique algorithm stays below 2·OPT.
    #[test]
    fn clique_delta_bound_below_opt(
        pairs in proptest::collection::vec((0i64..=20, 20i64..40), 1..9),
        g in 1u32..4,
    ) {
        let inst = Instance::new(
            pairs.into_iter().map(|(s, c)| Interval::new(s, c)).collect(),
            g,
        );
        prop_assert!(inst.is_clique());
        let opt = ExactBB::new().opt_value(&inst).unwrap();
        let delta = bounds::clique_delta_bound(&inst).unwrap();
        prop_assert!(delta <= opt, "delta bound {delta} exceeds OPT {opt}");
        let alg = CliqueScheduler::new().schedule(&inst).unwrap().cost(&inst);
        prop_assert!(alg <= 2 * opt);
        // the Theorem A.1 analysis in fact bounds ALG by 2·delta-bound
        prop_assert!(alg <= 2 * delta, "ALG {alg} above twice the delta bound {delta}");
    }

    /// The literal guess-plus-b-matching pipeline (Section 3.2's per-segment
    /// solver) is exact on instances within its size guard: the integral
    /// window grid makes the paper's (1+ε) rounding lossless.
    #[test]
    fn guess_match_is_exact(
        pairs in proptest::collection::vec((0i64..16, 1i64..8), 1..6),
        g in 1u32..4,
    ) {
        use busytime_core::algo::GuessMatch;
        let inst = Instance::new(
            pairs.into_iter().map(|(s, l)| Interval::with_len(s, l)).collect(),
            g,
        );
        let gm = GuessMatch::new().schedule(&inst).unwrap();
        prop_assert_eq!(gm.validate(&inst), Ok(()));
        let opt = ExactDp::new().opt_value(&inst).unwrap();
        prop_assert_eq!(gm.cost(&inst), opt);
    }

    /// Adding a job never decreases the optimum (monotonicity).
    #[test]
    fn opt_is_monotone(inst in arb_small_instance(), s in 0i64..30, l in 1i64..12) {
        let base = ExactDp::new().opt_value(&inst).unwrap();
        let mut jobs = inst.jobs().to_vec();
        jobs.push(Interval::with_len(s, l));
        let bigger = Instance::new(jobs, inst.g());
        let grown = ExactDp::new().opt_value(&bigger).unwrap();
        prop_assert!(grown >= base);
    }

    /// Raising g never increases the optimum.
    #[test]
    fn opt_antitone_in_g(inst in arb_small_instance()) {
        let opt = ExactDp::new().opt_value(&inst).unwrap();
        let relaxed = Instance::new(inst.jobs().to_vec(), inst.g() + 1);
        let opt_relaxed = ExactDp::new().opt_value(&relaxed).unwrap();
        prop_assert!(opt_relaxed <= opt);
    }
}
