//! Warm-start integration: a cached near-match solution handed to
//! `exact-bb` as a [`busytime_core::memo::WarmStart`] must (a) preserve
//! optimality and (b) beat the cold solve on an adversarial instance where
//! the approximation incumbents are weak.

use std::time::{Duration, Instant};

use busytime_core::memo::{CanonicalInstance, SolutionCache, SolveFingerprint, WarmStart};
use busytime_core::solve::{SolveRequest, SolverRegistry, WARM_EDIT_BUDGET};
use busytime_core::Instance;

/// The Figure 4 adversarial family scaled to ticks (`unit = 12`, `ε' = 1`):
/// `g` lefts `[0,12]`, `g(g−1)` middles `[11,23]`, `g` rights `[22,34]`.
/// FirstFit's incumbent is ~3× OPT here, so branch-and-bound gets little
/// pruning for free — the family the paper builds to defeat greedy is also
/// the one where a cached neighbor's optimum helps most.
fn fig4_pairs(g: u32) -> Vec<(i64, i64)> {
    let (unit, eps) = (12i64, 1i64);
    let mut pairs = Vec::new();
    for _ in 0..g {
        pairs.push((0, unit));
        pairs.push((2 * unit - 2 * eps, 3 * unit - 2 * eps));
    }
    for _ in 0..(g * (g - 1)) {
        pairs.push((unit - eps, 2 * unit - eps));
    }
    pairs
}

fn registry() -> SolverRegistry {
    let mut reg = SolverRegistry::with_defaults();
    busytime_exact::register(&mut reg);
    reg
}

fn solve_cold(reg: &SolverRegistry, inst: &Instance) -> (i64, Duration) {
    let t = Instant::now();
    let report = SolveRequest::new(inst)
        .solver("exact-bb")
        .solve_with(reg)
        .unwrap();
    (report.cost, t.elapsed())
}

fn solve_warm(reg: &SolverRegistry, inst: &Instance, warm: &WarmStart) -> (i64, Duration) {
    let t = Instant::now();
    let report = SolveRequest::new(inst)
        .solver("exact-bb")
        .warm_start(warm.clone())
        .solve_with(reg)
        .unwrap();
    (report.cost, t.elapsed())
}

#[test]
fn warm_hint_preserves_optimality() {
    let reg = registry();
    let g = 3u32;
    let target = Instance::from_pairs(fig4_pairs(g), g);

    // neighbor: the same instance minus its last middle job (±1 edit)
    let mut neighbor_pairs = fig4_pairs(g);
    neighbor_pairs.pop();
    let neighbor = Instance::from_pairs(neighbor_pairs, g);

    let cache = SolutionCache::new(16);
    let fp = SolveFingerprint {
        solver: "exact-bb".to_string(),
        seed: 0,
        decompose: true,
    };
    let report = SolveRequest::new(&neighbor)
        .solver("exact-bb")
        .solve_with(&reg)
        .unwrap();
    cache.insert(&CanonicalInstance::of(&neighbor), &fp, &report);

    let warm = cache
        .warm_hint(&CanonicalInstance::of(&target), WARM_EDIT_BUDGET)
        .expect("±1-job neighbor is within the edit budget");
    assert!(!warm.is_empty());

    let (cold_cost, _) = solve_cold(&reg, &target);
    let (warm_cost, _) = solve_warm(&reg, &target, &warm);
    assert_eq!(warm_cost, cold_cost, "warm start changed the optimum");
    assert_eq!(cold_cost, 12 * i64::from(g + 1), "Fig. 4 OPT is (g+1)·unit");
    assert_eq!(cache.stats().warm_starts, 1);
}

/// The "double decoy" adversarial instance (`g = 3`, 20 jobs, one
/// component). `OPT = ⌈W/g⌉ = 210` — the lower bound is tight — yet every
/// incumbent heuristic lands strictly above it, so a cold `exact-bb` run
/// must *search* to prove optimality while a warm start whose candidate
/// hits the bound returns before expanding a single node.
///
/// Two decoy traps, one per processing order, each burning one tick of the
/// `g − 1 = 2` waste budget:
///
/// * **Trap B** (start-ordered greedy): the decoy triple `DB = [10,59]³`
///   sorts *before* the rightful tile `TB2 = [10,60]`, and slots into the
///   `LB = [0,60]²` machine at zero busy increase — blocking `TB2` into
///   one tick of overlap waste elsewhere. Catches NextFit and the
///   branch-and-bound's cheapest-increase-first descent.
/// * **Trap A** (length-ordered greedy): the decoy triple `DA = [70,107]³`
///   is *longer* than the rightful tile `TA2 = [70,106]`, so FirstFit and
///   BestFit place a `DA` into the `LA = [58,106]²` machine's one-deep
///   slot first — one tick of waste again.
///
/// The filler triples under the already-covered `[0,60]` span are
/// invisible to the uncovered-suffix bound, so the wrong subtree below
/// trap B is enumerated rather than pruned: the cold solve costs ≈10⁶
/// nodes (≈1 s unoptimized) against the warm start's zero.
fn double_decoy_pairs() -> Vec<(i64, i64)> {
    let mut pairs = vec![
        (0, 9),  // TB1
        (0, 60), // LB ×2
        (0, 60),
        (10, 59), // DB ×3 — decoy triple, sorts before TB2
        (10, 59),
        (10, 59),
        (10, 60), // TB2 — rightful fourth job of the LB machine
    ];
    for &(a, b) in &[(12, 20), (22, 30)] {
        pairs.extend([(a, b); 3]); // covered-span fillers
    }
    pairs.extend([
        (58, 69),  // TA1
        (58, 106), // LA ×2
        (58, 106),
        (70, 106), // TA2 — rightful fourth job of the LA machine
        (70, 107), // DA ×3 — decoy triple, longer than TA2
        (70, 107),
        (70, 107),
    ]);
    pairs
}

#[test]
fn warm_start_beats_cold_solve_on_adversarial_neighbor() {
    use busytime_core::algo::{BestFit, FirstFit, NextFitProper, Scheduler};
    use busytime_core::bounds;

    let reg = registry();
    let target = Instance::from_pairs(double_decoy_pairs(), 3);

    // The construction this test rests on: a tight bound that no
    // incumbent heuristic reaches, so cold B&B has real work to do.
    let lb = bounds::lower_bound(&target);
    assert_eq!(lb, 210, "double-decoy lower bound is ⌈W/g⌉ = 210");
    for (name, sched) in [
        ("first-fit", FirstFit::paper().schedule(&target)),
        ("best-fit", BestFit.schedule(&target)),
        ("next-fit", NextFitProper::new().schedule(&target)),
    ] {
        let cost = sched.expect("heuristic schedules").cost(&target);
        assert!(cost > lb, "{name} reached the bound ({cost}), trap broken");
    }

    // neighbor: the target plus one far-away disjoint job (±1 edit)
    let mut neighbor_pairs = double_decoy_pairs();
    neighbor_pairs.push((500, 510));
    let neighbor = Instance::from_pairs(neighbor_pairs, 3);

    let cache = SolutionCache::new(16);
    let fp = SolveFingerprint {
        solver: "exact-bb".to_string(),
        seed: 0,
        decompose: true,
    };
    let report = SolveRequest::new(&neighbor)
        .solver("exact-bb")
        .solve_with(&reg)
        .unwrap();
    assert_eq!(report.cost, 220, "neighbor optimum is OPT + |extra job|");
    cache.insert(&CanonicalInstance::of(&neighbor), &fp, &report);
    let warm = cache
        .warm_hint(&CanonicalInstance::of(&target), WARM_EDIT_BUDGET)
        .expect("±1-job neighbor is within the edit budget");

    // One timed run each way: the gap is the zero-node early return vs a
    // ~10⁶-node search — four orders of magnitude, not a scheduler coin
    // flip — so demand a 10× margin outright.
    let cold = solve_cold(&reg, &target);
    let warm_run = solve_warm(&reg, &target, &warm);
    println!("cold: {:?}  warm: {:?}", cold.1, warm_run.1);
    assert_eq!(warm_run.0, cold.0, "warm start changed the optimum");
    assert_eq!(cold.0, lb, "exact optimum meets the tight bound");
    assert!(
        warm_run.1.as_nanos() * 10 < cold.1.as_nanos(),
        "warm-started solve ({:?}) not ≥10× faster than cold ({:?})",
        warm_run.1,
        cold.1
    );
}
