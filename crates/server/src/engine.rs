//! The batch solve engine: NDJSON in, NDJSON out, a worker pool in the
//! middle.
//!
//! [`serve`] reads request lines in chunks, runs batched feature detection
//! (each distinct instance is detected once per batch — repeated identical
//! instances hit a hash-keyed cache), fans the solves of a chunk out over a
//! fixed pool of [`busytime_core::pool`] workers, and streams exactly one
//! response line per request line, in input order. Order is guaranteed by
//! construction: the pool writes results into input-order slots and the
//! writer drains chunks sequentially.
//!
//! Deadlines are enforced at the pool layer: each record's budget (its
//! `deadline_ms`, else the batch default) arms a
//! [`busytime_core::CancelToken`] when a worker picks the record up, the
//! token rides through the solve pipeline into every solver loop, and the
//! pool independently stamps each completion `over_deadline` when its own
//! clock says the budget was blown — so even a solver that misses its
//! cooperative check is counted in [`BatchSummary::deadline_hits`], and one
//! pathological record can no longer pin a worker for seconds.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::io::{BufRead, Write};
use std::time::{Duration, Instant};

use busytime_core::algo::SchedulerError;
use busytime_core::pool::{default_workers, par_map_deadline_with, par_map_with};
use busytime_core::solve::{SolveError, SolveOptions, SolverRegistry, REPORT_SCHEMA_VERSION};
use busytime_core::{Instance, InstanceFeatures, SolveRequest};

use crate::protocol::{error_line, report_line, BatchRecord};

/// What the engine does when a line fails to parse or solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ErrorPolicy {
    /// Emit a structured error line for the failed record and keep going
    /// (the default — a batch is many independent instances).
    #[default]
    KeepGoing,
    /// Stop at the first failure; [`serve`] returns
    /// [`ServeError::FailFast`]. Lines before the failure are already
    /// written.
    FailFast,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads for the solve pool (`0` = every available core).
    pub workers: usize,
    /// Registry key used when a record names no solver.
    pub default_solver: String,
    /// Failure handling.
    pub error_policy: ErrorPolicy,
    /// Records per dispatch wave (`0` = sized from the worker count).
    /// Smaller chunks stream earlier; larger chunks amortize pool startup.
    pub chunk_size: usize,
    /// Base options for every record (per-record fields override).
    pub base_options: SolveOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            default_solver: "auto".to_string(),
            error_policy: ErrorPolicy::KeepGoing,
            chunk_size: 0,
            base_options: SolveOptions::default(),
        }
    }
}

/// Why [`serve`] aborted.
#[derive(Debug)]
pub enum ServeError {
    /// Reading input or writing output failed.
    Io(std::io::Error),
    /// A record failed under [`ErrorPolicy::FailFast`].
    FailFast {
        /// 1-based input line of the failed record.
        line: usize,
        /// The record's id, when it parsed far enough to have one.
        id: Option<String>,
        /// Human-readable cause.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::FailFast { line, id, message } => match id {
                Some(id) => write!(f, "line {line} (id {id}): {message}"),
                None => write!(f, "line {line}: {message}"),
            },
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Aggregate statistics over one served batch.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// Records processed (blank input lines are skipped and not counted).
    pub records: usize,
    /// Records solved successfully.
    pub solved: usize,
    /// Records answered with an error line.
    pub errors: usize,
    /// Summed busy time over solved records.
    pub total_cost: i64,
    /// Summed certified lower bounds over solved records.
    pub total_lower_bound: i64,
    /// `total_cost / total_lower_bound` (`1.0` when the bound sum is 0).
    pub aggregate_gap: f64,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Solved records per wall-clock second.
    pub throughput: f64,
    /// Median per-record solve latency.
    pub p50_solve: Duration,
    /// 99th-percentile per-record solve latency.
    pub p99_solve: Duration,
    /// Feature-cache hits (records whose instance was already detected).
    pub cache_hits: usize,
    /// Feature-cache misses (distinct instances detected).
    pub cache_misses: usize,
    /// Workers the pool actually used.
    pub workers: usize,
    /// Records whose deadline cut the solve: the report came back flagged
    /// `deadline_hit`, the solver refused with `Infeasible` under a
    /// budget, or the pool's own clock caught the worker over its budget
    /// (the enforcement of last resort for uncooperative solves). These
    /// records are excluded from `p50_solve`/`p99_solve`, which describe
    /// unaffected records only.
    pub deadline_hits: usize,
}

impl BatchSummary {
    /// One summary JSON line (no trailing newline), for machine consumers.
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"schema_version\": {REPORT_SCHEMA_VERSION}, \"records\": {}, \"solved\": {}, \
             \"errors\": {}, \"total_cost\": {}, \"total_lower_bound\": {}, \
             \"aggregate_gap\": {:.6}, \"wall_ms\": {:.3}, \"throughput_per_s\": {:.3}, \
             \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hits\": {}, \"cache_misses\": {}, \
             \"workers\": {}, \"deadline_hits\": {}}}",
            self.records,
            self.solved,
            self.errors,
            self.total_cost,
            self.total_lower_bound,
            self.aggregate_gap,
            self.wall.as_secs_f64() * 1e3,
            self.throughput,
            self.p50_solve.as_secs_f64() * 1e3,
            self.p99_solve.as_secs_f64() * 1e3,
            self.cache_hits,
            self.cache_misses,
            self.workers,
            self.deadline_hits,
        )
    }
}

impl std::fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} records ({} solved, {} errors) in {:.2} s | {:.0} rec/s | {} workers",
            self.records,
            self.solved,
            self.errors,
            self.wall.as_secs_f64(),
            self.throughput,
            self.workers,
        )?;
        write!(
            f,
            "solve latency: p50 {:.2} ms, p99 {:.2} ms (unaffected records) | \
             aggregate gap ≤ {:.3} | deadline hits: {} | \
             feature cache: {} hits / {} misses",
            self.p50_solve.as_secs_f64() * 1e3,
            self.p99_solve.as_secs_f64() * 1e3,
            self.aggregate_gap,
            self.deadline_hits,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

/// Hash-keyed feature cache; buckets hold `(Instance, features)` pairs so
/// a hash collision degrades to an equality scan, never a wrong answer.
///
/// Bounded: once [`FeatureCache::CAP`] distinct instances are cached the
/// whole cache is dropped and refilled (epoch eviction). A long-lived
/// `serve` stream of mostly-distinct instances therefore holds at most
/// one epoch of clones, while the intended repeat-heavy workloads keep
/// their hits.
#[derive(Default)]
struct FeatureCache {
    buckets: HashMap<u64, Vec<(Instance, InstanceFeatures)>>,
    entries: usize,
}

fn instance_key(inst: &Instance) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    inst.g().hash(&mut h);
    inst.jobs().hash(&mut h);
    h.finish()
}

impl FeatureCache {
    /// Distinct instances retained before the epoch resets.
    const CAP: usize = 4096;

    fn get(&self, key: u64, inst: &Instance) -> Option<&InstanceFeatures> {
        self.buckets
            .get(&key)?
            .iter()
            .find(|(cached, _)| cached == inst)
            .map(|(_, features)| features)
    }

    fn insert(&mut self, key: u64, inst: Instance, features: InstanceFeatures) {
        if self.entries >= Self::CAP {
            self.buckets.clear();
            self.entries = 0;
        }
        self.buckets.entry(key).or_default().push((inst, features));
        self.entries += 1;
    }
}

/// One record of a chunk, in input order.
enum Entry {
    /// The line failed to parse; answer with an error line.
    Bad { line: usize, message: String },
    /// The line parsed; `item` indexes the chunk's solve items.
    Solve { item: usize },
}

struct SolveItem {
    line: usize,
    record: BatchRecord,
    inst: Instance,
    /// [`instance_key`] of `inst`, computed once at parse time.
    key: u64,
    /// Filled by the chunk's batched detection pass before solving.
    features: Option<InstanceFeatures>,
    /// Effective solve budget: the record's `deadline_ms`, else the
    /// batch-level default. The *pool* arms the token with it at pickup,
    /// so the clock starts when a worker takes the record, not when the
    /// batch starts queuing.
    budget: Option<Duration>,
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Streams one response line per request line from `input` to `out`.
///
/// Returns the batch summary on success; under
/// [`ErrorPolicy::FailFast`] the first failed record aborts the batch with
/// [`ServeError::FailFast`] (lines before it are already written).
pub fn serve<R: BufRead, W: Write>(
    mut input: R,
    mut out: W,
    registry: &SolverRegistry,
    config: &ServeConfig,
) -> Result<BatchSummary, ServeError> {
    let started = Instant::now();
    let workers = if config.workers == 0 {
        default_workers()
    } else {
        config.workers
    };
    let chunk_size = if config.chunk_size == 0 {
        (workers * 32).clamp(64, 1024)
    } else {
        config.chunk_size
    };

    let mut cache = FeatureCache::default();
    let mut latencies: Vec<Duration> = Vec::new();
    let mut records = 0usize;
    let mut solved = 0usize;
    let mut errors = 0usize;
    let mut total_cost = 0i64;
    let mut total_lower_bound = 0i64;
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut deadline_hits = 0usize;

    let mut line_no = 0usize;
    let mut eof = false;
    while !eof {
        // read one chunk of request lines (raw bytes: a line that is not
        // valid UTF-8 is a bad record, not a fatal stream error)
        let mut entries: Vec<Entry> = Vec::new();
        let mut items: Vec<SolveItem> = Vec::new();
        while entries.len() < chunk_size {
            let mut buf = Vec::new();
            if input.read_until(b'\n', &mut buf)? == 0 {
                eof = true;
                break;
            }
            line_no += 1;
            let parsed = std::str::from_utf8(&buf)
                .map_err(|e| format!("line is not valid UTF-8: {e}"))
                .and_then(|line| {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        return Ok(None); // blank lines are not records
                    }
                    BatchRecord::parse(trimmed)
                        .map(Some)
                        .map_err(|e| e.to_string())
                });
            match parsed {
                Ok(None) => continue,
                Ok(Some(record)) => {
                    records += 1;
                    let inst = record.instance();
                    let budget = record
                        .deadline_ms
                        .map(Duration::from_millis)
                        .or(config.base_options.deadline);
                    entries.push(Entry::Solve { item: items.len() });
                    items.push(SolveItem {
                        line: line_no,
                        record,
                        key: instance_key(&inst),
                        inst,
                        features: None,
                        budget,
                    });
                }
                Err(message) => {
                    records += 1;
                    entries.push(Entry::Bad {
                        line: line_no,
                        message,
                    });
                    if config.error_policy == ErrorPolicy::FailFast {
                        // no point reading (or solving) past the abort
                        // point; records before it still stream below
                        break;
                    }
                }
            }
        }

        // batched feature detection: detect each distinct instance once
        let mut fresh: Vec<(u64, Instance)> = Vec::new();
        for item in &items {
            if cache.get(item.key, &item.inst).is_some()
                || fresh
                    .iter()
                    .any(|(k, inst)| *k == item.key && inst == &item.inst)
            {
                cache_hits += 1; // already cached, or repeated within this chunk
            } else {
                fresh.push((item.key, item.inst.clone()));
            }
        }
        let detected = par_map_with(workers, &fresh, |(_, inst)| InstanceFeatures::detect(inst));
        cache_misses += fresh.len();
        for ((key, inst), features) in fresh.into_iter().zip(detected) {
            cache.insert(key, inst, features);
        }
        for item in &mut items {
            // the epoch eviction can drop entries mid-chunk when the chunk
            // holds more distinct instances than the cache cap; re-detect
            // inline in that (rare) case
            item.features = Some(match cache.get(item.key, &item.inst) {
                Some(features) => features.clone(),
                None => InstanceFeatures::detect(&item.inst),
            });
        }

        // fan the solves out under pool-enforced deadlines; results land
        // in input order
        let results = par_map_deadline_with(
            workers,
            &items,
            |item| item.budget,
            |item, token| {
                let solver = item
                    .record
                    .solver
                    .as_deref()
                    .unwrap_or(&config.default_solver);
                let features = item.features.clone().expect("filled by detection pass");
                // the pool token is the single deadline authority here:
                // clear the option so the pipeline does not re-arm a second
                // (later) deadline on top of it
                let mut options = item.record.apply_overrides(config.base_options.clone());
                options.deadline = None;
                SolveRequest::new(&item.inst)
                    .options(options)
                    .solver(solver)
                    .features(features)
                    .cancel(token.clone())
                    .solve_with(registry)
            },
        );

        // stream response lines in input order
        for entry in &entries {
            match entry {
                Entry::Bad { line, message } => {
                    if config.error_policy == ErrorPolicy::FailFast {
                        return Err(ServeError::FailFast {
                            line: *line,
                            id: None,
                            message: message.clone(),
                        });
                    }
                    errors += 1;
                    writeln!(out, "{}", error_line(*line, None, message))?;
                }
                Entry::Solve { item } => {
                    let SolveItem {
                        line,
                        record,
                        budget,
                        ..
                    } = &items[*item];
                    let outcome = &results[*item];
                    // a record is a deadline hit when the pipeline flagged
                    // it, when a budgeted solver refused with Infeasible,
                    // or when the pool clock caught the worker over budget
                    // (solver missed its cooperative check)
                    let hit = outcome.over_deadline
                        || match &outcome.result {
                            Ok(report) => report.deadline_hit,
                            Err(SolveError::Scheduler(SchedulerError::Infeasible { .. })) => {
                                budget.is_some()
                            }
                            Err(_) => false,
                        };
                    if hit {
                        deadline_hits += 1;
                    }
                    match &outcome.result {
                        Ok(report) => {
                            solved += 1;
                            total_cost += report.cost;
                            total_lower_bound += report.lower_bound;
                            if !hit {
                                // p50/p99 describe unaffected records; cut
                                // records are counted in deadline_hits
                                latencies.push(outcome.elapsed);
                            }
                            writeln!(out, "{}", report_line(*line, record.id.as_deref(), report))?;
                        }
                        Err(e) => {
                            if config.error_policy == ErrorPolicy::FailFast {
                                return Err(ServeError::FailFast {
                                    line: *line,
                                    id: record.id.clone(),
                                    message: e.to_string(),
                                });
                            }
                            errors += 1;
                            writeln!(
                                out,
                                "{}",
                                error_line(*line, record.id.as_deref(), &e.to_string())
                            )?;
                        }
                    }
                }
            }
        }
        out.flush()?;
    }

    let wall = started.elapsed();
    latencies.sort_unstable();
    Ok(BatchSummary {
        records,
        solved,
        errors,
        total_cost,
        total_lower_bound,
        aggregate_gap: if total_lower_bound > 0 {
            total_cost as f64 / total_lower_bound as f64
        } else {
            1.0
        },
        throughput: if wall.as_secs_f64() > 0.0 {
            solved as f64 / wall.as_secs_f64()
        } else {
            0.0
        },
        wall,
        p50_solve: percentile(&latencies, 50.0),
        p99_solve: percentile(&latencies, 99.0),
        cache_hits,
        cache_misses,
        workers,
        deadline_hits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(input: &str, config: &ServeConfig) -> (Vec<String>, BatchSummary) {
        let registry = SolverRegistry::with_defaults();
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, &registry, config).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), summary)
    }

    #[test]
    fn solves_and_counts() {
        let input = concat!(
            r#"{"id": "a", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#,
            "\n",
            r#"{"id": "b", "generator": {"family": "uniform", "n": 20, "seed": 1}}"#,
            "\n",
        );
        let (lines, summary) = run(input, &ServeConfig::default());
        assert_eq!(lines.len(), 2);
        assert_eq!(summary.records, 2);
        assert_eq!(summary.solved, 2);
        assert_eq!(summary.errors, 0);
        assert!(summary.total_cost >= summary.total_lower_bound);
        assert!(summary.aggregate_gap >= 1.0);
        assert!(summary.throughput > 0.0);
    }

    #[test]
    fn identical_instances_hit_the_feature_cache() {
        let line = r#"{"generator": {"family": "proper", "n": 16, "seed": 4}}"#;
        let input = format!("{line}\n{line}\n{line}\n");
        let (lines, summary) = run(&input, &ServeConfig::default());
        assert_eq!(lines.len(), 3);
        assert_eq!(summary.cache_misses, 1);
        assert_eq!(summary.cache_hits, 2);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = concat!(
            "\n",
            r#"{"instance": {"g": 2, "jobs": [[0, 3]]}}"#,
            "\n\n   \n",
        );
        let (lines, summary) = run(input, &ServeConfig::default());
        assert_eq!(lines.len(), 1);
        assert_eq!(summary.records, 1);
        // the response still names the physical input line
        assert!(lines[0].contains("\"line\": 2"), "{}", lines[0]);
    }

    #[test]
    fn invalid_utf8_line_is_a_record_error_not_a_stream_error() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(br#"{"instance": {"g": 2, "jobs": [[0, 3]]}}"#);
        input.extend_from_slice(b"\n\xff\xfe broken bytes\n");
        input.extend_from_slice(br#"{"instance": {"g": 2, "jobs": [[1, 4]]}}"#);
        input.extend_from_slice(b"\n");
        let registry = SolverRegistry::with_defaults();
        let mut out = Vec::new();
        let summary = serve(
            input.as_slice(),
            &mut out,
            &registry,
            &ServeConfig::default(),
        )
        .unwrap();
        assert_eq!(summary.records, 3);
        assert_eq!(summary.solved, 2);
        assert_eq!(summary.errors, 1);
        let text = String::from_utf8(out).unwrap();
        let middle = text.lines().nth(1).unwrap();
        assert!(middle.contains("\"ok\": false"), "{middle}");
        assert!(middle.contains("UTF-8"), "{middle}");
    }

    #[test]
    fn fail_fast_aborts_on_first_bad_line() {
        let input = concat!(
            r#"{"instance": {"g": 2, "jobs": [[0, 3]]}}"#,
            "\n",
            "garbage\n",
            r#"{"instance": {"g": 2, "jobs": [[0, 3]]}}"#,
            "\n",
        );
        let registry = SolverRegistry::with_defaults();
        let mut out = Vec::new();
        let config = ServeConfig {
            error_policy: ErrorPolicy::FailFast,
            ..ServeConfig::default()
        };
        let err = serve(input.as_bytes(), &mut out, &registry, &config).unwrap_err();
        match err {
            ServeError::FailFast { line, .. } => assert_eq!(line, 2),
            other => panic!("expected FailFast, got {other:?}"),
        }
        // the good line before the failure was already streamed
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn unknown_solver_becomes_error_line_under_keep_going() {
        let input = concat!(
            r#"{"id": "bad", "instance": {"g": 2, "jobs": [[0, 3]]}, "solver": "martian"}"#,
            "\n",
        );
        let (lines, summary) = run(input, &ServeConfig::default());
        assert_eq!(summary.errors, 1);
        assert!(lines[0].contains("\"ok\": false"));
        assert!(lines[0].contains("martian"));
    }

    #[test]
    fn summary_json_line_is_single_line() {
        let (_, summary) = run("", &ServeConfig::default());
        assert_eq!(summary.records, 0);
        let json = summary.to_json_line();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"records\": 0"));
        assert!(json.contains("\"deadline_hits\": 0"));
    }

    #[test]
    fn record_deadline_cuts_and_is_counted() {
        // deadline_ms: 0 expires before any solver work: the portfolio
        // returns its cheapest incumbent, flagged, and the summary counts
        // the hit while keeping the latency stats clean of it
        let input = concat!(
            r#"{"id": "cut", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}, "deadline_ms": 0}"#,
            "\n",
            r#"{"id": "free", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#,
            "\n",
        );
        let (lines, summary) = run(input, &ServeConfig::default());
        assert_eq!(summary.solved, 2);
        assert_eq!(summary.deadline_hits, 1);
        assert!(lines[0].contains("\"deadline_hit\": true"), "{}", lines[0]);
        assert!(lines[1].contains("\"deadline_hit\": false"), "{}", lines[1]);
        match crate::protocol::parse_output_line(&lines[0]).unwrap() {
            crate::protocol::OutputLine::Report { report, .. } => {
                assert!(report.deadline_hit);
                assert_eq!(report.assignment.len(), 2);
            }
            other => panic!("expected report line, got {other:?}"),
        }
    }

    #[test]
    fn batch_level_deadline_applies_to_every_record() {
        let input = concat!(
            r#"{"instance": {"g": 2, "jobs": [[0, 4]]}}"#,
            "\n",
            r#"{"instance": {"g": 2, "jobs": [[1, 5]]}}"#,
            "\n",
        );
        let config = ServeConfig {
            base_options: SolveOptions {
                deadline: Some(Duration::ZERO),
                ..SolveOptions::default()
            },
            ..ServeConfig::default()
        };
        let (lines, summary) = run(input, &config);
        assert_eq!(summary.deadline_hits, 2);
        for line in &lines {
            assert!(line.contains("\"deadline_hit\": true"), "{line}");
        }
    }

    #[test]
    fn record_deadline_overrides_batch_default() {
        // batch default of 0 would cut everything; the record's generous
        // per-record deadline_ms must win
        let input = concat!(
            r#"{"instance": {"g": 2, "jobs": [[0, 4]]}, "deadline_ms": 60000}"#,
            "\n",
        );
        let config = ServeConfig {
            base_options: SolveOptions {
                deadline: Some(Duration::ZERO),
                ..SolveOptions::default()
            },
            ..ServeConfig::default()
        };
        let (lines, summary) = run(input, &config);
        assert_eq!(summary.deadline_hits, 0);
        assert!(lines[0].contains("\"deadline_hit\": false"), "{}", lines[0]);
    }
}
