//! The batch solve engine: NDJSON in, NDJSON out, a worker pool in the
//! middle.
//!
//! [`BatchSession`] is the reusable core any `BufRead`/`Write` pair can
//! drive — stdin/stdout ([`serve`] is the thin wrapper), a file, or one
//! socket connection of the [`crate::listener`]. A session reads request
//! lines in chunks, runs batched feature detection (each distinct instance
//! is detected once — repeated identical instances hit the hash-keyed
//! [`SharedFeatureCache`], which long-lived listeners share *across*
//! connections), fans the solves of a chunk out over the process-wide
//! [`busytime_core::pool::Executor`] (every session submits to the same
//! persistent worker pool, so concurrent sessions share one worker budget
//! instead of multiplying it), and streams exactly one response line per
//! request line, in input order. Order is guaranteed by construction: the
//! pool writes results into input-order slots and the writer drains chunks
//! sequentially.
//!
//! Above the feature cache sits the *solution* cache
//! ([`busytime_core::SolutionCache`]): before a record is dispatched to the
//! executor at all, the session looks its canonical instance + solve
//! fingerprint up and, on a hit, streams the cached validated report
//! (assignment remapped to the record's own job order, `cached: true`)
//! without occupying a worker. Misses are solved as usual and written back;
//! exact solves additionally ask the cache for a near-match warm start
//! ([`busytime_core::solve::WARM_EDIT_BUDGET`]). Per-record `cache` policies
//! (`off`/`read`/`write`/`readwrite`) gate both directions, and the
//! [`crate::listener`] shares one cache handle across connections the same
//! way it shares the feature cache.
//!
//! Deadlines are enforced at the pool layer: each record's budget (its
//! `deadline_ms`, else the batch default) arms a
//! [`busytime_core::CancelToken`] when a worker picks the record up, the
//! token rides through the solve pipeline into every solver loop, and the
//! pool independently stamps each completion `over_deadline` when its own
//! clock says the budget was blown — so even a solver that misses its
//! cooperative check is counted in [`BatchSummary::deadline_hits`], and one
//! pathological record can no longer pin a worker for seconds.
//!
//! Sessions are also *interruptible*: [`BatchSession::cancel`] installs a
//! session token that (a) parents every record's deadline token, cutting
//! in-flight solves at their next cooperative checkpoint, and (b) stops the
//! read loop at the next line boundary, so a listener draining on SIGINT
//! finishes the records it already parsed and then summarizes. Transports
//! with a read timeout (sockets) surface `WouldBlock`/`TimedOut` from their
//! reads; the session treats those as polling points — it re-checks the
//! session token and, when records are already pending, dispatches the
//! partial chunk instead of waiting for a full one, which is what keeps
//! interactive socket clients from stalling behind the chunk size.

use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use busytime_core::algo::SchedulerError;
use busytime_core::cancel::CancelToken;
use busytime_core::memo::{CachePolicy, CanonicalInstance, SolutionCache, SolveFingerprint};
use busytime_core::pool::{self, Executor};
use busytime_core::solve::{
    SolveError, SolveOptions, SolverRegistry, REPORT_SCHEMA_VERSION, WARM_EDIT_BUDGET,
};
use busytime_core::{Instance, InstanceFeatures, SolveRequest};
use busytime_instances::json::{self, JsonError, Value};

use crate::protocol::{error_line, report_line, BatchRecord};

/// What the engine does when a line fails to parse or solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ErrorPolicy {
    /// Emit a structured error line for the failed record and keep going
    /// (the default — a batch is many independent instances).
    #[default]
    KeepGoing,
    /// Stop at the first failure; [`serve`] returns
    /// [`ServeError::FailFast`]. Lines before the failure are already
    /// written.
    FailFast,
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Width cap: how many of the executor's workers one chunk of this
    /// session may occupy at once (`0` = the executor's full budget). The
    /// process-wide budget itself belongs to the [`Executor`] the session
    /// runs on — [`Executor::global`], sized via `--workers` /
    /// `BUSYTIME_WORKERS`, unless [`BatchSession::executor`] installs
    /// another instance.
    pub workers: usize,
    /// Registry key used when a record names no solver.
    pub default_solver: String,
    /// Failure handling.
    pub error_policy: ErrorPolicy,
    /// Records per dispatch wave (`0` = sized from the worker count).
    /// Smaller chunks stream earlier; larger chunks amortize pool startup.
    pub chunk_size: usize,
    /// Capacity of the session's [`SolutionCache`] (validated reports,
    /// LRU-evicted); `0` disables solution caching entirely. Only the
    /// capacity of the cache a session builds *itself* — a shared handle
    /// installed via [`BatchSession::solutions`] keeps its own capacity.
    pub solution_cache: usize,
    /// Base options for every record (per-record fields override).
    pub base_options: SolveOptions,
}

/// Default [`ServeConfig::solution_cache`] capacity: validated reports are
/// small (an assignment vector plus scalars), so a few thousand entries
/// cost megabytes at most.
pub const DEFAULT_SOLUTION_CACHE: usize = 1024;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            default_solver: "auto".to_string(),
            error_policy: ErrorPolicy::KeepGoing,
            chunk_size: 0,
            solution_cache: DEFAULT_SOLUTION_CACHE,
            base_options: SolveOptions::default(),
        }
    }
}

/// Why [`serve`] aborted.
#[derive(Debug)]
pub enum ServeError {
    /// Reading input or writing output failed.
    Io(std::io::Error),
    /// A record failed under [`ErrorPolicy::FailFast`].
    FailFast {
        /// 1-based input line of the failed record.
        line: usize,
        /// The record's id, when it parsed far enough to have one.
        id: Option<String>,
        /// Human-readable cause.
        message: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "io: {e}"),
            ServeError::FailFast { line, id, message } => match id {
                Some(id) => write!(f, "line {line} (id {id}): {message}"),
                None => write!(f, "line {line}: {message}"),
            },
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Aggregate statistics over one served batch.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// Records processed (blank input lines are skipped and not counted).
    pub records: usize,
    /// Records solved successfully.
    pub solved: usize,
    /// Records answered with an error line.
    pub errors: usize,
    /// Summed busy time over solved records.
    pub total_cost: i64,
    /// Summed certified lower bounds over solved records.
    pub total_lower_bound: i64,
    /// `total_cost / total_lower_bound`. When the bound sum is 0 this is
    /// `1.0` only if the cost sum is also 0 (vacuously optimal — an empty
    /// or all-error batch); a positive cost over a zero bound reports
    /// [`f64::INFINITY`] (`null` in [`BatchSummary::to_json_line`]) rather
    /// than silently claiming optimality.
    pub aggregate_gap: f64,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Records *processed* per wall-clock second (solved and error records
    /// alike — an error answer is still work done and an answer streamed).
    pub throughput: f64,
    /// Records *solved* per wall-clock second. An error-heavy batch keeps
    /// an honest `throughput` while this field exposes the useful yield.
    pub solved_per_s: f64,
    /// Median per-record solve latency.
    pub p50_solve: Duration,
    /// 99th-percentile per-record solve latency.
    pub p99_solve: Duration,
    /// Feature-cache hits (records whose instance was already detected).
    pub cache_hits: usize,
    /// Feature-cache misses (distinct instances detected).
    pub cache_misses: usize,
    /// Solution-cache hits: records answered straight from the memo
    /// (validated cached report, assignment remapped to the record's job
    /// order) without dispatching a solve. Excluded from
    /// `p50_solve`/`p99_solve` — a lookup is not a solve latency.
    pub solution_cache_hits: usize,
    /// Solution-cache lookups that missed: records solved fresh under a
    /// read-enabled cache policy. Records with caching off (policy or a
    /// disabled cache) count in neither solution-cache statistic.
    pub solution_cache_misses: usize,
    /// The session's effective solve width: how many of the process-wide
    /// executor's workers its chunks could occupy at once.
    pub workers: usize,
    /// Records whose *deadline budget* actually cut the solve: the
    /// record's deadline chain had expired when a flagged report (or an
    /// `Infeasible` refusal) came back, or the pool's own clock caught the
    /// worker over its budget (the enforcement of last resort for
    /// uncooperative solves). A record cut by a session *shutdown drain*
    /// still answers `deadline_hit: true` on its response line (the solve
    /// was cut and the assignment is an incumbent) but is not counted
    /// here — this statistic describes deadlines, not drains. Counted
    /// records are excluded from `p50_solve`/`p99_solve`, which describe
    /// unaffected records only.
    pub deadline_hits: usize,
}

impl BatchSummary {
    /// The aggregate gap for the given cost/bound sums: their ratio when
    /// the bound sum is positive, `1.0` when both sums are zero (vacuously
    /// optimal), and [`f64::INFINITY`] when a positive cost rides over a
    /// zero bound — a summary must not claim optimality it cannot certify.
    pub fn aggregate_gap(total_cost: i64, total_lower_bound: i64) -> f64 {
        if total_lower_bound > 0 {
            total_cost as f64 / total_lower_bound as f64
        } else if total_cost == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    }

    /// One summary JSON line (no trailing newline), for machine consumers.
    /// A non-finite [`BatchSummary::aggregate_gap`] serializes as `null`.
    pub fn to_json_line(&self) -> String {
        let gap = if self.aggregate_gap.is_finite() {
            format!("{:.6}", self.aggregate_gap)
        } else {
            String::from("null")
        };
        format!(
            "{{\"schema_version\": {REPORT_SCHEMA_VERSION}, \"records\": {}, \"solved\": {}, \
             \"errors\": {}, \"total_cost\": {}, \"total_lower_bound\": {}, \
             \"aggregate_gap\": {gap}, \"wall_ms\": {:.3}, \"throughput_per_s\": {:.3}, \
             \"solved_per_s\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"solution_cache_hits\": {}, \"solution_cache_misses\": {}, \
             \"workers\": {}, \"deadline_hits\": {}}}",
            self.records,
            self.solved,
            self.errors,
            self.total_cost,
            self.total_lower_bound,
            self.wall.as_secs_f64() * 1e3,
            self.throughput,
            self.solved_per_s,
            self.p50_solve.as_secs_f64() * 1e3,
            self.p99_solve.as_secs_f64() * 1e3,
            self.cache_hits,
            self.cache_misses,
            self.solution_cache_hits,
            self.solution_cache_misses,
            self.workers,
            self.deadline_hits,
        )
    }

    /// Parses a line written by [`BatchSummary::to_json_line`] back into a
    /// summary — how the shard router recognizes and collects each
    /// backend's trailer before merging. Distinguishing shape: a summary
    /// line carries `records` and never `line` (every per-record response
    /// line carries `line`). Numeric fields absent from an older
    /// producer's line default to zero; a `null` `aggregate_gap`
    /// round-trips to [`f64::INFINITY`].
    pub fn from_json_line(line: &str) -> Result<BatchSummary, JsonError> {
        let value = json::parse(line.trim())?;
        if value.get("line").is_some() {
            return Err(JsonError(
                "not a batch summary: carries a `line` field".into(),
            ));
        }
        if value.get("records").is_none() {
            return Err(JsonError("not a batch summary: no `records` field".into()));
        }
        let count = |key: &str| -> Result<usize, JsonError> {
            match value.get(key) {
                None => Ok(0),
                Some(v) => v
                    .as_i64()
                    .and_then(|n| usize::try_from(n).ok())
                    .ok_or_else(|| JsonError(format!("summary `{key}` is not a count"))),
            }
        };
        let int = |key: &str| -> Result<i64, JsonError> {
            match value.get(key) {
                None => Ok(0),
                Some(v) => v
                    .as_i64()
                    .ok_or_else(|| JsonError(format!("summary `{key}` is not an integer"))),
            }
        };
        let num = |key: &str| -> Result<f64, JsonError> {
            match value.get(key) {
                None => Ok(0.0),
                Some(Value::Int(n)) => Ok(*n as f64),
                Some(Value::Number(n)) => Ok(*n),
                Some(_) => Err(JsonError(format!("summary `{key}` is not a number"))),
            }
        };
        let millis = |key: &str| -> Result<Duration, JsonError> {
            Ok(Duration::from_secs_f64(num(key)?.max(0.0) / 1e3))
        };
        let total_cost = int("total_cost")?;
        let total_lower_bound = int("total_lower_bound")?;
        let aggregate_gap = match value.get("aggregate_gap") {
            Some(Value::Null) => f64::INFINITY,
            Some(_) => num("aggregate_gap")?,
            None => Self::aggregate_gap(total_cost, total_lower_bound),
        };
        Ok(BatchSummary {
            records: count("records")?,
            solved: count("solved")?,
            errors: count("errors")?,
            total_cost,
            total_lower_bound,
            aggregate_gap,
            wall: millis("wall_ms")?,
            throughput: num("throughput_per_s")?,
            solved_per_s: num("solved_per_s")?,
            p50_solve: millis("p50_ms")?,
            p99_solve: millis("p99_ms")?,
            cache_hits: count("cache_hits")?,
            cache_misses: count("cache_misses")?,
            solution_cache_hits: count("solution_cache_hits")?,
            solution_cache_misses: count("solution_cache_misses")?,
            workers: count("workers")?,
            deadline_hits: count("deadline_hits")?,
        })
    }

    /// Folds another batch's summary into this one — the aggregation the
    /// shard router uses to merge per-shard trailers into the one trailer
    /// its client sees.
    ///
    /// Counts and sums (`records`, `solved`, `errors`, costs, bounds,
    /// cache statistics, `workers`, `deadline_hits`) add. The rates add
    /// too: shards solve concurrently, so the fleet's records-per-second
    /// is the sum of its parts — additive capacity is the point of
    /// sharding. `wall` takes the max (concurrent, not sequential), and
    /// `aggregate_gap` is recomputed from the summed cost and bound,
    /// exactly what one undivided batch over the same records would have
    /// reported (a positive cost sum over a zero bound sum stays
    /// [`f64::INFINITY`]).
    ///
    /// The latency percentiles cannot be recombined exactly without the
    /// per-record samples, so they are approximated: `p50_solve` is the
    /// solved-weighted mean of the two medians (always between them), and
    /// `p99_solve` takes the max (conservative — the merged tail is never
    /// reported better than the worst shard's).
    pub fn merge(&mut self, other: &BatchSummary) {
        let (a, b) = (self.solved, other.solved);
        if a + b > 0 {
            self.p50_solve = Duration::from_secs_f64(
                (self.p50_solve.as_secs_f64() * a as f64
                    + other.p50_solve.as_secs_f64() * b as f64)
                    / (a + b) as f64,
            );
        }
        self.p99_solve = self.p99_solve.max(other.p99_solve);
        self.records += other.records;
        self.solved += other.solved;
        self.errors += other.errors;
        self.total_cost += other.total_cost;
        self.total_lower_bound += other.total_lower_bound;
        self.aggregate_gap = Self::aggregate_gap(self.total_cost, self.total_lower_bound);
        self.wall = self.wall.max(other.wall);
        self.throughput += other.throughput;
        self.solved_per_s += other.solved_per_s;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.solution_cache_hits += other.solution_cache_hits;
        self.solution_cache_misses += other.solution_cache_misses;
        self.workers += other.workers;
        self.deadline_hits += other.deadline_hits;
    }
}

impl std::fmt::Display for BatchSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "batch: {} records ({} solved, {} errors) in {:.2} s | {:.0} rec/s \
             ({:.0} solved/s) | {} workers",
            self.records,
            self.solved,
            self.errors,
            self.wall.as_secs_f64(),
            self.throughput,
            self.solved_per_s,
            self.workers,
        )?;
        write!(
            f,
            "solve latency: p50 {:.2} ms, p99 {:.2} ms (unaffected records) | \
             aggregate gap ≤ {:.3} | deadline hits: {} | \
             feature cache: {} hits / {} misses | \
             solution cache: {} hits / {} misses",
            self.p50_solve.as_secs_f64() * 1e3,
            self.p99_solve.as_secs_f64() * 1e3,
            self.aggregate_gap,
            self.deadline_hits,
            self.cache_hits,
            self.cache_misses,
            self.solution_cache_hits,
            self.solution_cache_misses,
        )
    }
}

/// Hash-keyed, recency-aware feature cache; buckets hold entry ids so a
/// hash collision degrades to an equality scan, never a wrong answer.
///
/// Bounded by true LRU eviction: every hit (and insert) stamps the entry
/// with a monotone recency tick, and once the capacity is reached the
/// least-recently-used entry is evicted — so a hot instance survives any
/// amount of churn by cold ones. (The original epoch-reset policy dropped
/// the *whole* cache at capacity, wiping hot entries along with cold.)
struct FeatureCache {
    cap: usize,
    /// Monotone recency clock, bumped on every hit and insert.
    tick: u64,
    next_id: u64,
    /// Entry id → entry.
    entries: HashMap<u64, CacheEntry>,
    /// Instance hash → ids of the entries with that hash.
    buckets: HashMap<u64, Vec<u64>>,
    /// Recency tick → entry id; the first entry is the eviction victim.
    order: BTreeMap<u64, u64>,
}

struct CacheEntry {
    key: u64,
    tick: u64,
    /// The instance in canonical (order-invariant) form: permuted-identical
    /// instances share one entry, keyed and compared canonically. (The
    /// original cache hashed and compared jobs *in record order*, so the
    /// same instance with its jobs shuffled was detected — and stored —
    /// twice.)
    canon: CanonicalInstance,
    features: InstanceFeatures,
}

impl Default for FeatureCache {
    fn default() -> Self {
        FeatureCache::with_capacity(Self::CAP)
    }
}

impl FeatureCache {
    /// Distinct instances retained before LRU eviction kicks in.
    const CAP: usize = 4096;

    fn with_capacity(cap: usize) -> Self {
        FeatureCache {
            cap: cap.max(1),
            tick: 0,
            next_id: 0,
            entries: HashMap::new(),
            buckets: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// The id of the entry caching `canon`, recency-bumped, if present.
    fn find_and_touch(&mut self, canon: &CanonicalInstance) -> Option<u64> {
        let id = *self
            .buckets
            .get(&canon.hash())?
            .iter()
            .find(|&&id| self.entries.get(&id).is_some_and(|e| e.canon == *canon))?;
        self.touch(id);
        Some(id)
    }

    fn get(&mut self, canon: &CanonicalInstance) -> Option<InstanceFeatures> {
        let id = self.find_and_touch(canon)?;
        Some(self.entries[&id].features.clone())
    }

    /// Moves `id` to the most-recently-used position.
    fn touch(&mut self, id: u64) {
        let entry = self.entries.get_mut(&id).expect("entry for cached id");
        self.order.remove(&entry.tick);
        self.tick += 1;
        entry.tick = self.tick;
        self.order.insert(self.tick, id);
    }

    fn insert(&mut self, canon: CanonicalInstance, features: InstanceFeatures) {
        // another session may have inserted the same instance between this
        // session's miss and its detection finishing: refresh the recency
        // instead of duplicating the entry
        if self.find_and_touch(&canon).is_some() {
            return;
        }
        let key = canon.hash();
        while self.entries.len() >= self.cap {
            let (_, id) = self.order.pop_first().expect("order tracks entries");
            let victim = self.entries.remove(&id).expect("entry for LRU id");
            let bucket = self.buckets.get_mut(&victim.key).expect("bucket for entry");
            bucket.retain(|&b| b != id);
            if bucket.is_empty() {
                self.buckets.remove(&victim.key);
            }
        }
        self.tick += 1;
        self.next_id += 1;
        let id = self.next_id;
        self.entries.insert(
            id,
            CacheEntry {
                key,
                tick: self.tick,
                canon,
                features,
            },
        );
        self.buckets.entry(key).or_default().push(id);
        self.order.insert(self.tick, id);
    }
}

/// A lock-guarded [`InstanceFeatures`] cache shared across batch sessions.
///
/// Clones share storage, so a listener hands one handle to every
/// connection and a repeated instance is detected once *process-wide*, not
/// once per connection — the cross-batch reuse a long-lived server wants.
/// The lock is held only for lookups and inserts (never during detection),
/// and the LRU eviction of the underlying cache caps memory while keeping
/// hot instances resident through cold churn.
#[derive(Clone, Default)]
pub struct SharedFeatureCache {
    inner: Arc<Mutex<FeatureCache>>,
}

/// Lock tolerating poisoning, for mutexes whose contents are always valid
/// (caches, counters, clocks): one thread that panicked mid-access must
/// not cascade into every other session of a long-lived server.
pub(crate) fn lock_ignoring_poison<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl SharedFeatureCache {
    /// A fresh, empty cache handle.
    pub fn new() -> Self {
        SharedFeatureCache::default()
    }

    /// A cache handle retaining at most `cap` distinct instances before
    /// LRU eviction (clamped to at least one); tests pin small capacities
    /// to exercise churn.
    pub fn with_capacity(cap: usize) -> Self {
        SharedFeatureCache {
            inner: Arc::new(Mutex::new(FeatureCache::with_capacity(cap))),
        }
    }

    pub(crate) fn lookup(&self, canon: &CanonicalInstance) -> Option<InstanceFeatures> {
        // poison-tolerant: cached features are immutable once inserted, so
        // the data stays sound; at worst an interrupted insert costs a
        // re-detection
        lock_ignoring_poison(&self.inner).get(canon)
    }

    pub(crate) fn insert(&self, canon: CanonicalInstance, features: InstanceFeatures) {
        lock_ignoring_poison(&self.inner).insert(canon, features);
    }
}

/// One record of a chunk, in input order.
enum Entry {
    /// The line failed to parse; answer with an error line.
    Bad { line: usize, message: String },
    /// The line parsed; `item` indexes the chunk's solve items.
    Solve { item: usize },
}

/// One prepared (parsed and cache-consulted) record, ready to dispatch.
/// Shared between the blocking [`BatchSession`] and the listener's
/// event-driven session machine ([`crate::machine`]) — both build items
/// with [`prepare_record`] and solve them with [`solve_prepared`].
pub(crate) struct SolveItem {
    pub(crate) line: usize,
    pub(crate) record: BatchRecord,
    pub(crate) inst: Instance,
    /// Canonical (order-invariant) form of `inst`, computed once at parse
    /// time: the key into both the feature cache and the solution cache.
    pub(crate) canon: CanonicalInstance,
    /// The record's effective cache policy (`record.cache`, defaulting to
    /// read-write).
    pub(crate) policy: CachePolicy,
    /// Solution-cache identity of this solve (canonical solver key, seed,
    /// decompose). `None` when the solution cache is out of play for this
    /// record — disabled cache, `cache: "off"`, or a `max_jobs` refusal —
    /// so the solve neither looks up nor writes back.
    pub(crate) fingerprint: Option<SolveFingerprint>,
    /// A solution-cache hit, resolved before dispatch: the cached report
    /// (assignment already remapped to this record's job order,
    /// `cached: true`). Hit records skip feature detection and never reach
    /// the executor.
    pub(crate) hit: Option<busytime_core::SolveReport>,
    /// Filled by the chunk's batched detection pass before solving.
    pub(crate) features: Option<InstanceFeatures>,
    /// Effective solve budget: the record's `deadline_ms`, else the
    /// batch-level default. Armed onto the record's token when a worker
    /// picks the record up, so the clock starts at pickup, not when the
    /// batch starts queuing.
    pub(crate) budget: Option<Duration>,
}

fn percentile(sorted: &[Duration], pct: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// What one solve worker hands back: the pipeline result plus whether the
/// record's *own deadline chain* had expired by the time the solver
/// returned — the signal that separates "`Infeasible` because the budget
/// ran out" from "genuinely infeasible, refused instantly".
pub(crate) struct RecordResult {
    pub(crate) result: Result<busytime_core::SolveReport, SolveError>,
    pub(crate) deadline_expired: bool,
}

/// Running per-record statistics, shared by the blocking [`BatchSession`]
/// and the listener's event-driven session machine so both serving paths
/// count records, caches, deadlines and latencies identically.
#[derive(Default)]
pub(crate) struct SessionStats {
    pub(crate) records: usize,
    pub(crate) solved: usize,
    pub(crate) errors: usize,
    pub(crate) total_cost: i64,
    pub(crate) total_lower_bound: i64,
    pub(crate) cache_hits: usize,
    pub(crate) cache_misses: usize,
    pub(crate) solution_cache_hits: usize,
    pub(crate) solution_cache_misses: usize,
    pub(crate) deadline_hits: usize,
    /// Latencies of unaffected solves only: budget cuts, drain cuts and
    /// solution-cache hits stay out of the percentiles.
    latencies: Vec<Duration>,
}

impl SessionStats {
    /// Freezes the running counts into the batch's [`BatchSummary`].
    pub(crate) fn summarize(mut self, wall: Duration, workers: usize) -> BatchSummary {
        self.latencies.sort_unstable();
        let per_second = |n: usize| {
            if wall.as_secs_f64() > 0.0 {
                n as f64 / wall.as_secs_f64()
            } else {
                0.0
            }
        };
        BatchSummary {
            records: self.records,
            solved: self.solved,
            errors: self.errors,
            total_cost: self.total_cost,
            total_lower_bound: self.total_lower_bound,
            aggregate_gap: BatchSummary::aggregate_gap(self.total_cost, self.total_lower_bound),
            throughput: per_second(self.records),
            solved_per_s: per_second(self.solved),
            wall,
            p50_solve: percentile(&self.latencies, 50.0),
            p99_solve: percentile(&self.latencies, 99.0),
            cache_hits: self.cache_hits,
            cache_misses: self.cache_misses,
            solution_cache_hits: self.solution_cache_hits,
            solution_cache_misses: self.solution_cache_misses,
            workers,
            deadline_hits: self.deadline_hits,
        }
    }
}

/// The session's effective solve width: its share of the executor budget,
/// never more than the budget itself.
pub(crate) fn effective_width(config: &ServeConfig, executor: &Executor) -> usize {
    if config.workers == 0 {
        executor.workers()
    } else {
        config.workers.min(executor.workers())
    }
}

/// Records per dispatch wave for the given width (`config.chunk_size`
/// unless that is `0` = sized from the width).
pub(crate) fn effective_chunk_size(config: &ServeConfig, width: usize) -> usize {
    if config.chunk_size == 0 {
        (width * 32).clamp(64, 1024)
    } else {
        config.chunk_size
    }
}

/// Builds the [`SolveItem`] for one parsed record: canonical instance,
/// cache policy, solve fingerprint, deadline budget, and the pre-dispatch
/// solution-cache consultation. Lookup accounting happens here, at parse
/// time, so both serving paths agree on when a lookup was made.
pub(crate) fn prepare_record(
    record: BatchRecord,
    line: usize,
    registry: &SolverRegistry,
    config: &ServeConfig,
    solutions: &SolutionCache,
    stats: &mut SessionStats,
) -> SolveItem {
    let inst = record.instance();
    let budget = record
        .deadline_ms
        .map(Duration::from_millis)
        .or(config.base_options.deadline);
    let canon = CanonicalInstance::of(&inst);
    let policy = record.cache.unwrap_or_default();
    // the solution cache only sees records it could legitimately answer:
    // caching enabled, and not a record the pipeline would refuse on
    // `max_jobs` before solving
    let effective = record.apply_overrides(config.base_options.clone());
    let fingerprint = if !solutions.is_disabled()
        && policy != CachePolicy::Off
        && effective.max_jobs.is_none_or(|cap| inst.len() <= cap)
    {
        let named = record.solver.as_deref().unwrap_or(&config.default_solver);
        let solver = registry
            .get(named)
            .map(|e| e.key().to_string())
            .unwrap_or_else(|| named.to_string());
        Some(SolveFingerprint {
            solver,
            seed: effective.seed,
            decompose: effective.decompose,
        })
    } else {
        None
    };
    // consult the solution cache *before* dispatch: a hit is answered at
    // lookup speed and never costs a worker (or a feature detection)
    let mut hit = None;
    if let Some(fp) = &fingerprint {
        if policy.read_enabled() {
            match solutions.lookup(&canon, fp) {
                Some(report) => {
                    stats.solution_cache_hits += 1;
                    hit = Some(report);
                }
                None => stats.solution_cache_misses += 1,
            }
        }
    }
    SolveItem {
        line,
        record,
        inst,
        canon,
        policy,
        fingerprint,
        hit,
        features: None,
        budget,
    }
}

/// The worker-side solve of one prepared item, under `token` (already
/// armed with the record's budget, a child of the session token). The
/// item's `features` must be filled by a detection pass first.
pub(crate) fn solve_prepared(
    item: &SolveItem,
    registry: &SolverRegistry,
    config: &ServeConfig,
    solutions: &SolutionCache,
    token: &CancelToken,
) -> RecordResult {
    let solver = item
        .record
        .solver
        .as_deref()
        .unwrap_or(&config.default_solver);
    let features = item.features.clone().expect("filled by detection pass");
    // the record token is the single deadline authority here: clear the
    // option so the pipeline does not re-arm a second (later) deadline on
    // top of it
    let mut options = item.record.apply_overrides(config.base_options.clone());
    options.deadline = None;
    // a read-enabled exact solve that missed the cache may still
    // warm-start from a cached near match (same jobs up to a small edit
    // budget)
    if let Some(fp) = &item.fingerprint {
        if item.policy.read_enabled() && fp.solver.starts_with("exact") {
            options.warm_start = solutions.warm_hint(&item.canon, WARM_EDIT_BUDGET);
        }
    }
    let result = SolveRequest::new(&item.inst)
        .options(options)
        .solver(solver)
        .features(features)
        .cancel(token.clone())
        .solve_with(registry);
    // write-back happens worker-side, off the streaming path; the cache
    // itself refuses cut or truncated reports and re-validates before
    // storing
    if let (Some(fp), Ok(report)) = (&item.fingerprint, &result) {
        if item.policy.write_enabled() {
            solutions.insert(&item.canon, fp, report);
        }
    }
    // deadlines never un-expire, so sampling after the solve is exact; the
    // session token carries no deadline of its own, so a shutdown drain
    // does not masquerade as a budget expiry
    let deadline_expired = token.remaining().is_some_and(|r| r.is_zero());
    RecordResult {
        result,
        deadline_expired,
    }
}

/// Settles an unparseable line in input order: the error line to stream,
/// or the [`ServeError::FailFast`] abort under that policy.
pub(crate) fn settle_bad(
    line: usize,
    message: &str,
    policy: ErrorPolicy,
    stats: &mut SessionStats,
) -> Result<String, ServeError> {
    if policy == ErrorPolicy::FailFast {
        return Err(ServeError::FailFast {
            line,
            id: None,
            message: message.to_string(),
        });
    }
    stats.errors += 1;
    Ok(error_line(line, None, message))
}

/// Settles a record answered from the solution cache before dispatch:
/// streams the cached (re-validated, remapped) report. Not a solve, so it
/// joins neither the deadline statistics nor the latency percentiles.
pub(crate) fn settle_hit(
    line: usize,
    id: Option<&str>,
    report: &busytime_core::SolveReport,
    stats: &mut SessionStats,
) -> String {
    stats.solved += 1;
    stats.total_cost += report.cost;
    stats.total_lower_bound += report.lower_bound;
    report_line(line, id, report)
}

/// Settles one completed solve in input order: counts it, classifies the
/// deadline hit, and returns the response line to stream (or the
/// [`ServeError::FailFast`] abort).
///
/// A record is a deadline hit only when its *budget* cut the solve: the
/// dispatching clock caught the worker over budget, or the deadline chain
/// had actually expired when a flagged report / `Infeasible` refusal came
/// back. A report flagged because the *session* token was poisoned
/// (shutdown drain) is a cut solve but not a deadline hit, and an instant,
/// genuine refusal under a generous budget is an error, not a hit.
pub(crate) fn settle_outcome(
    line: usize,
    id: Option<&str>,
    outcome: &pool::DeadlineOutcome<RecordResult>,
    policy: ErrorPolicy,
    stats: &mut SessionStats,
) -> Result<String, ServeError> {
    let hit = outcome.over_deadline
        || (outcome.result.deadline_expired
            && match &outcome.result.result {
                Ok(report) => report.deadline_hit,
                Err(SolveError::Scheduler(SchedulerError::Infeasible { .. })) => true,
                Err(_) => false,
            });
    if hit {
        stats.deadline_hits += 1;
    }
    match &outcome.result.result {
        Ok(report) => {
            stats.solved += 1;
            stats.total_cost += report.cost;
            stats.total_lower_bound += report.lower_bound;
            if !hit && !report.deadline_hit {
                // p50/p99 describe unaffected records only: budget cuts
                // land in deadline_hits, and a shutdown-drain cut (flagged
                // but not a hit) must not skew the percentiles low either
                stats.latencies.push(outcome.elapsed);
            }
            Ok(report_line(line, id, report))
        }
        Err(e) => {
            if policy == ErrorPolicy::FailFast {
                return Err(ServeError::FailFast {
                    line,
                    id: id.map(str::to_string),
                    message: e.to_string(),
                });
            }
            stats.errors += 1;
            Ok(error_line(line, id, &e.to_string()))
        }
    }
}

/// What [`BatchSession::run`] got out of one attempt to read a line.
enum ReadOutcome {
    /// A complete, newline-terminated line.
    Line(Vec<u8>),
    /// The stream's final, unterminated line — process it, then stop.
    FinalLine(Vec<u8>),
    /// A read timeout with records already pending: dispatch the partial
    /// chunk now instead of waiting for more input.
    Flush,
    /// The stream is done (EOF, or the session token asked for a drain).
    Eof,
}

/// One batch session: the chunked parse → batched feature-detect →
/// deadline-pool solve → in-order stream core, reusable over any
/// `BufRead`/`Write` pair.
///
/// [`serve`] wraps one session around stdin-style streams with a private
/// cache; the [`crate::listener`] builds one session per connection,
/// shares a [`SharedFeatureCache`] across all of them, and installs its
/// shutdown token via [`BatchSession::cancel`] so SIGINT drains in-flight
/// chunks instead of severing them.
pub struct BatchSession<'a> {
    registry: &'a SolverRegistry,
    config: &'a ServeConfig,
    cache: SharedFeatureCache,
    solutions: SolutionCache,
    cancel: CancelToken,
    /// `None` = resolve [`Executor::global`] lazily at [`BatchSession::run`]
    /// time — building a session with a pinned pool must not materialize
    /// the process-wide one as a side effect.
    executor: Option<Executor>,
}

impl<'a> BatchSession<'a> {
    /// A session over `registry`/`config` with a private feature cache, no
    /// cancellation (runs to EOF), and the process-wide
    /// [`Executor::global`] as its pool.
    pub fn new(registry: &'a SolverRegistry, config: &'a ServeConfig) -> Self {
        BatchSession {
            registry,
            config,
            cache: SharedFeatureCache::new(),
            solutions: SolutionCache::new(config.solution_cache),
            cancel: CancelToken::never(),
            executor: None,
        }
    }

    /// Uses `cache` instead of a private one — hand clones of one handle
    /// to many sessions and repeated instances are detected once
    /// process-wide.
    pub fn cache(mut self, cache: SharedFeatureCache) -> Self {
        self.cache = cache;
        self
    }

    /// Uses `solutions` as the session's [`SolutionCache`] instead of the
    /// private one sized by [`ServeConfig::solution_cache`] — the listener
    /// hands clones of one handle to every connection so a record solved on
    /// one connection is a lookup on the next.
    pub fn solutions(mut self, solutions: SolutionCache) -> Self {
        self.solutions = solutions;
        self
    }

    /// Submits this session's chunks to `executor` instead of the global
    /// pool — tests pin exact worker budgets this way, and embedders can
    /// isolate a session from the process pool.
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Installs `cancel` as the session token. Once it fires the session
    /// drains: in-flight solves are cut at their next cooperative
    /// checkpoint (the token parents every record's deadline token), the
    /// records already parsed are answered, and `run` returns its summary
    /// without reading further input. Reads only notice mid-line
    /// cancellation when the transport has a read timeout (sockets); plain
    /// pipes notice at the next chunk boundary.
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }

    /// Reads the next line into/out of `carry`, which persists across
    /// calls: a timed-out read can leave a partial line in it (the bytes
    /// stay put for the next call), so pending records can flush while a
    /// half-received line is still in flight.
    fn next_line<R: BufRead>(
        &self,
        input: &mut R,
        carry: &mut Vec<u8>,
        have_pending: bool,
    ) -> Result<ReadOutcome, ServeError> {
        loop {
            match input.read_until(b'\n', carry) {
                // EOF; an earlier timed-out attempt may have left a partial
                // line in `carry`, which is then the stream's final line
                Ok(0) => {
                    return Ok(if carry.is_empty() {
                        ReadOutcome::Eof
                    } else {
                        ReadOutcome::FinalLine(std::mem::take(carry))
                    });
                }
                Ok(_) => {
                    return Ok(if carry.ends_with(b"\n") {
                        ReadOutcome::Line(std::mem::take(carry))
                    } else {
                        // read_until only stops short of its delimiter at
                        // EOF: an unterminated final line
                        ReadOutcome::FinalLine(std::mem::take(carry))
                    });
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    // a transport read timeout is a polling point, not an
                    // error: check for shutdown, flush pending records
                    // (the partial line stays in `carry`), else keep
                    // accumulating
                    if self.cancel.is_cancelled() {
                        return Ok(ReadOutcome::Eof);
                    }
                    if have_pending {
                        return Ok(ReadOutcome::Flush);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Streams one response line per request line from `input` to `out`,
    /// returning the session's summary once the input ends (or the session
    /// token fires). Under [`ErrorPolicy::FailFast`] the first failed
    /// record aborts with [`ServeError::FailFast`] (lines before it are
    /// already written).
    pub fn run<R: BufRead, W: Write>(
        &self,
        mut input: R,
        mut out: W,
    ) -> Result<BatchSummary, ServeError> {
        let config = self.config;
        let started = Instant::now();
        let executor = self.executor.clone().unwrap_or_else(Executor::global);
        let workers = effective_width(config, &executor);
        let chunk_size = effective_chunk_size(config, workers);

        let mut stats = SessionStats::default();
        let mut line_no = 0usize;
        let mut eof = false;
        // a partially-received line survives chunk dispatches here; the
        // buffer starts from per-thread scratch and is recycled line to
        // line below, so a steady-state session reads without allocating
        let mut carry: Vec<u8> = pool::scratch::take_bytes();
        while !eof && !self.cancel.is_cancelled() {
            // read one chunk of request lines (raw bytes: a line that is
            // not valid UTF-8 is a bad record, not a fatal stream error)
            let mut entries: Vec<Entry> = Vec::new();
            let mut items: Vec<SolveItem> = Vec::new();
            'chunk: while entries.len() < chunk_size {
                let buf = match self.next_line(&mut input, &mut carry, !entries.is_empty())? {
                    ReadOutcome::Eof => {
                        eof = true;
                        break 'chunk;
                    }
                    ReadOutcome::Flush => break 'chunk,
                    ReadOutcome::Line(buf) => buf,
                    ReadOutcome::FinalLine(buf) => {
                        eof = true;
                        buf
                    }
                };
                line_no += 1;
                let parsed = std::str::from_utf8(&buf)
                    .map_err(|e| format!("line is not valid UTF-8: {e}"))
                    .and_then(|line| {
                        let trimmed = line.trim();
                        if trimmed.is_empty() {
                            return Ok(None); // blank lines are not records
                        }
                        BatchRecord::parse(trimmed)
                            .map(Some)
                            .map_err(|e| e.to_string())
                    });
                // `parsed` owns everything it needs: hand the line buffer
                // back to `carry` so the next read reuses its capacity
                if carry.capacity() < buf.capacity() {
                    let mut buf = buf;
                    buf.clear();
                    carry = buf;
                }
                match parsed {
                    Ok(None) => {
                        if eof {
                            break 'chunk;
                        }
                    }
                    Ok(Some(record)) => {
                        stats.records += 1;
                        entries.push(Entry::Solve { item: items.len() });
                        items.push(prepare_record(
                            record,
                            line_no,
                            self.registry,
                            config,
                            &self.solutions,
                            &mut stats,
                        ));
                        if eof {
                            break 'chunk;
                        }
                    }
                    Err(message) => {
                        stats.records += 1;
                        entries.push(Entry::Bad {
                            line: line_no,
                            message,
                        });
                        if eof || config.error_policy == ErrorPolicy::FailFast {
                            // no point reading (or solving) past the abort
                            // point; records before it still stream below
                            break 'chunk;
                        }
                    }
                }
            }

            // batched feature detection: detect each distinct instance
            // once, consulting (and feeding) the shared cross-session
            // cache; solution-cache hits are already answered and need no
            // features at all
            let mut fresh: Vec<(CanonicalInstance, Instance)> = Vec::new();
            for item in &mut items {
                if item.hit.is_some() {
                    continue;
                }
                if let Some(features) = self.cache.lookup(&item.canon) {
                    stats.cache_hits += 1;
                    item.features = Some(features);
                } else if fresh.iter().any(|(canon, _)| *canon == item.canon) {
                    stats.cache_hits += 1; // repeated within this chunk
                } else {
                    fresh.push((item.canon.clone(), item.inst.clone()));
                }
            }
            let detected =
                executor.par_map_with(workers, &fresh, |(_, inst)| InstanceFeatures::detect(inst));
            stats.cache_misses += fresh.len();
            for ((canon, _), features) in fresh.into_iter().zip(detected) {
                self.cache.insert(canon, features);
            }
            for item in &mut items {
                if item.hit.is_some() || item.features.is_some() {
                    continue;
                }
                // filled from the cache the fresh detections just fed; LRU
                // eviction (or another session's churn) can drop entries in
                // between, so re-detect inline in that rare case
                item.features = Some(match self.cache.lookup(&item.canon) {
                    Some(features) => features,
                    None => InstanceFeatures::detect(&item.inst),
                });
            }

            // fan the solves out under pool-enforced deadlines, every
            // record token a child of the session token; solution-cache
            // hits are already answered and stay off the pool entirely.
            // Results land in dispatch order; `result_of` maps item index →
            // result index for the in-order writer below.
            let dispatch_ids: Vec<usize> = (0..items.len())
                .filter(|&i| items[i].hit.is_none())
                .collect();
            let dispatch: Vec<&SolveItem> = dispatch_ids.iter().map(|&i| &items[i]).collect();
            let mut result_of = vec![usize::MAX; items.len()];
            for (ri, &ii) in dispatch_ids.iter().enumerate() {
                result_of[ii] = ri;
            }
            let results = executor.par_map_deadline_under(
                workers,
                &self.cancel,
                &dispatch,
                |item| item.budget,
                |item, token| solve_prepared(item, self.registry, config, &self.solutions, token),
            );

            // stream response lines in input order; the settle helpers do
            // the shared accounting (counts, deadline classification,
            // latency exclusions) for both serving paths
            for entry in &entries {
                match entry {
                    Entry::Bad { line, message } => {
                        let answer = settle_bad(*line, message, config.error_policy, &mut stats)?;
                        writeln!(out, "{answer}")?;
                    }
                    Entry::Solve { item } => {
                        let SolveItem {
                            line, record, hit, ..
                        } = &items[*item];
                        let answer = match hit {
                            Some(report) => {
                                settle_hit(*line, record.id.as_deref(), report, &mut stats)
                            }
                            None => settle_outcome(
                                *line,
                                record.id.as_deref(),
                                &results[result_of[*item]],
                                config.error_policy,
                                &mut stats,
                            )?,
                        };
                        writeln!(out, "{answer}")?;
                    }
                }
            }
            out.flush()?;
        }

        pool::scratch::recycle_bytes(carry);

        Ok(stats.summarize(started.elapsed(), workers))
    }
}

/// Streams one response line per request line from `input` to `out` — one
/// [`BatchSession`] with a private cache, run to EOF.
///
/// Returns the batch summary on success; under
/// [`ErrorPolicy::FailFast`] the first failed record aborts the batch with
/// [`ServeError::FailFast`] (lines before it are already written).
pub fn serve<R: BufRead, W: Write>(
    input: R,
    out: W,
    registry: &SolverRegistry,
    config: &ServeConfig,
) -> Result<BatchSummary, ServeError> {
    BatchSession::new(registry, config).run(input, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use busytime_core::algo::Scheduler;
    use busytime_core::Schedule;
    use std::borrow::Cow;

    fn run(input: &str, config: &ServeConfig) -> (Vec<String>, BatchSummary) {
        run_with(&SolverRegistry::with_defaults(), input, config)
    }

    fn run_with(
        registry: &SolverRegistry,
        input: &str,
        config: &ServeConfig,
    ) -> (Vec<String>, BatchSummary) {
        let mut out = Vec::new();
        let summary = serve(input.as_bytes(), &mut out, registry, config).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), summary)
    }

    /// A solver that is *genuinely* infeasible, instantly — it never
    /// consults its token, so any `Infeasible` it returns has nothing to
    /// do with deadlines.
    struct Refuser;

    impl Scheduler for Refuser {
        fn name(&self) -> Cow<'static, str> {
            Cow::Borrowed("Refuser")
        }
        fn schedule_with(
            &self,
            _inst: &Instance,
            _cancel: &CancelToken,
        ) -> Result<Schedule, SchedulerError> {
            Err(SchedulerError::Infeasible {
                scheduler: "Refuser".into(),
                budget: "refuses every instance on principle".into(),
            })
        }
    }

    fn registry_with_refuser() -> SolverRegistry {
        let mut registry = SolverRegistry::with_defaults();
        registry.register(
            "refuser",
            "always refuses with Infeasible (test stub)",
            None,
            Box::new(|_| Box::new(Refuser)),
        );
        registry
    }

    #[test]
    fn solves_and_counts() {
        let input = concat!(
            r#"{"id": "a", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#,
            "\n",
            r#"{"id": "b", "generator": {"family": "uniform", "n": 20, "seed": 1}}"#,
            "\n",
        );
        let (lines, summary) = run(input, &ServeConfig::default());
        assert_eq!(lines.len(), 2);
        assert_eq!(summary.records, 2);
        assert_eq!(summary.solved, 2);
        assert_eq!(summary.errors, 0);
        assert!(summary.total_cost >= summary.total_lower_bound);
        assert!(summary.aggregate_gap >= 1.0);
        assert!(summary.throughput > 0.0);
    }

    #[test]
    fn identical_instances_hit_the_feature_cache() {
        let line = r#"{"generator": {"family": "proper", "n": 16, "seed": 4}}"#;
        let input = format!("{line}\n{line}\n{line}\n");
        let (lines, summary) = run(&input, &ServeConfig::default());
        assert_eq!(lines.len(), 3);
        assert_eq!(summary.cache_misses, 1);
        assert_eq!(summary.cache_hits, 2);
    }

    #[test]
    fn repeated_records_hit_the_solution_cache() {
        // chunk_size 1 so the first record's solve lands in the cache
        // before the later records are parsed
        let line = r#"{"instance": {"g": 2, "jobs": [[0, 4], [1, 5], [6, 9]]}}"#;
        let permuted = r#"{"instance": {"g": 2, "jobs": [[6, 9], [0, 4], [1, 5]]}}"#;
        let input = format!("{line}\n{line}\n{permuted}\n");
        let config = ServeConfig {
            chunk_size: 1,
            ..ServeConfig::default()
        };
        let (lines, summary) = run(&input, &config);
        assert_eq!(summary.solved, 3);
        assert_eq!(summary.solution_cache_misses, 1);
        assert_eq!(summary.solution_cache_hits, 2);
        assert!(lines[0].contains("\"cached\": false"), "{}", lines[0]);
        assert!(lines[1].contains("\"cached\": true"), "{}", lines[1]);
        // the hit is the original response verbatim, modulo the line stamp
        // and the `cached` provenance flag
        assert_eq!(
            lines[1]
                .replace("\"line\": 2", "\"line\": 1")
                .replace("\"cached\": true", "\"cached\": false"),
            lines[0]
        );
        // the permuted record hits too (canonical identity), with its
        // assignment remapped into its own job order
        assert!(lines[2].contains("\"cached\": true"), "{}", lines[2]);
        assert!(lines[2].contains("\"ok\": true"), "{}", lines[2]);
    }

    #[test]
    fn cache_off_policy_bypasses_the_solution_cache() {
        let fill = r#"{"instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#;
        let off = r#"{"instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}, "cache": "off"}"#;
        let input = format!("{fill}\n{off}\n");
        let config = ServeConfig {
            chunk_size: 1,
            ..ServeConfig::default()
        };
        let (lines, summary) = run(&input, &config);
        assert_eq!(summary.solved, 2);
        // the off record neither read the cache (no hit despite the
        // identical fill record) nor counted as a miss
        assert_eq!(summary.solution_cache_hits, 0);
        assert_eq!(summary.solution_cache_misses, 1);
        assert!(lines[1].contains("\"cached\": false"), "{}", lines[1]);
    }

    #[test]
    fn zero_capacity_disables_the_solution_cache() {
        let line = r#"{"instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#;
        let input = format!("{line}\n{line}\n");
        let config = ServeConfig {
            chunk_size: 1,
            solution_cache: 0,
            ..ServeConfig::default()
        };
        let (lines, summary) = run(&input, &config);
        assert_eq!(summary.solution_cache_hits, 0);
        assert_eq!(summary.solution_cache_misses, 0);
        assert!(lines[1].contains("\"cached\": false"), "{}", lines[1]);
    }

    #[test]
    fn permuted_identical_instances_share_one_feature_detection() {
        // regression: the feature-cache key used to hash jobs in record
        // order, so the same instance with its jobs shuffled was detected
        // twice
        let a = r#"{"instance": {"g": 2, "jobs": [[0, 4], [1, 5], [6, 9]]}}"#;
        let b = r#"{"instance": {"g": 2, "jobs": [[6, 9], [1, 5], [0, 4]]}}"#;
        let input = format!("{a}\n{b}\n");
        let config = ServeConfig {
            // solution caching off so both records reach feature detection
            solution_cache: 0,
            ..ServeConfig::default()
        };
        let (lines, summary) = run(&input, &config);
        assert_eq!(lines.len(), 2);
        assert_eq!(summary.cache_misses, 1);
        assert_eq!(summary.cache_hits, 1);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let input = concat!(
            "\n",
            r#"{"instance": {"g": 2, "jobs": [[0, 3]]}}"#,
            "\n\n   \n",
        );
        let (lines, summary) = run(input, &ServeConfig::default());
        assert_eq!(lines.len(), 1);
        assert_eq!(summary.records, 1);
        // the response still names the physical input line
        assert!(lines[0].contains("\"line\": 2"), "{}", lines[0]);
    }

    #[test]
    fn invalid_utf8_line_is_a_record_error_not_a_stream_error() {
        let mut input: Vec<u8> = Vec::new();
        input.extend_from_slice(br#"{"instance": {"g": 2, "jobs": [[0, 3]]}}"#);
        input.extend_from_slice(b"\n\xff\xfe broken bytes\n");
        input.extend_from_slice(br#"{"instance": {"g": 2, "jobs": [[1, 4]]}}"#);
        input.extend_from_slice(b"\n");
        let registry = SolverRegistry::with_defaults();
        let mut out = Vec::new();
        let summary = serve(
            input.as_slice(),
            &mut out,
            &registry,
            &ServeConfig::default(),
        )
        .unwrap();
        assert_eq!(summary.records, 3);
        assert_eq!(summary.solved, 2);
        assert_eq!(summary.errors, 1);
        let text = String::from_utf8(out).unwrap();
        let middle = text.lines().nth(1).unwrap();
        assert!(middle.contains("\"ok\": false"), "{middle}");
        assert!(middle.contains("UTF-8"), "{middle}");
    }

    #[test]
    fn fail_fast_aborts_on_first_bad_line() {
        let input = concat!(
            r#"{"instance": {"g": 2, "jobs": [[0, 3]]}}"#,
            "\n",
            "garbage\n",
            r#"{"instance": {"g": 2, "jobs": [[0, 3]]}}"#,
            "\n",
        );
        let registry = SolverRegistry::with_defaults();
        let mut out = Vec::new();
        let config = ServeConfig {
            error_policy: ErrorPolicy::FailFast,
            ..ServeConfig::default()
        };
        let err = serve(input.as_bytes(), &mut out, &registry, &config).unwrap_err();
        match err {
            ServeError::FailFast { line, .. } => assert_eq!(line, 2),
            other => panic!("expected FailFast, got {other:?}"),
        }
        // the good line before the failure was already streamed
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn unknown_solver_becomes_error_line_under_keep_going() {
        let input = concat!(
            r#"{"id": "bad", "instance": {"g": 2, "jobs": [[0, 3]]}, "solver": "martian"}"#,
            "\n",
        );
        let (lines, summary) = run(input, &ServeConfig::default());
        assert_eq!(summary.errors, 1);
        assert!(lines[0].contains("\"ok\": false"));
        assert!(lines[0].contains("martian"));
    }

    #[test]
    fn summary_json_line_is_single_line() {
        let (_, summary) = run("", &ServeConfig::default());
        assert_eq!(summary.records, 0);
        let json = summary.to_json_line();
        assert!(!json.contains('\n'));
        assert!(json.contains("\"records\": 0"));
        assert!(json.contains("\"deadline_hits\": 0"));
        assert!(json.contains("\"solved_per_s\": "));
    }

    #[test]
    fn infeasible_refusal_under_generous_deadline_is_not_a_deadline_hit() {
        // regression: an instantly-infeasible record used to count as a
        // deadline hit whenever the batch carried *any* deadline budget
        let registry = registry_with_refuser();
        let input = concat!(
            r#"{"id": "no", "instance": {"g": 2, "jobs": [[0, 4]]}, "solver": "refuser"}"#,
            "\n",
            r#"{"id": "yes", "instance": {"g": 2, "jobs": [[0, 4]]}}"#,
            "\n",
        );
        let config = ServeConfig {
            base_options: SolveOptions {
                deadline: Some(Duration::from_secs(600)),
                ..SolveOptions::default()
            },
            ..ServeConfig::default()
        };
        let (lines, summary) = run_with(&registry, input, &config);
        assert_eq!(summary.records, 2);
        assert_eq!(summary.solved, 1);
        assert_eq!(summary.errors, 1);
        assert_eq!(
            summary.deadline_hits, 0,
            "a genuine instant refusal must not be counted as a deadline hit"
        );
        assert!(lines[0].contains("\"ok\": false"), "{}", lines[0]);
    }

    #[test]
    fn infeasible_refusal_with_expired_deadline_still_counts() {
        // the complementary direction: `Infeasible` returned under an
        // *expired* budget is a cut with no incumbent — a real hit
        let registry = registry_with_refuser();
        let input = concat!(
            r#"{"id": "cut", "instance": {"g": 2, "jobs": [[0, 4]]}, "solver": "refuser", "deadline_ms": 0}"#,
            "\n",
        );
        let (lines, summary) = run_with(&registry, input, &ServeConfig::default());
        assert_eq!(summary.errors, 1);
        assert_eq!(summary.deadline_hits, 1);
        assert!(lines[0].contains("\"ok\": false"), "{}", lines[0]);
    }

    /// A solver that poisons the *session* token mid-solve (standing in
    /// for a SIGINT arriving while the record is on a worker), then
    /// finishes with a feasible FirstFit schedule.
    struct Drainer {
        session: CancelToken,
    }

    impl Scheduler for Drainer {
        fn name(&self) -> Cow<'static, str> {
            Cow::Borrowed("Drainer")
        }
        fn schedule_with(
            &self,
            inst: &Instance,
            _cancel: &CancelToken,
        ) -> Result<Schedule, SchedulerError> {
            self.session.cancel();
            busytime_core::algo::FirstFit::paper().schedule_with(inst, &CancelToken::never())
        }
    }

    #[test]
    fn shutdown_drain_cuts_flag_the_report_but_not_deadline_hits() {
        // regression companion to the Infeasible fix: a record cut by the
        // session shutdown token (no deadline configured anywhere) must
        // answer deadline_hit: true (the solve *was* cut) without
        // inflating the summary's deadline_hits
        let session = CancelToken::never();
        let mut registry = SolverRegistry::with_defaults();
        let handle = session.clone();
        registry.register(
            "drainer",
            "poisons the session token mid-solve (test stub)",
            None,
            Box::new(move |_| {
                Box::new(Drainer {
                    session: handle.clone(),
                })
            }),
        );
        let input = concat!(
            r#"{"id": "drained", "instance": {"g": 2, "jobs": [[0, 4]]}, "solver": "drainer"}"#,
            "\n",
        );
        let config = ServeConfig::default();
        let mut out = Vec::new();
        let summary = BatchSession::new(&registry, &config)
            .cancel(session)
            .run(input.as_bytes(), &mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(summary.solved, 1);
        assert!(
            text.contains("\"deadline_hit\": true"),
            "the cut must still be visible on the response line: {text}"
        );
        assert_eq!(
            summary.deadline_hits, 0,
            "a shutdown drain is not a deadline hit"
        );
    }

    #[test]
    fn aggregate_gap_does_not_claim_optimality_over_a_zero_bound() {
        // regression: positive cost over a zero bound summarized as 1.0
        assert_eq!(BatchSummary::aggregate_gap(0, 0), 1.0);
        assert_eq!(BatchSummary::aggregate_gap(10, 5), 2.0);
        assert!(BatchSummary::aggregate_gap(10, 0).is_infinite());

        let (_, mut summary) = run("", &ServeConfig::default());
        summary.total_cost = 10;
        summary.aggregate_gap = BatchSummary::aggregate_gap(10, 0);
        let json = summary.to_json_line();
        assert!(
            json.contains("\"aggregate_gap\": null"),
            "non-finite gap must serialize as null: {json}"
        );
    }

    #[test]
    fn throughput_counts_processed_records_not_just_solved() {
        // regression: an error-heavy batch reported near-zero throughput
        // despite answering every record
        let input = concat!(
            r#"{"instance": {"g": 2, "jobs": [[0, 4]]}}"#,
            "\n",
            "garbage\n",
            "also garbage\n",
        );
        let (_, summary) = run(input, &ServeConfig::default());
        assert_eq!(summary.records, 3);
        assert_eq!(summary.solved, 1);
        let wall = summary.wall.as_secs_f64();
        assert!(
            (summary.throughput * wall - 3.0).abs() < 1e-6,
            "throughput must cover all {} records: {} rec/s over {} s",
            summary.records,
            summary.throughput,
            wall
        );
        assert!(
            (summary.solved_per_s * wall - 1.0).abs() < 1e-6,
            "solved_per_s must cover the solved record only"
        );
    }

    #[test]
    fn shared_cache_carries_detections_across_sessions() {
        let registry = SolverRegistry::with_defaults();
        let config = ServeConfig::default();
        let cache = SharedFeatureCache::new();
        let line = r#"{"generator": {"family": "proper", "n": 16, "seed": 4}}"#;
        let input = format!("{line}\n");

        let mut out = Vec::new();
        let first = BatchSession::new(&registry, &config)
            .cache(cache.clone())
            .run(input.as_bytes(), &mut out)
            .unwrap();
        assert_eq!((first.cache_hits, first.cache_misses), (0, 1));

        let mut out = Vec::new();
        let second = BatchSession::new(&registry, &config)
            .cache(cache)
            .run(input.as_bytes(), &mut out)
            .unwrap();
        assert_eq!(
            (second.cache_hits, second.cache_misses),
            (1, 0),
            "the second session must reuse the first session's detection"
        );
    }

    #[test]
    fn lru_cache_keeps_a_hot_key_through_churn() {
        // regression for the epoch-reset eviction this cache replaced: a
        // hot instance touched between inserts used to be wiped whenever
        // the fill crossed capacity; true LRU must keep it resident
        let cache = SharedFeatureCache::with_capacity(4);
        let hot = Instance::from_pairs([(0, 4), (1, 5)], 2);
        let hot_canon = CanonicalInstance::of(&hot);
        cache.insert(hot_canon.clone(), InstanceFeatures::detect(&hot));
        for i in 0..16i64 {
            assert!(
                cache.lookup(&hot_canon).is_some(),
                "hot entry evicted at churn step {i}"
            );
            let cold = Instance::from_pairs([(10 + i, 13 + i), (11 + i, 14 + i)], 2);
            cache.insert(
                CanonicalInstance::of(&cold),
                InstanceFeatures::detect(&cold),
            );
        }
        assert!(
            cache.lookup(&hot_canon).is_some(),
            "hot entry must survive churn past capacity"
        );
        // the capacity bound still holds: the earliest cold entry is gone
        let first_cold = Instance::from_pairs([(10, 13), (11, 14)], 2);
        assert!(
            cache.lookup(&CanonicalInstance::of(&first_cold)).is_none(),
            "LRU victim must have been evicted"
        );
    }

    #[test]
    fn duplicate_insert_refreshes_instead_of_duplicating() {
        // two sessions can race miss → detect → insert on one instance;
        // the second insert must not spend a capacity slot
        let cache = SharedFeatureCache::with_capacity(2);
        let a = Instance::from_pairs([(0, 4)], 2);
        let b = Instance::from_pairs([(1, 5)], 2);
        let (ca, cb) = (CanonicalInstance::of(&a), CanonicalInstance::of(&b));
        cache.insert(ca.clone(), InstanceFeatures::detect(&a));
        cache.insert(cb.clone(), InstanceFeatures::detect(&b));
        cache.insert(ca.clone(), InstanceFeatures::detect(&a));
        assert!(cache.lookup(&cb).is_some());
        assert!(cache.lookup(&ca).is_some());
    }

    #[test]
    fn session_runs_on_a_provided_executor() {
        let registry = SolverRegistry::with_defaults();
        let config = ServeConfig::default();
        let executor = busytime_core::pool::Executor::new(1);
        let input = concat!(r#"{"instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#, "\n");
        let mut out = Vec::new();
        let summary = BatchSession::new(&registry, &config)
            .executor(executor)
            .run(input.as_bytes(), &mut out)
            .unwrap();
        assert_eq!(summary.solved, 1);
        assert_eq!(
            summary.workers, 1,
            "effective width must be the provided executor's budget"
        );
    }

    #[test]
    fn cancelled_session_stops_reading_at_the_next_chunk() {
        let registry = SolverRegistry::with_defaults();
        let config = ServeConfig {
            chunk_size: 1,
            ..ServeConfig::default()
        };
        let token = CancelToken::never();
        token.cancel();
        let input = concat!(
            r#"{"instance": {"g": 2, "jobs": [[0, 4]]}}"#,
            "\n",
            r#"{"instance": {"g": 2, "jobs": [[1, 5]]}}"#,
            "\n",
        );
        let mut out = Vec::new();
        let summary = BatchSession::new(&registry, &config)
            .cancel(token)
            .run(input.as_bytes(), &mut out)
            .unwrap();
        assert_eq!(
            summary.records, 0,
            "a pre-cancelled session must drain without reading records"
        );
        assert!(out.is_empty());
    }

    #[test]
    fn record_deadline_cuts_and_is_counted() {
        // deadline_ms: 0 expires before any solver work: the portfolio
        // returns its cheapest incumbent, flagged, and the summary counts
        // the hit while keeping the latency stats clean of it
        let input = concat!(
            r#"{"id": "cut", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}, "deadline_ms": 0}"#,
            "\n",
            r#"{"id": "free", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#,
            "\n",
        );
        let (lines, summary) = run(input, &ServeConfig::default());
        assert_eq!(summary.solved, 2);
        assert_eq!(summary.deadline_hits, 1);
        assert!(lines[0].contains("\"deadline_hit\": true"), "{}", lines[0]);
        assert!(lines[1].contains("\"deadline_hit\": false"), "{}", lines[1]);
        match crate::protocol::parse_output_line(&lines[0]).unwrap() {
            crate::protocol::OutputLine::Report { report, .. } => {
                assert!(report.deadline_hit);
                assert_eq!(report.assignment.len(), 2);
            }
            other => panic!("expected report line, got {other:?}"),
        }
    }

    #[test]
    fn batch_level_deadline_applies_to_every_record() {
        let input = concat!(
            r#"{"instance": {"g": 2, "jobs": [[0, 4]]}}"#,
            "\n",
            r#"{"instance": {"g": 2, "jobs": [[1, 5]]}}"#,
            "\n",
        );
        let config = ServeConfig {
            base_options: SolveOptions {
                deadline: Some(Duration::ZERO),
                ..SolveOptions::default()
            },
            ..ServeConfig::default()
        };
        let (lines, summary) = run(input, &config);
        assert_eq!(summary.deadline_hits, 2);
        for line in &lines {
            assert!(line.contains("\"deadline_hit\": true"), "{line}");
        }
    }

    #[test]
    fn record_deadline_overrides_batch_default() {
        // batch default of 0 would cut everything; the record's generous
        // per-record deadline_ms must win
        let input = concat!(
            r#"{"instance": {"g": 2, "jobs": [[0, 4]]}, "deadline_ms": 60000}"#,
            "\n",
        );
        let config = ServeConfig {
            base_options: SolveOptions {
                deadline: Some(Duration::ZERO),
                ..SolveOptions::default()
            },
            ..ServeConfig::default()
        };
        let (lines, summary) = run(input, &config);
        assert_eq!(summary.deadline_hits, 0);
        assert!(lines[0].contains("\"deadline_hit\": false"), "{}", lines[0]);
    }

    /// A shard-shaped summary built from an explicit latency sample set,
    /// the way a real per-shard batch computes its percentiles.
    fn shard_summary(samples_ms: &[u64], cost: i64, bound: i64) -> BatchSummary {
        let mut sorted: Vec<Duration> = samples_ms
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        sorted.sort();
        let wall = Duration::from_millis(samples_ms.iter().sum::<u64>().max(1));
        let solved = sorted.len();
        BatchSummary {
            records: solved,
            solved,
            errors: 0,
            total_cost: cost,
            total_lower_bound: bound,
            aggregate_gap: BatchSummary::aggregate_gap(cost, bound),
            wall,
            throughput: solved as f64 / wall.as_secs_f64(),
            solved_per_s: solved as f64 / wall.as_secs_f64(),
            p50_solve: percentile(&sorted, 50.0),
            p99_solve: percentile(&sorted, 99.0),
            cache_hits: 0,
            cache_misses: solved,
            solution_cache_hits: 0,
            solution_cache_misses: 0,
            workers: 1,
            deadline_hits: 0,
        }
    }

    #[test]
    fn merge_recombines_percentiles_from_per_shard_samples() {
        // a fast shard and a slow shard, percentiles computed from real
        // sample sets by the same `percentile` the engine uses
        let fast = shard_summary(&[1, 2, 3, 4, 5], 10, 10);
        let slow = shard_summary(&[40, 50, 60], 30, 15);
        let (p50_fast, p50_slow) = (fast.p50_solve, slow.p50_solve);
        let p99_worst = fast.p99_solve.max(slow.p99_solve);

        let mut merged = fast.clone();
        merged.merge(&slow);

        assert_eq!(merged.records, 8);
        assert_eq!(merged.solved, 8);
        // the weighted-mean median always lands between the shard medians
        assert!(merged.p50_solve > p50_fast, "{merged:?}");
        assert!(merged.p50_solve < p50_slow, "{merged:?}");
        // exact: (3*5 + 50*3) / 8
        let expect = (p50_fast.as_secs_f64() * 5.0 + p50_slow.as_secs_f64() * 3.0) / 8.0;
        assert!((merged.p50_solve.as_secs_f64() - expect).abs() < 1e-9);
        // the merged tail is the worst shard's tail, never better
        assert_eq!(merged.p99_solve, p99_worst);
        // wall is concurrent (max), not sequential (sum)
        assert_eq!(merged.wall, fast.wall.max(slow.wall));
        // gap recomputed from the sums: (10+30)/(10+15)
        assert!((merged.aggregate_gap - 40.0 / 25.0).abs() < 1e-12);
    }

    #[test]
    fn merge_propagates_infinite_gap_and_null_round_trips() {
        // one shard certified nothing (bound 0, positive cost): its gap is
        // infinite, and the merged bound sum stays 0 — the merged summary
        // must not claim a finite gap it cannot certify
        let certified_nothing = shard_summary(&[2], 7, 0);
        assert!(certified_nothing.aggregate_gap.is_infinite());
        let mut merged = shard_summary(&[1], 0, 0);
        merged.merge(&certified_nothing);
        assert!(merged.aggregate_gap.is_infinite(), "{merged:?}");

        // ... and the wire form survives the round trip: infinity is
        // `null` on the wire and comes back as infinity
        let line = merged.to_json_line();
        assert!(line.contains("\"aggregate_gap\": null"), "{line}");
        let back = BatchSummary::from_json_line(&line).unwrap();
        assert!(back.aggregate_gap.is_infinite());
        assert_eq!(back.records, merged.records);

        // a *positive* bound on the other side makes the recomputed gap
        // finite again — exactly what one undivided batch would report
        let mut merged = shard_summary(&[1], 10, 20);
        merged.merge(&certified_nothing);
        assert!((merged.aggregate_gap - 17.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counts_and_rates() {
        let mut a = shard_summary(&[10, 10], 8, 8);
        a.deadline_hits = 1;
        a.errors = 1;
        a.records += 1; // the error record
        let mut b = shard_summary(&[20], 5, 5);
        b.deadline_hits = 2;
        let (rate_a, rate_b) = (a.solved_per_s, b.solved_per_s);

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.deadline_hits, 3);
        assert_eq!(merged.errors, 1);
        assert_eq!(merged.records, 4);
        assert_eq!(merged.workers, 2);
        // concurrent shards: the fleet's solve rate is the sum of parts
        assert!((merged.solved_per_s - (rate_a + rate_b)).abs() < 1e-9);
        assert!((merged.throughput - (a.throughput + b.throughput)).abs() < 1e-9);
    }

    #[test]
    fn summary_json_line_round_trips() {
        let (_, summary) = run(
            "{\"instance\": {\"g\": 2, \"jobs\": [[0, 4], [1, 5]]}}\n",
            &ServeConfig::default(),
        );
        let back = BatchSummary::from_json_line(&summary.to_json_line()).unwrap();
        assert_eq!(back.records, summary.records);
        assert_eq!(back.solved, summary.solved);
        assert_eq!(back.total_cost, summary.total_cost);
        assert_eq!(back.total_lower_bound, summary.total_lower_bound);
        assert_eq!(back.workers, summary.workers);
        assert_eq!(back.solution_cache_hits, summary.solution_cache_hits);
        assert_eq!(back.solution_cache_misses, summary.solution_cache_misses);
        assert!((back.aggregate_gap - summary.aggregate_gap).abs() < 1e-5);
        assert!((back.wall.as_secs_f64() - summary.wall.as_secs_f64()).abs() < 1e-3);

        // response lines and junk must be rejected, never mis-merged
        assert!(BatchSummary::from_json_line(
            "{\"schema_version\": 1, \"line\": 3, \"id\": null, \"ok\": true}"
        )
        .is_err());
        assert!(BatchSummary::from_json_line("{\"status\": \"ok\"}").is_err());
        assert!(BatchSummary::from_json_line("not json").is_err());
    }
}
