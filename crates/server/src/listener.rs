//! The long-lived socket front-end: NDJSON over TCP/Unix sockets, plus a
//! minimal HTTP/1.1 mode.
//!
//! [`Listener`] turns the batch engine into an actual network service. It
//! accepts connections on one endpoint ([`ListenMode`]) and drives one
//! [`BatchSession`] per connection, so every connection speaks exactly the
//! stdin protocol of `busytime-cli serve`: NDJSON request records in,
//! one response line per record, in input order — followed by one
//! [`BatchSummary`] JSON line once the client half-closes its write side.
//! All connections share the process-wide [`SharedFeatureCache`] (a
//! repeated instance is detected once across the whole server, not once
//! per connection) and submit their solve chunks to one persistent
//! [`busytime_core::pool::Executor`] — by default the process-wide
//! [`Executor::global`], sized via `--workers` / `BUSYTIME_WORKERS`. The
//! worker budget is therefore a true *process* cap: no matter how many
//! connections are live, at most `workers` solver threads run at once;
//! concurrent connections multiplex fairly over the pool's injection
//! queue, and `GET /healthz` (plus the per-connection log lines) reports
//! the pool's busy-worker count and queue depth alongside the budget.
//! Per-record `deadline_ms` budgets (or the server's `--deadline-ms`
//! default) ride the same [`busytime_core::CancelToken`] path as the batch
//! tool, making them the request timeout of the service; a record's budget
//! is armed when a worker picks it up, so time spent queued behind other
//! connections never counts against it.
//!
//! The HTTP mode ([`ListenMode::Http`]) serves two routes for clients that
//! would rather not speak a raw socket: `POST /solve` takes an NDJSON
//! batch as its body and answers with the response lines plus the summary
//! line as `application/x-ndjson`, and `GET /healthz` answers a liveness
//! probe. It is deliberately minimal HTTP/1.1 — `Content-Length` bodies,
//! keep-alive, nothing else — because the protocol payload is NDJSON
//! either way.
//!
//! Shutdown is graceful by construction: cancelling the listener's
//! [`Listener::shutdown_token`] (the CLI wires SIGINT/SIGTERM to it) stops
//! the accept loop, cuts in-flight solves at their next cooperative
//! checkpoint through the session-token tree, lets every connection answer
//! the records it already parsed, write its summary and close, and then
//! returns the aggregate [`ListenReport`]. An optional idle timeout
//! triggers the same drain when no connection has been active for the
//! configured duration.
//!
//! ```no_run
//! use std::sync::Arc;
//! use busytime_core::solve::SolverRegistry;
//! use busytime_server::listener::{ListenConfig, ListenMode, Listener};
//!
//! let registry = Arc::new(SolverRegistry::with_defaults());
//! let mode = ListenMode::Tcp("127.0.0.1:0".into());
//! let listener = Listener::bind(&mode, registry, ListenConfig::default()).unwrap();
//! eprintln!("listening on {}", listener.endpoint());
//! let report = listener.run().unwrap(); // until shutdown_token fires
//! eprintln!("served {} connections", report.connections);
//! ```

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use busytime_core::cancel::CancelToken;
use busytime_core::memo::SolutionCache;
use busytime_core::pool::Executor;
use busytime_core::solve::{SolverRegistry, REPORT_SCHEMA_VERSION};
use busytime_instances::json;

use crate::engine::{
    lock_ignoring_poison, BatchSession, BatchSummary, ServeConfig, ServeError, SharedFeatureCache,
};
use crate::http::{
    read_http_body, read_http_head, write_http_response, HttpError, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
use crate::protocol::error_line;

/// Which endpoint (and wire protocol) the listener serves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenMode {
    /// NDJSON over a TCP socket; the string is a `bind` address like
    /// `127.0.0.1:7171` (`:0` picks an ephemeral port — read it back via
    /// [`Listener::local_addr`]).
    Tcp(String),
    /// NDJSON over a Unix-domain socket at the given path. The path is
    /// removed when the listener shuts down.
    Unix(PathBuf),
    /// Minimal HTTP/1.1 over TCP: `POST /solve` (NDJSON body in, NDJSON
    /// body out) and `GET /healthz`.
    Http(String),
}

/// Where per-connection summaries go as connections close.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConnLog {
    /// No per-connection logging.
    Quiet,
    /// One human-readable line per connection on stderr (the default).
    #[default]
    Text,
    /// One [`BatchSummary::to_json_line`] per connection on stderr.
    Json,
}

/// Listener configuration on top of the per-session [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct ListenConfig {
    /// The batch-engine configuration every connection's session runs
    /// under (workers, default solver, chunking, error policy, and the
    /// batch-default deadline that acts as the request timeout).
    pub serve: ServeConfig,
    /// Concurrent-connection cap (`0` = 64). Connections beyond the cap
    /// are answered with a structured at-capacity error (HTTP 503 in HTTP
    /// mode) and closed immediately.
    pub max_conns: usize,
    /// Shut the listener down once no connection has been active for this
    /// long (`None` = serve until the shutdown token fires).
    pub idle_timeout: Option<Duration>,
    /// Cut a single connection that has sent no byte for this long
    /// (`None` = let clients idle forever). The cut is polite: the session
    /// treats it as the client's end-of-batch, answers what it has,
    /// writes its summary and closes. Without this, `max_conns` silent
    /// connections would hold their capacity slots indefinitely.
    pub conn_idle_timeout: Option<Duration>,
    /// Socket read timeout: the granularity at which blocked connection
    /// reads poll the shutdown token and flush partial chunks. Not a
    /// client-visible timeout — a slow client just gets polled more often.
    pub read_timeout: Duration,
    /// Socket write timeout (default one minute): how long a single write
    /// may block on a client that has stopped reading its responses
    /// before the connection is aborted. Without it a stalled reader
    /// wedges its connection thread in `write`, holds a capacity slot
    /// forever, and hangs the shutdown drain.
    pub write_timeout: Duration,
    /// Per-connection summary logging.
    pub log: ConnLog,
    /// An identity for this listener when it serves as one backend of a
    /// sharded fleet (`--shard-id`). Reported in the `/healthz` body and
    /// tagged onto every per-connection log line so a merged stderr stream
    /// stays attributable.
    pub shard_id: Option<String>,
}

impl Default for ListenConfig {
    fn default() -> Self {
        ListenConfig {
            serve: ServeConfig::default(),
            max_conns: 0,
            idle_timeout: None,
            conn_idle_timeout: None,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(60),
            log: ConnLog::default(),
            shard_id: None,
        }
    }
}

/// Aggregate statistics over a listener's lifetime, returned by
/// [`Listener::run`] after the drain completes.
#[derive(Clone, Debug, Default)]
pub struct ListenReport {
    /// Connections accepted and served to completion (including ones that
    /// ended in a transport error mid-batch).
    pub connections: usize,
    /// Connections refused at the [`ListenConfig::max_conns`] cap.
    pub rejected: usize,
    /// Records processed across connections that completed their batch.
    /// A connection whose transport died mid-batch counts in
    /// `connections` but its partial batch is not aggregated (its session
    /// never produced a summary).
    pub records: usize,
    /// Records solved across completed connections.
    pub solved: usize,
    /// Records answered with an error line across completed connections.
    pub errors: usize,
    /// Deadline hits across completed connections.
    pub deadline_hits: usize,
    /// One-shot `GET` health probes answered on an NDJSON endpoint. Kept
    /// out of `connections` so a router polling `/healthz` twice a second
    /// does not swamp the count of batches actually served.
    pub health_probes: usize,
}

impl ListenReport {
    fn absorb(&mut self, summary: &BatchSummary) {
        self.records += summary.records;
        self.solved += summary.solved;
        self.errors += summary.errors;
        self.deadline_hits += summary.deadline_hits;
    }
}

impl std::fmt::Display for ListenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "listener: {} connections ({} rejected) | {} records ({} solved, {} errors) | \
             deadline hits: {}",
            self.connections,
            self.rejected,
            self.records,
            self.solved,
            self.errors,
            self.deadline_hits,
        )?;
        if self.health_probes > 0 {
            write!(f, " | health probes: {}", self.health_probes)?;
        }
        Ok(())
    }
}

/// One accepted connection, abstracted over the socket family.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> std::io::Result<Conn> {
        Ok(match self {
            Conn::Tcp(s) => Conn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Conn::Unix(s) => Conn::Unix(s.try_clone()?),
        })
    }

    fn prepare(&self, read_timeout: Duration, write_timeout: Duration) -> std::io::Result<()> {
        // the write timeout is the defense against a client that sends a
        // batch and then never reads its responses: without it the
        // connection thread wedges in a blocking write once the socket
        // buffer fills, holds its capacity slot forever, and hangs the
        // shutdown drain's join
        match self {
            Conn::Tcp(s) => {
                // accepted sockets do not inherit the acceptor's
                // non-blocking flag on Linux, but make it explicit
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(read_timeout))?;
                s.set_write_timeout(Some(write_timeout))
            }
            #[cfg(unix)]
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(read_timeout))?;
                s.set_write_timeout(Some(write_timeout))
            }
        }
    }

    /// Half-close: the client sees EOF after the summary line, while its
    /// own pending writes still drain.
    fn shutdown_write(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Write),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(Shutdown::Write),
        };
    }

    fn peer(&self) -> String {
        match self {
            Conn::Tcp(s) => s
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| String::from("tcp-peer")),
            #[cfg(unix)]
            Conn::Unix(_) => String::from("unix-peer"),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The bound socket, abstracted over the socket family.
enum Acceptor {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Acceptor {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Acceptor::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Acceptor::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// Everything a connection thread needs, bundled so spawning stays tidy.
struct ConnShared {
    registry: Arc<SolverRegistry>,
    config: ListenConfig,
    cache: SharedFeatureCache,
    solutions: SolutionCache,
    executor: Executor,
    shutdown: CancelToken,
    http: bool,
    active: AtomicUsize,
    /// Live polite-rejection threads; bounded by [`MAX_REJECT_THREADS`].
    rejecting: AtomicUsize,
    report: Mutex<ListenReport>,
    last_activity: Mutex<Instant>,
    /// When the listener started serving, for the `/healthz` uptime field.
    started: Instant,
}

/// Polite rejections (write the at-capacity answer, drain the client's
/// pending bytes) each take a short-lived thread; past this many at once a
/// connect flood is being shed, and further connections are dropped
/// outright — overload must not mint unbounded threads.
const MAX_REJECT_THREADS: usize = 32;

/// A long-lived front-end accepting batch-solve connections; see the
/// [module docs](self) for the protocol and shutdown contract.
pub struct Listener {
    acceptor: Acceptor,
    http: bool,
    registry: Arc<SolverRegistry>,
    config: ListenConfig,
    shutdown: CancelToken,
    cache: SharedFeatureCache,
    solutions: SolutionCache,
    /// `None` = resolve [`Executor::global`] lazily in [`Listener::run`] —
    /// binding with a pinned pool must not materialize the global one.
    executor: Option<Executor>,
}

impl Listener {
    /// Binds `mode`'s endpoint and prepares (but does not start) the
    /// accept loop. The socket is open once this returns — clients may
    /// connect and will be served as soon as [`Listener::run`] starts.
    pub fn bind(
        mode: &ListenMode,
        registry: Arc<SolverRegistry>,
        config: ListenConfig,
    ) -> std::io::Result<Listener> {
        let (acceptor, http) = match mode {
            ListenMode::Tcp(addr) => (Acceptor::Tcp(bind_tcp(addr)?), false),
            ListenMode::Http(addr) => (Acceptor::Tcp(bind_tcp(addr)?), true),
            #[cfg(unix)]
            ListenMode::Unix(path) => {
                let listener = UnixListener::bind(path).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!(
                            "{}: {e} (a stale socket file from an unclean \
                             shutdown must be removed first)",
                            path.display()
                        ),
                    )
                })?;
                listener.set_nonblocking(true)?;
                (Acceptor::Unix(listener, path.clone()), false)
            }
            #[cfg(not(unix))]
            ListenMode::Unix(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix-domain sockets are not available on this platform",
                ))
            }
        };
        let solutions = SolutionCache::new(config.serve.solution_cache);
        Ok(Listener {
            acceptor,
            http,
            registry,
            config,
            shutdown: CancelToken::never(),
            cache: SharedFeatureCache::new(),
            solutions,
            executor: None,
        })
    }

    /// Runs every connection's solve chunks on `executor` instead of the
    /// process-wide [`Executor::global`] — tests pin exact worker budgets
    /// this way, and embedders running several listeners can give each its
    /// own pool.
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// The actually-bound TCP address (resolves `:0` ephemeral ports);
    /// `None` for Unix-domain endpoints.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.acceptor {
            Acceptor::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Acceptor::Unix(..) => None,
        }
    }

    /// A URL-ish description of the bound endpoint, e.g.
    /// `tcp://127.0.0.1:7171`, `http://127.0.0.1:8080` or
    /// `unix:///run/busytime.sock`.
    pub fn endpoint(&self) -> String {
        match &self.acceptor {
            Acceptor::Tcp(l) => {
                let scheme = if self.http { "http" } else { "tcp" };
                match l.local_addr() {
                    Ok(addr) => format!("{scheme}://{addr}"),
                    Err(_) => format!("{scheme}://?"),
                }
            }
            #[cfg(unix)]
            Acceptor::Unix(_, path) => format!("unix://{}", path.display()),
        }
    }

    /// The shutdown token: cancel it (from a signal handler thread, a
    /// supervisor, a test) to drain and stop the listener.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// The cross-connection feature cache (shared with every session this
    /// listener spawns) — exposed so embedders can pre-warm or share it
    /// wider than one listener.
    pub fn feature_cache(&self) -> SharedFeatureCache {
        self.cache.clone()
    }

    /// The cross-connection [`SolutionCache`] (shared with every session
    /// this listener spawns, sized by [`ServeConfig::solution_cache`]) — a
    /// record solved on one connection is a cache hit on the next.
    /// Exposed so embedders can pre-warm it or share it wider than one
    /// listener.
    pub fn solution_cache(&self) -> SolutionCache {
        self.solutions.clone()
    }

    /// Accepts and serves connections until the shutdown token fires or
    /// the idle timeout elapses, then drains every live connection and
    /// returns the aggregate report.
    pub fn run(self) -> std::io::Result<ListenReport> {
        let max_conns = if self.config.max_conns == 0 {
            64
        } else {
            self.config.max_conns
        };
        let read_timeout = self.config.read_timeout;
        let write_timeout = self.config.write_timeout;
        let idle_timeout = self.config.idle_timeout;
        let shared = Arc::new(ConnShared {
            registry: self.registry,
            config: self.config,
            cache: self.cache,
            solutions: self.solutions,
            executor: self.executor.unwrap_or_else(Executor::global),
            shutdown: self.shutdown,
            http: self.http,
            active: AtomicUsize::new(0),
            rejecting: AtomicUsize::new(0),
            report: Mutex::new(ListenReport::default()),
            last_activity: Mutex::new(Instant::now()),
            started: Instant::now(),
        });
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut conn_id = 0usize;

        // a fatal accept error must still fall through to the drain and
        // socket-file cleanup below, so it is captured, not returned
        let mut fatal: Option<std::io::Error> = None;
        while !shared.shutdown.is_cancelled() {
            match self.acceptor.accept() {
                Ok(conn) => {
                    *lock_ignoring_poison(&shared.last_activity) = Instant::now();
                    if shared.active.load(Ordering::SeqCst) >= max_conns {
                        lock_ignoring_poison(&shared.report).rejected += 1;
                        // rejection politely drains the request the client
                        // is mid-sending, which can take a moment — keep
                        // the accept loop responsive by doing it aside.
                        // Under a connect flood the polite path itself is
                        // capped: past MAX_REJECT_THREADS the connection
                        // is simply dropped (shed), never an unbounded
                        // thread per connect.
                        if shared.rejecting.load(Ordering::SeqCst) < MAX_REJECT_THREADS {
                            shared.rejecting.fetch_add(1, Ordering::SeqCst);
                            let shared = Arc::clone(&shared);
                            handles.push(std::thread::spawn(move || {
                                reject_at_capacity(
                                    conn,
                                    shared.http,
                                    max_conns,
                                    read_timeout,
                                    write_timeout,
                                );
                                shared.rejecting.fetch_sub(1, Ordering::SeqCst);
                            }));
                            // sustained rejection traffic is the steady
                            // state of a full server — bound the handle
                            // list here too, not just on the accept path
                            if handles.len() >= 2 * max_conns {
                                handles.retain(|h| !h.is_finished());
                            }
                        }
                        continue;
                    }
                    conn_id += 1;
                    shared.active.fetch_add(1, Ordering::SeqCst);
                    let shared = Arc::clone(&shared);
                    handles.push(std::thread::spawn(move || {
                        // the guard decrements `active` (and stamps the
                        // idle clock) even if the handler panics — a
                        // panicking connection must not leak its capacity
                        // slot until restart
                        let _slot = ActiveSlot {
                            shared: Arc::clone(&shared),
                        };
                        handle_connection(conn, conn_id, &shared);
                    }));
                    // keep the handle list from growing unboundedly on a
                    // long-lived server
                    if handles.len() >= 2 * max_conns {
                        handles.retain(|h| !h.is_finished());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if let Some(idle) = idle_timeout {
                        let quiet = shared.active.load(Ordering::SeqCst) == 0
                            && lock_ignoring_poison(&shared.last_activity).elapsed() >= idle;
                        if quiet {
                            break;
                        }
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // transient per-connection accept failures (the peer reset
                // before we got to it) must not take the server down
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    fatal = Some(e);
                    break;
                }
            }
        }

        // drain: every live connection finishes its parsed records, writes
        // its summary and closes. Cancelling the token here makes that
        // prompt on every exit path (fatal accept errors included) — it
        // cuts in-flight solves cooperatively and stops session reads.
        shared.shutdown.cancel();
        for handle in handles {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let Acceptor::Unix(_, path) = &self.acceptor {
            let _ = std::fs::remove_file(path);
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(lock_ignoring_poison(&shared.report).clone()),
        }
    }
}

/// Decrements the active-connection count when its thread ends, panicking
/// or not, and stamps the listener's idle clock.
struct ActiveSlot {
    shared: Arc<ConnShared>,
}

impl Drop for ActiveSlot {
    fn drop(&mut self) {
        *lock_ignoring_poison(&self.shared.last_activity) = Instant::now();
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn bind_tcp(addr: &str) -> std::io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| std::io::Error::new(e.kind(), format!("{addr}: {e}")))?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

fn reject_at_capacity(
    conn: Conn,
    http: bool,
    max_conns: usize,
    read_timeout: Duration,
    write_timeout: Duration,
) {
    let _ = conn.prepare(read_timeout, write_timeout);
    let message = format!("server at capacity ({max_conns} connections); retry later");
    let mut conn = conn;
    if http {
        let body = format!("{{\"error\": {:?}}}\n", message);
        let _ = write_http_response(
            &mut conn,
            "503 Service Unavailable",
            "application/json",
            body.as_bytes(),
            false,
        );
    } else {
        let _ = writeln!(conn, "{}", error_line(0, None, &message));
        let _ = conn.flush();
    }
    conn.shutdown_write();
    drain_briefly(&mut conn);
}

/// Briefly drains whatever the client was mid-sending before the socket is
/// dropped: closing with unread bytes in the receive buffer would turn
/// into a TCP RST that can discard the response just written. Bounded
/// (~10 reads / first timeout), so a firehose client cannot pin a thread.
fn drain_briefly<R: Read>(reader: &mut R) {
    let mut scratch = [0u8; 4096];
    for _ in 0..10 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

/// What one accepted socket turned out to be.
enum ConnOutcome {
    /// A real client connection (batch served, or died trying).
    Served,
    /// A one-shot `GET /healthz` probe on an NDJSON endpoint — answered
    /// and counted separately, never as a connection.
    HealthProbe,
}

fn handle_connection(conn: Conn, conn_id: usize, shared: &ConnShared) {
    let peer = conn.peer();
    if conn
        .prepare(shared.config.read_timeout, shared.config.write_timeout)
        .is_err()
    {
        return;
    }
    let outcome = if shared.http {
        serve_http_conn(conn, conn_id, &peer, shared).map(|()| ConnOutcome::Served)
    } else {
        serve_ndjson_conn(conn, conn_id, &peer, shared)
    };
    match outcome {
        Ok(ConnOutcome::HealthProbe) => {
            lock_ignoring_poison(&shared.report).health_probes += 1;
        }
        Ok(ConnOutcome::Served) => lock_ignoring_poison(&shared.report).connections += 1,
        Err(e) => {
            lock_ignoring_poison(&shared.report).connections += 1;
            log_line(
                shared.config.log,
                format!(
                    "conn {conn_id}{} ({peer}): aborted: {e}",
                    shard_tag(&shared.config)
                ),
            );
        }
    }
}

/// ` [shard-id]` when this listener has one, empty otherwise — spliced
/// into log lines so a fleet's merged stderr stays attributable.
fn shard_tag(config: &ListenConfig) -> String {
    match &config.shard_id {
        Some(id) => format!(" [{id}]"),
        None => String::new(),
    }
}

/// Turns a silent connection into a polite end-of-batch: every read
/// timeout checks how long the peer has sent nothing, and past the limit
/// the stream reports EOF — so the session (or HTTP loop) summarizes and
/// closes instead of holding a capacity slot forever.
struct IdleCutReader {
    inner: Conn,
    limit: Option<Duration>,
    /// Time spent *blocked in reads* since the last byte arrived. Only
    /// wall-clock actually spent waiting on the client accrues — gaps
    /// where nobody reads the socket (a long solve, response writes)
    /// charge the client nothing, so a well-behaved client waiting out a
    /// slow batch is never cut.
    idle_spent: Duration,
}

impl IdleCutReader {
    fn new(inner: Conn, limit: Option<Duration>) -> Self {
        IdleCutReader {
            inner,
            limit,
            idle_spent: Duration::ZERO,
        }
    }
}

impl Read for IdleCutReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let started = Instant::now();
        match self.inner.read(buf) {
            Ok(n) => {
                self.idle_spent = Duration::ZERO;
                Ok(n)
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                self.idle_spent += started.elapsed();
                if self.limit.is_some_and(|l| self.idle_spent >= l) {
                    Ok(0) // synthetic EOF: the idle budget is spent
                } else {
                    Err(e)
                }
            }
            other => other,
        }
    }
}

/// One NDJSON connection = one batch session over the socket, then the
/// summary line, then half-close.
///
/// The first line is sniffed before the session starts: an HTTP `GET `
/// opener means a health probe (a router, `curl`) reached the NDJSON
/// port, and it is answered with the one-shot `/healthz` response instead
/// of a parse-error line — so one endpoint serves both batches and
/// liveness checks. Anything else (including the sniffed line itself) is
/// fed to the batch session unchanged.
fn serve_ndjson_conn(
    conn: Conn,
    conn_id: usize,
    peer: &str,
    shared: &ConnShared,
) -> Result<ConnOutcome, ServeError> {
    let mut reader = BufReader::new(IdleCutReader::new(
        conn.try_clone().map_err(ServeError::Io)?,
        shared.config.conn_idle_timeout,
    ));
    let mut writer = BufWriter::new(conn);
    let mut first = Vec::new();
    loop {
        match reader.read_until(b'\n', &mut first) {
            // a complete line, or EOF mid-line / before any byte
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                // partial bytes stay accumulated in `first` across retries
                if shared.shutdown.is_cancelled() {
                    break;
                }
            }
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    if first.starts_with(b"GET ") {
        let body = healthz_body(shared);
        write_http_response(
            &mut writer,
            "200 OK",
            "application/json",
            body.as_bytes(),
            false,
        )
        .map_err(ServeError::Io)?;
        writer.get_ref().shutdown_write();
        drain_briefly(&mut reader);
        return Ok(ConnOutcome::HealthProbe);
    }
    let mut input = std::io::Cursor::new(first).chain(reader);
    let session = BatchSession::new(&shared.registry, &shared.config.serve)
        .cache(shared.cache.clone())
        .solutions(shared.solutions.clone())
        .executor(shared.executor.clone())
        .cancel(shared.shutdown.clone());
    let summary = session.run(&mut input, &mut writer)?;
    writeln!(writer, "{}", summary.to_json_line()).map_err(ServeError::Io)?;
    writer.flush().map_err(ServeError::Io)?;
    writer.get_ref().shutdown_write();
    // a drain/idle cut can leave the client's next bytes unread; drain so
    // the close is a FIN and the summary line survives in flight
    drain_briefly(&mut input);
    record_summary(shared, conn_id, peer, &summary);
    Ok(ConnOutcome::Served)
}

/// The `/healthz` body: the honest process-wide capacity picture plus the
/// listener's age, solution-cache effectiveness and (when sharded)
/// identity.
fn healthz_body(shared: &ConnShared) -> String {
    let shard = match &shared.config.shard_id {
        Some(id) => {
            let mut quoted = String::new();
            json::write_string(&mut quoted, id);
            quoted
        }
        None => String::from("null"),
    };
    let cache = shared.solutions.stats();
    format!(
        "{{\"schema_version\": {REPORT_SCHEMA_VERSION}, \"status\": \"ok\", \
         \"workers\": {}, \"busy_workers\": {}, \"queue_depth\": {}, \
         \"active_connections\": {}, \"uptime_ms\": {}, \
         \"solution_cache\": {{\"entries\": {}, \"capacity\": {}, \
         \"hit_rate\": {:.4}, \"warm_starts\": {}}}, \"shard_id\": {shard}}}\n",
        shared.executor.workers(),
        shared.executor.busy_workers(),
        shared.executor.queue_depth(),
        shared.active.load(Ordering::SeqCst),
        shared.started.elapsed().as_millis(),
        cache.entries,
        cache.capacity,
        cache.hit_rate(),
        cache.warm_starts,
    )
}

fn record_summary(shared: &ConnShared, conn_id: usize, peer: &str, summary: &BatchSummary) {
    lock_ignoring_poison(&shared.report).absorb(summary);
    match shared.config.log {
        ConnLog::Quiet => {}
        ConnLog::Text => log_line(
            shared.config.log,
            format!(
                "conn {conn_id}{} ({peer}): {} records ({} solved, {} errors), {} deadline hits \
                 | pool {}/{} busy, {} queued",
                shard_tag(&shared.config),
                summary.records,
                summary.solved,
                summary.errors,
                summary.deadline_hits,
                shared.executor.busy_workers(),
                shared.executor.workers(),
                shared.executor.queue_depth(),
            ),
        ),
        ConnLog::Json => log_line(shared.config.log, summary.to_json_line()),
    }
}

fn log_line(log: ConnLog, line: String) {
    if log != ConnLog::Quiet {
        eprintln!("{line}");
    }
}

// ---------------------------------------------------------------------------
// HTTP mode (the head/body plumbing lives in [`crate::http`])
// ---------------------------------------------------------------------------

/// Serves HTTP requests on one connection until the client closes (or
/// sends `Connection: close`).
fn serve_http_conn(
    conn: Conn,
    conn_id: usize,
    peer: &str,
    shared: &ConnShared,
) -> Result<(), ServeError> {
    let mut reader = BufReader::new(IdleCutReader::new(
        conn.try_clone().map_err(ServeError::Io)?,
        shared.config.conn_idle_timeout,
    ));
    let mut writer = BufWriter::new(conn);
    loop {
        let request = match read_http_head(&mut reader, &shared.shutdown) {
            Ok(Some(request)) => request,
            Ok(None) => break, // EOF, idle cut, or shutdown drain between requests
            Err(HttpError::Malformed(reason)) => {
                let body = format!("{{\"error\": {reason:?}}}\n");
                write_http_response(
                    &mut writer,
                    "400 Bad Request",
                    "application/json",
                    body.as_bytes(),
                    false,
                )
                .map_err(ServeError::Io)?;
                break;
            }
            Err(HttpError::Io(e)) => return Err(ServeError::Io(e)),
        };
        let mut keep_alive = request.keep_alive && !shared.shutdown.is_cancelled();
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                // a body on a probe is unusual but legal; leaving it
                // unread would corrupt the next request on a keep-alive
                // connection, so drain it (or give up on keep-alive when
                // it is unreasonably large)
                match request.content_length {
                    None | Some(0) => {}
                    Some(length) if length <= MAX_HEAD_BYTES => {
                        match read_http_body(&mut reader, length, &shared.shutdown) {
                            Ok(Some(_)) => {}
                            Ok(None) => keep_alive = false,
                            Err(e) => return Err(ServeError::Io(e)),
                        }
                    }
                    Some(_) => keep_alive = false,
                }
                // honest capacity: the process-wide worker budget plus the
                // pool's live load — not the per-session width figure that
                // used to masquerade as capacity here
                let body = healthz_body(shared);
                write_http_response(
                    &mut writer,
                    "200 OK",
                    "application/json",
                    body.as_bytes(),
                    keep_alive,
                )
                .map_err(ServeError::Io)?;
            }
            ("POST", "/solve") => {
                let Some(length) = request.content_length else {
                    write_http_response(
                        &mut writer,
                        "411 Length Required",
                        "application/json",
                        b"{\"error\": \"POST /solve needs a Content-Length body\"}\n",
                        false,
                    )
                    .map_err(ServeError::Io)?;
                    break;
                };
                if length > MAX_BODY_BYTES {
                    write_http_response(
                        &mut writer,
                        "413 Content Too Large",
                        "application/json",
                        b"{\"error\": \"batch body too large\"}\n",
                        false,
                    )
                    .map_err(ServeError::Io)?;
                    break;
                }
                let body = match read_http_body(&mut reader, length, &shared.shutdown) {
                    Ok(Some(body)) => body,
                    Ok(None) => break, // shutdown drain mid-body
                    Err(e) => return Err(ServeError::Io(e)),
                };
                let session = BatchSession::new(&shared.registry, &shared.config.serve)
                    .cache(shared.cache.clone())
                    .solutions(shared.solutions.clone())
                    .executor(shared.executor.clone())
                    .cancel(shared.shutdown.clone());
                let mut response_body = Vec::new();
                match session.run(body.as_slice(), &mut response_body) {
                    Ok(summary) => {
                        writeln!(response_body, "{}", summary.to_json_line())
                            .map_err(ServeError::Io)?;
                        write_http_response(
                            &mut writer,
                            "200 OK",
                            "application/x-ndjson",
                            &response_body,
                            keep_alive,
                        )
                        .map_err(ServeError::Io)?;
                        record_summary(shared, conn_id, peer, &summary);
                    }
                    Err(ServeError::FailFast { line, id, message }) => {
                        let cause = ServeError::FailFast { line, id, message }.to_string();
                        let body = format!("{{\"error\": {cause:?}}}\n");
                        write_http_response(
                            &mut writer,
                            "422 Unprocessable Entity",
                            "application/json",
                            body.as_bytes(),
                            false,
                        )
                        .map_err(ServeError::Io)?;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            (_, "/healthz") | (_, "/solve") => {
                write_http_response(
                    &mut writer,
                    "405 Method Not Allowed",
                    "application/json",
                    b"{\"error\": \"use GET /healthz or POST /solve\"}\n",
                    false,
                )
                .map_err(ServeError::Io)?;
                break;
            }
            _ => {
                write_http_response(
                    &mut writer,
                    "404 Not Found",
                    "application/json",
                    b"{\"error\": \"unknown path; this server has /healthz and /solve\"}\n",
                    false,
                )
                .map_err(ServeError::Io)?;
                break;
            }
        }
        if !keep_alive {
            break;
        }
    }
    writer.flush().map_err(ServeError::Io)?;
    writer.get_ref().shutdown_write();
    // error paths (404/405/411/413/400) close with the client's request
    // body possibly still in flight — drain it so the close is a FIN and
    // the status line survives, exactly as the rejection path does
    drain_briefly(&mut reader);
    Ok(())
}
