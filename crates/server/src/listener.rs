//! The long-lived socket front-end: NDJSON over TCP/Unix sockets, plus a
//! minimal HTTP/1.1 mode — served by a non-blocking readiness loop.
//!
//! [`Listener`] turns the batch engine into an actual network service.
//! Every connection speaks exactly the stdin protocol of `busytime-cli
//! serve`: NDJSON request records in, one response line per record, in
//! input order — followed by one [`BatchSummary`] JSON line once the
//! client half-closes its write side. All connections share the
//! process-wide [`SharedFeatureCache`] and solution cache, and submit
//! their solves to one persistent [`busytime_core::pool::Executor`] — by
//! default the process-wide `Executor::global`, sized via `--workers` /
//! `BUSYTIME_WORKERS`. The worker budget is therefore a true *process*
//! cap: no matter how many connections are live, at most `workers` solver
//! threads run at once.
//!
//! # The readiness loop
//!
//! Connections are *not* served thread-per-connection. A small fixed set
//! of I/O reactor threads ([`ListenConfig::io_threads`], default 2) each
//! run an epoll-backed poll loop (the vendored `polling` shim): reactor 0
//! owns the accept socket and deals new connections round-robin across
//! the set, and every reactor owns the full life of the connections dealt
//! to it — reading request bytes, parsing, writing responses back. Reads
//! and parses feed a per-connection `SessionMachine`; the machine
//! dispatches records onto the shared executor as fire-and-forget jobs
//! and workers post completions back through a wakeable mailbox, so the
//! reactor never blocks and never solves, and the executor workers never
//! touch a socket. 500 idle keep-alive connections therefore cost 500
//! registered file descriptors and `io_threads` threads — not 500
//! threads.
//!
//! Back-pressure is a bounded per-connection outbox
//! ([`ListenConfig::outbox_limit`]): when a client stops reading its
//! responses the outbox fills, the reactor suspends read interest (and
//! the machine stops parsing new records) until the backlog drains below
//! half, and a client that stays wedged past
//! [`ListenConfig::write_timeout`] is aborted. Idle cuts
//! ([`ListenConfig::conn_idle_timeout`]) and the listener-wide
//! [`ListenConfig::idle_timeout`] ride a timer wheel inside the poll
//! loop. At-capacity rejections are plain outbox writes on the reactor —
//! an overload floods structured error lines, never threads.
//!
//! The HTTP mode ([`ListenMode::Http`]) serves `POST /solve` (NDJSON
//! batch body in, response lines plus summary out as
//! `application/x-ndjson`) and `GET /healthz`, with `Content-Length`
//! bodies and keep-alive, parsed incrementally from the same readiness
//! loop.
//!
//! Shutdown is graceful by construction: cancelling
//! [`Listener::shutdown_token`] (the CLI wires SIGINT/SIGTERM to it)
//! stops the accept loop, cuts in-flight solves at their next cooperative
//! checkpoint through the session-token tree, lets every connection
//! answer the records it already parsed, write its summary and close, and
//! then returns the aggregate [`ListenReport`]. An optional idle timeout
//! triggers the same drain when no connection has been active for the
//! configured duration.
//!
//! ```no_run
//! use std::sync::Arc;
//! use busytime_core::solve::SolverRegistry;
//! use busytime_server::listener::{ListenConfig, ListenMode, Listener};
//!
//! let registry = Arc::new(SolverRegistry::with_defaults());
//! let mode = ListenMode::Tcp("127.0.0.1:0".into());
//! let listener = Listener::bind(&mode, registry, ListenConfig::default()).unwrap();
//! eprintln!("listening on {}", listener.endpoint());
//! let report = listener.run().unwrap(); // until shutdown_token fires
//! eprintln!("served {} connections", report.connections);
//! ```

use std::collections::{BTreeMap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use busytime_core::cancel::CancelToken;
use busytime_core::memo::SolutionCache;
use busytime_core::pool::Executor;
use busytime_core::solve::{SolverRegistry, REPORT_SCHEMA_VERSION};
use busytime_instances::json;
use polling::{Event, Interest, Poller, RawFd, Waker};

use crate::engine::{
    lock_ignoring_poison, BatchSummary, ServeConfig, ServeError, SharedFeatureCache,
};
use crate::http::{
    parse_http_head, write_http_response, HttpError, HttpRequest, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
use crate::machine::{SessionContext, SessionMachine};
use crate::protocol::error_line;

/// Which endpoint (and wire protocol) the listener serves.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ListenMode {
    /// NDJSON over a TCP socket; the string is a `bind` address like
    /// `127.0.0.1:7171` (`:0` picks an ephemeral port — read it back via
    /// [`Listener::local_addr`]).
    Tcp(String),
    /// NDJSON over a Unix-domain socket at the given path. The path is
    /// removed when the listener shuts down.
    Unix(PathBuf),
    /// Minimal HTTP/1.1 over TCP: `POST /solve` (NDJSON body in, NDJSON
    /// body out) and `GET /healthz`.
    Http(String),
}

/// Where per-connection summaries go as connections close.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ConnLog {
    /// No per-connection logging.
    Quiet,
    /// One human-readable line per connection on stderr (the default).
    #[default]
    Text,
    /// One [`BatchSummary::to_json_line`] per connection on stderr.
    Json,
}

/// Listener configuration on top of the per-session [`ServeConfig`].
#[derive(Clone, Debug)]
pub struct ListenConfig {
    /// The batch-engine configuration every connection's session runs
    /// under (workers, default solver, chunking, error policy, and the
    /// batch-default deadline that acts as the request timeout).
    pub serve: ServeConfig,
    /// Concurrent-connection cap (`0` = 64). Connections beyond the cap
    /// are answered with a structured at-capacity error (HTTP 503 in HTTP
    /// mode) and closed — a plain outbox write on the reactor, never a
    /// thread.
    pub max_conns: usize,
    /// I/O reactor threads running the readiness loop (`0` = 2). Reactor
    /// 0 owns the accept socket; connections are dealt round-robin. This
    /// bounds socket-handling threads, not solver parallelism — solves
    /// always run on the executor's workers.
    pub io_threads: usize,
    /// Per-connection outbox cap in bytes (`0` = 256 KiB). Past the cap
    /// the reactor suspends the connection's read interest and its
    /// session stops parsing new records (completions already dispatched
    /// still land, so the backlog overshoots by at most one wave of
    /// responses); reads resume once the client drains the backlog below
    /// half. The executor is never blocked by a slow reader.
    pub outbox_limit: usize,
    /// Shut the listener down once no connection has been active for this
    /// long (`None` = serve until the shutdown token fires).
    pub idle_timeout: Option<Duration>,
    /// Cut a single connection that has sent no byte for this long while
    /// the server owes it nothing (`None` = let clients idle forever).
    /// The cut is polite: the session treats it as the client's
    /// end-of-batch, answers what it has, writes its summary and closes.
    /// Without this, `max_conns` silent connections would hold their
    /// capacity slots indefinitely.
    pub conn_idle_timeout: Option<Duration>,
    /// Retained for configuration compatibility with the former blocking
    /// front-end, where it set the socket read timeout that paced
    /// shutdown polling. The readiness loop needs no read timeout — it
    /// reacts to readable sockets and polls the shutdown token at a fixed
    /// granularity — so the value no longer changes behavior.
    pub read_timeout: Duration,
    /// How long a connection's pending responses may sit unsendable
    /// (default one minute) — no write progress for this long aborts the
    /// connection. The bounded outbox keeps a stalled reader from
    /// costing more than [`ListenConfig::outbox_limit`] bytes in the
    /// meantime; this timeout reclaims the capacity slot itself.
    pub write_timeout: Duration,
    /// Per-connection summary logging.
    pub log: ConnLog,
    /// An identity for this listener when it serves as one backend of a
    /// sharded fleet (`--shard-id`). Reported in the `/healthz` body and
    /// tagged onto every per-connection log line so a merged stderr stream
    /// stays attributable.
    pub shard_id: Option<String>,
}

impl Default for ListenConfig {
    fn default() -> Self {
        ListenConfig {
            serve: ServeConfig::default(),
            max_conns: 0,
            io_threads: 0,
            outbox_limit: 0,
            idle_timeout: None,
            conn_idle_timeout: None,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(60),
            log: ConnLog::default(),
            shard_id: None,
        }
    }
}

/// Aggregate statistics over a listener's lifetime, returned by
/// [`Listener::run`] after the drain completes.
#[derive(Clone, Debug, Default)]
pub struct ListenReport {
    /// Connections accepted and served to completion (including ones that
    /// ended in a transport error mid-batch).
    pub connections: usize,
    /// Connections refused at the [`ListenConfig::max_conns`] cap.
    pub rejected: usize,
    /// Records processed across connections that completed their batch.
    /// A connection whose transport died mid-batch counts in
    /// `connections` but its partial batch is not aggregated (its session
    /// never produced a summary).
    pub records: usize,
    /// Records solved across completed connections.
    pub solved: usize,
    /// Records answered with an error line across completed connections.
    pub errors: usize,
    /// Deadline hits across completed connections.
    pub deadline_hits: usize,
    /// One-shot `GET` health probes answered on an NDJSON endpoint. Kept
    /// out of `connections` so a router polling `/healthz` twice a second
    /// does not swamp the count of batches actually served.
    pub health_probes: usize,
}

impl ListenReport {
    fn absorb(&mut self, summary: &BatchSummary) {
        self.records += summary.records;
        self.solved += summary.solved;
        self.errors += summary.errors;
        self.deadline_hits += summary.deadline_hits;
    }
}

impl std::fmt::Display for ListenReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "listener: {} connections ({} rejected) | {} records ({} solved, {} errors) | \
             deadline hits: {}",
            self.connections,
            self.rejected,
            self.records,
            self.solved,
            self.errors,
            self.deadline_hits,
        )?;
        if self.health_probes > 0 {
            write!(f, " | health probes: {}", self.health_probes)?;
        }
        Ok(())
    }
}

/// One accepted connection, abstracted over the socket family.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn set_nonblocking(&self) -> std::io::Result<()> {
        // accepted sockets do not inherit the acceptor's non-blocking
        // flag on Linux — it must be set per connection
        match self {
            Conn::Tcp(s) => s.set_nonblocking(true),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_nonblocking(true),
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        match self {
            Conn::Tcp(s) => s.as_raw_fd(),
            Conn::Unix(s) => s.as_raw_fd(),
        }
    }

    #[cfg(not(unix))]
    fn raw_fd(&self) -> RawFd {
        // the poller itself is Unsupported off Unix; this is never polled
        -1
    }

    /// Half-close: the client sees EOF after the summary line, while its
    /// own pending writes still drain.
    fn shutdown_write(&self) {
        let _ = match self {
            Conn::Tcp(s) => s.shutdown(Shutdown::Write),
            #[cfg(unix)]
            Conn::Unix(s) => s.shutdown(Shutdown::Write),
        };
    }

    fn peer(&self) -> String {
        match self {
            Conn::Tcp(s) => s
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| String::from("tcp-peer")),
            #[cfg(unix)]
            Conn::Unix(_) => String::from("unix-peer"),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// The bound socket, abstracted over the socket family.
enum Acceptor {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl Acceptor {
    fn accept(&self) -> std::io::Result<Conn> {
        match self {
            Acceptor::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Acceptor::Unix(l, _) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        match self {
            Acceptor::Tcp(l) => l.as_raw_fd(),
            Acceptor::Unix(l, _) => l.as_raw_fd(),
        }
    }

    #[cfg(not(unix))]
    fn raw_fd(&self) -> RawFd {
        -1
    }
}

/// A long-lived front-end accepting batch-solve connections; see the
/// [module docs](self) for the reactor design and shutdown contract.
pub struct Listener {
    acceptor: Acceptor,
    http: bool,
    registry: Arc<SolverRegistry>,
    config: ListenConfig,
    shutdown: CancelToken,
    cache: SharedFeatureCache,
    solutions: SolutionCache,
    /// `None` = resolve [`Executor::global`] lazily in [`Listener::run`] —
    /// binding with a pinned pool must not materialize the global one.
    executor: Option<Executor>,
}

impl Listener {
    /// Binds `mode`'s endpoint and prepares (but does not start) the
    /// readiness loop. The socket is open once this returns — clients may
    /// connect and will be served as soon as [`Listener::run`] starts.
    pub fn bind(
        mode: &ListenMode,
        registry: Arc<SolverRegistry>,
        config: ListenConfig,
    ) -> std::io::Result<Listener> {
        let (acceptor, http) = match mode {
            ListenMode::Tcp(addr) => (Acceptor::Tcp(bind_tcp(addr)?), false),
            ListenMode::Http(addr) => (Acceptor::Tcp(bind_tcp(addr)?), true),
            #[cfg(unix)]
            ListenMode::Unix(path) => {
                let listener = UnixListener::bind(path).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!(
                            "{}: {e} (a stale socket file from an unclean \
                             shutdown must be removed first)",
                            path.display()
                        ),
                    )
                })?;
                listener.set_nonblocking(true)?;
                (Acceptor::Unix(listener, path.clone()), false)
            }
            #[cfg(not(unix))]
            ListenMode::Unix(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix-domain sockets are not available on this platform",
                ))
            }
        };
        let solutions = SolutionCache::new(config.serve.solution_cache);
        Ok(Listener {
            acceptor,
            http,
            registry,
            config,
            shutdown: CancelToken::never(),
            cache: SharedFeatureCache::new(),
            solutions,
            executor: None,
        })
    }

    /// Runs every connection's solve chunks on `executor` instead of the
    /// process-wide [`Executor::global`] — tests pin exact worker budgets
    /// this way, and embedders running several listeners can give each its
    /// own pool.
    pub fn executor(mut self, executor: Executor) -> Self {
        self.executor = Some(executor);
        self
    }

    /// The actually-bound TCP address (resolves `:0` ephemeral ports);
    /// `None` for Unix-domain endpoints.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.acceptor {
            Acceptor::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            Acceptor::Unix(..) => None,
        }
    }

    /// A URL-ish description of the bound endpoint, e.g.
    /// `tcp://127.0.0.1:7171`, `http://127.0.0.1:8080` or
    /// `unix:///run/busytime.sock`.
    pub fn endpoint(&self) -> String {
        match &self.acceptor {
            Acceptor::Tcp(l) => {
                let scheme = if self.http { "http" } else { "tcp" };
                match l.local_addr() {
                    Ok(addr) => format!("{scheme}://{addr}"),
                    Err(_) => format!("{scheme}://?"),
                }
            }
            #[cfg(unix)]
            Acceptor::Unix(_, path) => format!("unix://{}", path.display()),
        }
    }

    /// The shutdown token: cancel it (from a signal handler thread, a
    /// supervisor, a test) to drain and stop the listener.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// The cross-connection feature cache (shared with every session this
    /// listener spawns) — exposed so embedders can pre-warm or share it
    /// wider than one listener.
    pub fn feature_cache(&self) -> SharedFeatureCache {
        self.cache.clone()
    }

    /// The cross-connection [`SolutionCache`] (shared with every session
    /// this listener spawns, sized by [`ServeConfig::solution_cache`]) — a
    /// record solved on one connection is a cache hit on the next.
    /// Exposed so embedders can pre-warm it or share it wider than one
    /// listener.
    pub fn solution_cache(&self) -> SolutionCache {
        self.solutions.clone()
    }

    /// Runs the readiness loop until the shutdown token fires or the idle
    /// timeout elapses, then drains every live connection and returns the
    /// aggregate report.
    pub fn run(self) -> std::io::Result<ListenReport> {
        let Listener {
            acceptor,
            http,
            registry,
            config,
            shutdown,
            cache,
            solutions,
            executor,
        } = self;
        let max_conns = if config.max_conns == 0 {
            DEFAULT_MAX_CONNS
        } else {
            config.max_conns
        };
        let io_threads = if config.io_threads == 0 {
            DEFAULT_IO_THREADS
        } else {
            config.io_threads
        };
        let outbox_limit = if config.outbox_limit == 0 {
            DEFAULT_OUTBOX_LIMIT
        } else {
            config.outbox_limit
        };
        let ctx = Arc::new(SessionContext {
            registry,
            config: config.serve.clone(),
            cache,
            solutions,
            executor: executor.unwrap_or_else(Executor::global),
            cancel: shutdown,
        });
        let shared = Arc::new(ListenShared {
            ctx,
            config,
            http,
            max_conns,
            io_threads,
            outbox_limit,
            active: AtomicUsize::new(0),
            open: AtomicUsize::new(0),
            outbox_bytes: AtomicUsize::new(0),
            report: Mutex::new(ListenReport::default()),
            last_activity: Mutex::new(Instant::now()),
            started: Instant::now(),
        });

        // every reactor gets its poller and wakeable mailbox up front, so
        // the acceptor can deal connections (and executor workers can post
        // completion wakes) before a reactor has even scheduled
        let mut pollers = Vec::with_capacity(io_threads);
        let mut mailboxes = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let poller = Poller::new()?;
            let waker = Waker::new(&poller, KEY_WAKER)?;
            mailboxes.push(Arc::new(Mailbox {
                waker,
                post: Mutex::new(Post::default()),
            }));
            pollers.push(poller);
        }
        #[cfg(unix)]
        let unix_path = match &acceptor {
            Acceptor::Unix(_, path) => Some(path.clone()),
            Acceptor::Tcp(_) => None,
        };
        pollers[0].add(acceptor.raw_fd(), KEY_ACCEPT, Interest::READ)?;

        let mut threads = Vec::new();
        let mut rest = pollers.split_off(1);
        for (offset, poller) in rest.drain(..).enumerate() {
            let index = offset + 1;
            let reactor = Reactor::new(
                Arc::clone(&shared),
                poller,
                Arc::clone(&mailboxes[index]),
                mailboxes.clone(),
                index,
                None,
            );
            threads.push(
                std::thread::Builder::new()
                    .name(format!("busytime-io-{index}"))
                    .spawn(move || reactor.run())?,
            );
        }
        let poller0 = pollers.pop().expect("reactor 0's poller");
        let reactor0 = Reactor::new(
            Arc::clone(&shared),
            poller0,
            Arc::clone(&mailboxes[0]),
            mailboxes.clone(),
            0,
            Some(acceptor),
        );
        let mut fatal = reactor0.run();
        // reactor 0 only exits once the token fired and its own drain
        // finished; nudge the sibling loops so theirs is prompt too
        for mailbox in &mailboxes[1..] {
            let _ = mailbox.waker.wake();
        }
        for handle in threads {
            match handle.join() {
                Ok(Some(e)) => {
                    fatal.get_or_insert(e);
                }
                Ok(None) => {}
                Err(_) => {
                    fatal.get_or_insert_with(|| std::io::Error::other("an I/O reactor panicked"));
                }
            }
        }
        #[cfg(unix)]
        if let Some(path) = unix_path {
            let _ = std::fs::remove_file(&path);
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(lock_ignoring_poison(&shared.report).clone()),
        }
    }
}

fn bind_tcp(addr: &str) -> std::io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| std::io::Error::new(e.kind(), format!("{addr}: {e}")))?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

// ---------------------------------------------------------------------------
// The readiness loop
// ---------------------------------------------------------------------------

/// Poller key of each reactor's wake eventfd.
const KEY_WAKER: usize = 0;
/// Poller key of the accept socket (reactor 0 only).
const KEY_ACCEPT: usize = 1;
/// First poller key handed to connections.
const FIRST_CONN_KEY: usize = 2;
/// Default [`ListenConfig::max_conns`].
const DEFAULT_MAX_CONNS: usize = 64;
/// Default [`ListenConfig::io_threads`].
const DEFAULT_IO_THREADS: usize = 2;
/// Default [`ListenConfig::outbox_limit`].
const DEFAULT_OUTBOX_LIMIT: usize = 256 * 1024;
/// Per-service read cap: a firehose connection yields the reactor after
/// this many bytes (level-triggered polling re-reports it immediately).
const READ_BUDGET: usize = 64 * 1024;
/// How long a finished connection lingers half-closed, draining the
/// client's trailing bytes, so the close is a FIN and the summary line
/// survives in flight — the event-driven stand-in for the old bounded
/// `drain_briefly` reads. An EOF from the client short-circuits it.
const LINGER: Duration = Duration::from_millis(150);
/// Upper bound on one poll wait: the cadence at which reactors notice the
/// shutdown token and the listener-wide idle timeout.
const POLL_GRANULARITY: Duration = Duration::from_millis(20);
/// Simultaneously-open polite rejections per reactor; past this a connect
/// flood is being shed and further connections are dropped outright —
/// overload must not mint unbounded connection state (it already cannot
/// mint threads).
const REJECT_BACKLOG_CAP: usize = 1024;
/// `expect` message for writes into a `Vec<u8>` outbox.
const VEC_WRITE: &str = "writing to a Vec cannot fail";

/// Everything the reactors share: the sessions' [`SessionContext`], the
/// listener configuration and the cross-reactor gauges behind `/healthz`
/// and the final [`ListenReport`].
struct ListenShared {
    ctx: Arc<SessionContext>,
    config: ListenConfig,
    http: bool,
    max_conns: usize,
    io_threads: usize,
    outbox_limit: usize,
    /// Connections holding a capacity slot (everything but rejections).
    active: AtomicUsize,
    /// Every socket registered with a reactor, rejections included — the
    /// `/healthz` `open_connections` gauge.
    open: AtomicUsize,
    /// Total bytes queued in connection outboxes, fleet-wide — the
    /// `/healthz` back-pressure gauge.
    outbox_bytes: AtomicUsize,
    report: Mutex<ListenReport>,
    last_activity: Mutex<Instant>,
    /// When the listener started serving, for the `/healthz` uptime field.
    started: Instant,
}

impl ListenShared {
    fn shutdown(&self) -> &CancelToken {
        &self.ctx.cancel
    }

    fn executor(&self) -> &Executor {
        &self.ctx.executor
    }
}

/// A reactor's cross-thread inbox: the acceptor deals fresh connections
/// in, executor workers post the keys of connections whose sessions have
/// new completions, and either post rings the eventfd to wake the poll
/// loop.
struct Mailbox {
    waker: Waker,
    post: Mutex<Post>,
}

#[derive(Default)]
struct Post {
    conns: Vec<(Conn, usize)>,
    dirty: Vec<usize>,
}

impl Mailbox {
    fn post_conn(&self, conn: Conn, conn_id: usize) {
        lock_ignoring_poison(&self.post).conns.push((conn, conn_id));
        let _ = self.waker.wake();
    }

    fn post_dirty(&self, key: usize) {
        lock_ignoring_poison(&self.post).dirty.push(key);
        let _ = self.waker.wake();
    }

    fn take(&self) -> (Vec<(Conn, usize)>, Vec<usize>) {
        let mut post = lock_ignoring_poison(&self.post);
        (
            std::mem::take(&mut post.conns),
            std::mem::take(&mut post.dirty),
        )
    }
}

/// Milliseconds per timer-wheel bucket.
const TIMER_TICK_MS: u64 = 8;

/// A coarse slotted timer wheel over the reactor's clock: deadlines land
/// in [`TIMER_TICK_MS`] buckets keyed by tick index, and entries carry
/// the connection's timer generation, so a superseded deadline is simply
/// ignored when its bucket fires (lazy cancellation — rescheduling never
/// searches the wheel).
struct TimerWheel {
    base: Instant,
    slots: BTreeMap<u64, Vec<(usize, u64)>>,
}

impl TimerWheel {
    fn new() -> TimerWheel {
        TimerWheel {
            base: Instant::now(),
            slots: BTreeMap::new(),
        }
    }

    /// The bucket `when` lands in, rounded up so a bucket never fires
    /// before its deadlines.
    fn tick_of(&self, when: Instant) -> u64 {
        let ms = when.saturating_duration_since(self.base).as_millis() as u64;
        ms / TIMER_TICK_MS + 1
    }

    fn schedule(&mut self, tick: u64, key: usize, generation: u64) {
        self.slots.entry(tick).or_default().push((key, generation));
    }

    fn next_deadline(&self) -> Option<Instant> {
        self.slots
            .keys()
            .next()
            .map(|tick| self.base + Duration::from_millis(tick * TIMER_TICK_MS))
    }

    fn pop_due(&mut self, now: Instant) -> Vec<(usize, u64)> {
        let now_tick = now.saturating_duration_since(self.base).as_millis() as u64 / TIMER_TICK_MS;
        let later = self.slots.split_off(&(now_tick + 1));
        std::mem::replace(&mut self.slots, later)
            .into_values()
            .flatten()
            .collect()
    }
}

/// How a connection is counted in the [`ListenReport`] when it closes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tally {
    /// A real client connection (batch served, or died trying).
    Conn,
    /// A one-shot `GET /healthz` probe on an NDJSON endpoint — counted
    /// separately, never as a connection.
    Probe,
    /// An at-capacity rejection — counted at accept time, not at close.
    Reject,
}

/// What protocol state a connection is in.
enum Kind {
    /// NDJSON endpoints sniff the first bytes: an HTTP `GET ` opener
    /// means a health probe (a router, `curl`) reached the NDJSON port
    /// and gets the one-shot `/healthz` answer; anything else (including
    /// the sniffed bytes themselves) feeds the batch session unchanged.
    Sniff(Vec<u8>),
    /// An NDJSON batch session in progress.
    Ndjson(Box<SessionMachine>),
    /// An HTTP/1.1 connection (requests parsed incrementally).
    Http(Box<HttpConn>),
    /// Terminal: flush the outbox, half-close, linger briefly to drain
    /// the client's trailing bytes, then close.
    Flush,
}

/// One registered connection owned by a reactor.
struct ConnState {
    conn: Conn,
    conn_id: usize,
    peer: String,
    kind: Kind,
    tally: Tally,
    /// Bytes owed to the client; `sent` of them are already written.
    outbox: Vec<u8>,
    sent: usize,
    /// This connection's contribution to [`ListenShared::outbox_bytes`].
    gauge: usize,
    /// The (read, write) interest currently registered with the poller.
    interest: (bool, bool),
    /// Reads stopped because the outbox is over the cap (back-pressure).
    read_suspended: bool,
    /// We half-closed our write side (the summary is fully flushed).
    half_closed: bool,
    /// The client half-closed (or was idle-cut, which is treated the
    /// same: a polite end-of-batch).
    peer_eof: bool,
    /// The session's summary, recorded into the report once the outbox
    /// flush completes — mirroring the blocking front-end, which counted
    /// a summary only after a successful flush.
    summary: Option<BatchSummary>,
    /// When the client last sent a byte (the conn-idle clock; refreshed
    /// while the server owes the connection work, so a slow solve is
    /// never mistaken for a quiet client).
    last_byte: Instant,
    /// When a write last made progress (the write-timeout clock).
    last_write_progress: Instant,
    /// Set at half-close: when the post-close drain gives up on a client
    /// that neither reads nor closes.
    linger_until: Option<Instant>,
    /// Lazy-cancellation generation for this connection's wheel entries.
    timer_gen: u64,
    /// The wheel bucket currently scheduled, to avoid re-inserting an
    /// unchanged deadline on every service.
    timer_tick: Option<u64>,
}

impl ConnState {
    fn pending(&self) -> usize {
        self.outbox.len() - self.sent
    }

    /// The server still owes this connection answers — an idle wire does
    /// not mean an idle session.
    fn has_work(&self) -> bool {
        match &self.kind {
            Kind::Ndjson(machine) => machine.has_inflight(),
            Kind::Http(http) => matches!(http.state, HttpState::Solving { .. }),
            Kind::Sniff(_) | Kind::Flush => false,
        }
    }
}

/// An HTTP/1.1 connection's incremental parse state.
struct HttpConn {
    /// Raw bytes not yet consumed by the current state.
    buf: Vec<u8>,
    state: HttpState,
}

impl HttpConn {
    fn new() -> HttpConn {
        HttpConn {
            buf: Vec::new(),
            state: HttpState::Head,
        }
    }
}

enum HttpState {
    /// Waiting for (the rest of) a request head.
    Head,
    /// Collecting a `Content-Length` body. `discard` bodies (on
    /// `GET /healthz`) are drained so keep-alive framing survives.
    Body {
        request: HttpRequest,
        body: Vec<u8>,
        discard: bool,
        keep_alive: bool,
    },
    /// A `POST /solve` batch on the executor; the machine's output
    /// accumulates in `response` until the summary lands.
    Solving {
        machine: Box<SessionMachine>,
        keep_alive: bool,
        response: Vec<u8>,
    },
}

/// What [`step_conn`] decided about a connection.
enum Step {
    Keep,
    /// Close now; `Some(reason)` logs an `aborted:` line for real
    /// connections.
    Close(Option<String>),
}

/// What [`step_http`] decided about an HTTP connection.
enum HttpStep {
    /// Waiting on more bytes or on executor completions.
    Wait,
    /// The connection is done (response written, or a clean end); flush
    /// and close.
    Finish,
    /// A transport-grade failure; close and log.
    Abort(String),
}

/// One I/O thread of the listener: an epoll loop owning a share of the
/// connections. Reactor 0 additionally owns the accept socket and deals
/// new connections round-robin across the set.
struct Reactor {
    shared: Arc<ListenShared>,
    poller: Poller,
    mailbox: Arc<Mailbox>,
    /// Every reactor's mailbox, indexed by reactor; the acceptor's
    /// dealing table.
    peers: Vec<Arc<Mailbox>>,
    index: usize,
    acceptor: Option<Acceptor>,
    conns: HashMap<usize, ConnState>,
    timers: TimerWheel,
    next_key: usize,
    /// Served-connection ids (reactor 0 only, like the blocking accept
    /// loop's counter).
    conn_seq: usize,
    /// Round-robin cursor over `peers` (reactor 0 only).
    rr: usize,
    rejects_open: usize,
    draining: bool,
    fatal: Option<std::io::Error>,
}

impl Reactor {
    fn new(
        shared: Arc<ListenShared>,
        poller: Poller,
        mailbox: Arc<Mailbox>,
        peers: Vec<Arc<Mailbox>>,
        index: usize,
        acceptor: Option<Acceptor>,
    ) -> Reactor {
        Reactor {
            shared,
            poller,
            mailbox,
            peers,
            index,
            acceptor,
            conns: HashMap::new(),
            timers: TimerWheel::new(),
            next_key: FIRST_CONN_KEY,
            conn_seq: 0,
            rr: 0,
            rejects_open: 0,
            draining: false,
            fatal: None,
        }
    }

    fn run(mut self) -> Option<std::io::Error> {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.shutdown().is_cancelled() && !self.draining {
                self.draining = true;
                if let Some(acceptor) = &self.acceptor {
                    let _ = self.poller.delete(acceptor.raw_fd());
                }
                // every live session gets its polite end-of-batch: answer
                // what was parsed, summarize, flush, close
                let keys: Vec<usize> = self.conns.keys().copied().collect();
                for key in keys {
                    self.service(key);
                }
            }
            let (new_conns, dirty) = self.mailbox.take();
            for (conn, conn_id) in new_conns {
                // a connection that raced the drain still gets served the
                // polite way — service() under `draining` finishes it
                let kind = if self.shared.http {
                    Kind::Http(Box::new(HttpConn::new()))
                } else {
                    Kind::Sniff(Vec::new())
                };
                if let Some(key) = self.register(conn, conn_id, kind, Tally::Conn, Vec::new()) {
                    self.service(key);
                }
            }
            for key in dirty {
                self.service(key);
            }
            if self.draining && self.conns.is_empty() {
                break;
            }
            let now = Instant::now();
            for (key, generation) in self.timers.pop_due(now) {
                let live = self.conns.get_mut(&key).is_some_and(|state| {
                    if state.timer_gen == generation {
                        state.timer_tick = None;
                        true
                    } else {
                        false
                    }
                });
                if live {
                    self.service(key);
                }
            }
            if !self.draining && self.acceptor.is_some() {
                if let Some(idle) = self.shared.config.idle_timeout {
                    let quiet = self.shared.active.load(Ordering::SeqCst) == 0
                        && lock_ignoring_poison(&self.shared.last_activity).elapsed() >= idle;
                    if quiet {
                        self.shared.shutdown().cancel();
                        continue;
                    }
                }
            }
            let mut timeout = POLL_GRANULARITY;
            if let Some(next) = self.timers.next_deadline() {
                timeout = timeout.min(next.saturating_duration_since(now));
            }
            events.clear();
            match self
                .poller
                .wait(&mut events, Some(timeout.max(Duration::from_millis(1))))
            {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    // the poller itself is broken: shed every connection
                    // and stop; run() surfaces the error after the other
                    // reactors drain
                    self.fatal.get_or_insert(e);
                    self.shared.shutdown().cancel();
                    let keys: Vec<usize> = self.conns.keys().copied().collect();
                    for key in keys {
                        self.close_conn(key, None);
                    }
                    break;
                }
            }
            for event in &events {
                match event.key {
                    KEY_WAKER => self.mailbox.waker.drain(),
                    KEY_ACCEPT => self.accept_some(),
                    key => self.service(key),
                }
            }
        }
        self.fatal
    }

    /// Accepts until the socket would block (reactor 0 only).
    fn accept_some(&mut self) {
        if self.draining {
            return;
        }
        // moved out for the duration of the loop so accepting can call
        // &mut self methods (register/service) between accepts
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        loop {
            match acceptor.accept() {
                Ok(conn) => {
                    *lock_ignoring_poison(&self.shared.last_activity) = Instant::now();
                    let _ = conn.set_nonblocking();
                    if self.shared.active.load(Ordering::SeqCst) >= self.shared.max_conns {
                        lock_ignoring_poison(&self.shared.report).rejected += 1;
                        if self.rejects_open >= REJECT_BACKLOG_CAP {
                            continue; // shed outright
                        }
                        let outbox = rejection_bytes(self.shared.http, self.shared.max_conns);
                        if let Some(key) =
                            self.register(conn, 0, Kind::Flush, Tally::Reject, outbox)
                        {
                            self.service(key);
                        }
                        continue;
                    }
                    self.conn_seq += 1;
                    let conn_id = self.conn_seq;
                    self.shared.active.fetch_add(1, Ordering::SeqCst);
                    let target = self.rr % self.shared.io_threads;
                    self.rr += 1;
                    if target == self.index {
                        let kind = if self.shared.http {
                            Kind::Http(Box::new(HttpConn::new()))
                        } else {
                            Kind::Sniff(Vec::new())
                        };
                        if let Some(key) =
                            self.register(conn, conn_id, kind, Tally::Conn, Vec::new())
                        {
                            self.service(key);
                        }
                    } else {
                        self.peers[target].post_conn(conn, conn_id);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // transient per-connection accept failures (the peer reset
                // before we got to it) must not take the server down
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    self.fatal.get_or_insert(e);
                    self.shared.shutdown().cancel();
                    break;
                }
            }
        }
        self.acceptor = Some(acceptor);
    }

    /// Registers a connection with the poller and the connection map.
    /// Returns `None` (dropping the socket, releasing any capacity slot)
    /// if the poller refuses the fd.
    fn register(
        &mut self,
        conn: Conn,
        conn_id: usize,
        kind: Kind,
        tally: Tally,
        outbox: Vec<u8>,
    ) -> Option<usize> {
        let key = self.next_key;
        self.next_key += 1;
        if self.poller.add(conn.raw_fd(), key, Interest::READ).is_err() {
            if tally != Tally::Reject {
                *lock_ignoring_poison(&self.shared.last_activity) = Instant::now();
                self.shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            return None;
        }
        let now = Instant::now();
        let peer = conn.peer();
        self.conns.insert(
            key,
            ConnState {
                conn,
                conn_id,
                peer,
                kind,
                tally,
                outbox,
                sent: 0,
                gauge: 0,
                interest: (true, false),
                read_suspended: false,
                half_closed: false,
                peer_eof: false,
                summary: None,
                last_byte: now,
                last_write_progress: now,
                linger_until: None,
                timer_gen: 0,
                timer_tick: None,
            },
        );
        self.shared.open.fetch_add(1, Ordering::SeqCst);
        if tally == Tally::Reject {
            self.rejects_open += 1;
        }
        Some(key)
    }

    /// Drives one connection as far as it can go without blocking, then
    /// refreshes its poller interest and timer-wheel deadline.
    fn service(&mut self, key: usize) {
        let Some(state) = self.conns.get_mut(&key) else {
            return;
        };
        match step_conn(&self.shared, &self.mailbox, key, state, self.draining) {
            Step::Close(abort) => self.close_conn(key, abort),
            Step::Keep => {
                let pending = state.pending();
                match pending.cmp(&state.gauge) {
                    std::cmp::Ordering::Greater => {
                        self.shared
                            .outbox_bytes
                            .fetch_add(pending - state.gauge, Ordering::SeqCst);
                    }
                    std::cmp::Ordering::Less => {
                        self.shared
                            .outbox_bytes
                            .fetch_sub(state.gauge - pending, Ordering::SeqCst);
                    }
                    std::cmp::Ordering::Equal => {}
                }
                state.gauge = pending;
                // back-pressure: reads stop past the outbox cap, resume
                // once the client drains it below half
                if matches!(state.kind, Kind::Flush) {
                    state.read_suspended = false;
                } else if pending > self.shared.outbox_limit {
                    state.read_suspended = true;
                } else if pending <= self.shared.outbox_limit / 2 {
                    state.read_suspended = false;
                }
                let want = (
                    !state.read_suspended && !state.peer_eof,
                    pending > 0 && !state.half_closed,
                );
                if want != state.interest
                    && self
                        .poller
                        .modify(state.conn.raw_fd(), key, interest_of(want))
                        .is_ok()
                {
                    state.interest = want;
                }
                match conn_deadline(&self.shared, state) {
                    Some(when) => {
                        let tick = self.timers.tick_of(when);
                        if state.timer_tick != Some(tick) {
                            state.timer_gen += 1;
                            state.timer_tick = Some(tick);
                            self.timers.schedule(tick, key, state.timer_gen);
                        }
                    }
                    None => {
                        if state.timer_tick.is_some() {
                            state.timer_gen += 1;
                            state.timer_tick = None;
                        }
                    }
                }
            }
        }
    }

    /// Deregisters and drops a connection, settling its report entry:
    /// connections count once at close, probes count separately, and
    /// rejections were counted at accept.
    fn close_conn(&mut self, key: usize, abort: Option<String>) {
        let Some(mut state) = self.conns.remove(&key) else {
            return;
        };
        // best-effort: an aborting batch may still hold answered lines
        // (the blocking front-end's dropped BufWriter flushed the same way)
        if !state.half_closed {
            let _ = flush_outbox(&mut state);
        }
        let _ = self.poller.delete(state.conn.raw_fd());
        if state.gauge > 0 {
            self.shared
                .outbox_bytes
                .fetch_sub(state.gauge, Ordering::SeqCst);
        }
        self.shared.open.fetch_sub(1, Ordering::SeqCst);
        match state.tally {
            Tally::Reject => {
                self.rejects_open -= 1;
                return;
            }
            Tally::Probe => {
                lock_ignoring_poison(&self.shared.report).health_probes += 1;
            }
            Tally::Conn => {
                lock_ignoring_poison(&self.shared.report).connections += 1;
                match abort {
                    Some(reason) => log_line(
                        self.shared.config.log,
                        format!(
                            "conn {}{} ({}): aborted: {reason}",
                            state.conn_id,
                            shard_tag(&self.shared.config),
                            state.peer
                        ),
                    ),
                    None => {
                        // normally recorded at half-close; this is the
                        // close-raced-the-flush path
                        if let Some(summary) = state.summary.take() {
                            record_summary(&self.shared, state.conn_id, &state.peer, &summary);
                        }
                    }
                }
            }
        }
        *lock_ignoring_poison(&self.shared.last_activity) = Instant::now();
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn interest_of((read, write): (bool, bool)) -> Interest {
    match (read, write) {
        (true, true) => Interest::BOTH,
        (true, false) => Interest::READ,
        (false, true) => Interest::WRITE,
        (false, false) => Interest::NONE,
    }
}

/// The next instant at which this connection needs attention with no help
/// from the wire: a stalled writer's abort, a quiet client's idle cut, or
/// the end of the post-close linger.
fn conn_deadline(shared: &ListenShared, state: &ConnState) -> Option<Instant> {
    let mut deadline: Option<Instant> = None;
    if state.pending() > 0 && !state.half_closed {
        deadline = min_deadline(
            deadline,
            state.last_write_progress + shared.config.write_timeout,
        );
    }
    if let Some(idle) = shared.config.conn_idle_timeout {
        if idle_eligible(state) {
            deadline = min_deadline(deadline, state.last_byte + idle);
        }
    }
    if let Some(linger) = state.linger_until {
        deadline = min_deadline(deadline, linger);
    }
    deadline
}

fn min_deadline(current: Option<Instant>, candidate: Instant) -> Option<Instant> {
    Some(match current {
        Some(existing) if existing <= candidate => existing,
        _ => candidate,
    })
}

/// The conn-idle clock only runs while the connection is wholly quiet:
/// nothing owed to the client, nothing in flight for it, and the client
/// not yet done. (A flushing connection is governed by the write timeout
/// and the linger instead.)
fn idle_eligible(state: &ConnState) -> bool {
    !state.peer_eof
        && !matches!(state.kind, Kind::Flush)
        && state.pending() == 0
        && !state.has_work()
}

/// Drives one connection: read, enforce deadlines, advance the protocol
/// state machine, flush, and settle the endgame (half-close → linger →
/// close). Never blocks.
fn step_conn(
    shared: &ListenShared,
    mailbox: &Arc<Mailbox>,
    key: usize,
    state: &mut ConnState,
    draining: bool,
) -> Step {
    let now = Instant::now();

    // -- read --------------------------------------------------------------
    if !state.read_suspended && !state.peer_eof {
        let mut scratch = [0u8; 8192];
        let mut budget = READ_BUDGET;
        loop {
            if budget == 0 {
                break; // level-triggered polling re-reports the rest
            }
            match state.conn.read(&mut scratch) {
                Ok(0) => {
                    state.peer_eof = true;
                    break;
                }
                Ok(n) => {
                    budget = budget.saturating_sub(n);
                    state.last_byte = now;
                    match &mut state.kind {
                        Kind::Sniff(buf) => buf.extend_from_slice(&scratch[..n]),
                        Kind::Ndjson(machine) => machine.feed(&scratch[..n]),
                        Kind::Http(http) => http.buf.extend_from_slice(&scratch[..n]),
                        Kind::Flush => {} // trailing bytes drain into the void
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    return Step::Close(match state.kind {
                        Kind::Flush => None, // response already settled
                        _ => Some(format!("io: {e}")),
                    });
                }
            }
        }
    }

    // -- deadlines ---------------------------------------------------------
    if state.pending() > 0
        && !state.half_closed
        && now.duration_since(state.last_write_progress) >= shared.config.write_timeout
    {
        return Step::Close(match state.tally {
            Tally::Conn => Some(String::from(
                "io: write timed out; the client stopped reading its responses",
            )),
            _ => None,
        });
    }
    if let Some(idle) = shared.config.conn_idle_timeout {
        if idle_eligible(state) && !draining && now.duration_since(state.last_byte) >= idle {
            // a polite end-of-batch, exactly like a client half-close
            state.peer_eof = true;
        }
    }

    // -- protocol + write --------------------------------------------------
    loop {
        let mut pump_gated = false;
        loop {
            match std::mem::replace(&mut state.kind, Kind::Flush) {
                Kind::Sniff(buf) => {
                    let decide =
                        buf.len() >= 4 || buf.contains(&b'\n') || state.peer_eof || draining;
                    if !decide {
                        state.kind = Kind::Sniff(buf);
                        break;
                    }
                    if buf.starts_with(b"GET ") {
                        state.tally = Tally::Probe;
                        let body = healthz_body(shared);
                        write_http_response(
                            &mut state.outbox,
                            "200 OK",
                            "application/json",
                            body.as_bytes(),
                            false,
                        )
                        .expect(VEC_WRITE);
                        // kind stays Flush
                    } else {
                        let mut machine = new_machine(shared, mailbox, key);
                        machine.feed(&buf);
                        state.kind = Kind::Ndjson(machine);
                    }
                }
                Kind::Ndjson(mut machine) => {
                    if state.peer_eof || draining {
                        machine.finish_input();
                    }
                    let allow_parse = state.outbox.len() - state.sent <= shared.outbox_limit;
                    pump_gated = !allow_parse;
                    machine.pump(&mut state.outbox, allow_parse);
                    if !machine.is_done() {
                        state.kind = Kind::Ndjson(machine);
                        break;
                    }
                    if let Some(failure) = machine.failure() {
                        return Step::Close(Some(failure.to_string()));
                    }
                    state.summary = machine.summary().cloned();
                    // kind stays Flush
                }
                Kind::Http(mut http) => {
                    let outcome = step_http(
                        shared,
                        mailbox,
                        key,
                        &mut http,
                        &mut state.outbox,
                        state.peer_eof,
                        draining,
                        state.conn_id,
                        &state.peer,
                    );
                    match outcome {
                        HttpStep::Wait => {
                            state.kind = Kind::Http(http);
                            break;
                        }
                        HttpStep::Finish => {} // kind stays Flush
                        HttpStep::Abort(reason) => return Step::Close(Some(reason)),
                    }
                }
                Kind::Flush => break,
            }
        }

        // a session with answers in flight is not an idle client
        if state.has_work() || state.pending() > 0 {
            state.last_byte = now;
        }

        if !state.half_closed {
            if let Err(e) = flush_outbox(state) {
                return Step::Close(match state.tally {
                    Tally::Conn => Some(format!("io: {e}")),
                    _ => None,
                });
            }
        }

        // a flush that reopened the parse gate must re-pump the machine:
        // a gated pump with nothing in flight gets no completion
        // notification, so stopping here would strand its buffered input
        // for good
        if pump_gated
            && state.pending() <= shared.outbox_limit
            && matches!(state.kind, Kind::Ndjson(_))
        {
            continue;
        }
        break;
    }

    // -- endgame -----------------------------------------------------------
    if matches!(state.kind, Kind::Flush) && state.pending() == 0 {
        if !state.half_closed {
            state.conn.shutdown_write();
            state.half_closed = true;
            state.linger_until = Some(now + LINGER);
            // the whole batch reached the socket: now (and only now) it
            // counts, exactly as the blocking front-end recorded a
            // summary only after a successful flush
            if state.tally == Tally::Conn {
                if let Some(summary) = state.summary.take() {
                    record_summary(shared, state.conn_id, &state.peer, &summary);
                }
            }
        }
        if state.peer_eof || state.linger_until.is_some_and(|until| now >= until) {
            return Step::Close(None);
        }
    }
    Step::Keep
}

/// Advances an HTTP connection's request state machine as far as the
/// buffered bytes allow: parse heads, collect bodies, run `POST /solve`
/// batches through a [`SessionMachine`], emit responses into the outbox,
/// and loop for pipelined keep-alive requests.
#[allow(clippy::too_many_arguments)]
fn step_http(
    shared: &ListenShared,
    mailbox: &Arc<Mailbox>,
    key: usize,
    http: &mut HttpConn,
    outbox: &mut Vec<u8>,
    peer_eof: bool,
    draining: bool,
    conn_id: usize,
    peer: &str,
) -> HttpStep {
    loop {
        match &mut http.state {
            HttpState::Head => {
                let Some(head) = take_head(&mut http.buf) else {
                    if http.buf.len() > MAX_HEAD_BYTES {
                        respond_http_error(outbox, "400 Bad Request", "request head too large");
                        return HttpStep::Finish;
                    }
                    if draining {
                        // the shutdown drain between (or inside) requests
                        // is a clean goodbye, as in the blocking loop
                        return HttpStep::Finish;
                    }
                    if peer_eof {
                        if http.buf.iter().all(|b| matches!(b, b'\r' | b'\n')) {
                            return HttpStep::Finish; // clean close between requests
                        }
                        respond_http_error(outbox, "400 Bad Request", "truncated request head");
                        return HttpStep::Finish;
                    }
                    return HttpStep::Wait;
                };
                let request = match parse_http_head(&head) {
                    Ok(request) => request,
                    Err(HttpError::Malformed(reason)) => {
                        respond_http_error(outbox, "400 Bad Request", &reason);
                        return HttpStep::Finish;
                    }
                    Err(HttpError::Io(e)) => return HttpStep::Abort(format!("io: {e}")),
                };
                let keep_alive = request.keep_alive && !shared.shutdown().is_cancelled();
                match (request.method.as_str(), request.path.as_str()) {
                    ("GET", "/healthz") => match request.content_length {
                        // a body on a probe is unusual but legal; leaving
                        // it unread would corrupt the next request on a
                        // keep-alive connection, so drain it (or give up
                        // on keep-alive when it is unreasonably large)
                        None | Some(0) => {
                            respond_healthz(shared, outbox, keep_alive);
                            if !keep_alive {
                                return HttpStep::Finish;
                            }
                        }
                        Some(length) if length <= MAX_HEAD_BYTES => {
                            http.state = HttpState::Body {
                                request,
                                body: Vec::new(),
                                discard: true,
                                keep_alive,
                            };
                        }
                        Some(_) => {
                            respond_healthz(shared, outbox, false);
                            return HttpStep::Finish;
                        }
                    },
                    ("POST", "/solve") => {
                        let Some(length) = request.content_length else {
                            respond_http_error(
                                outbox,
                                "411 Length Required",
                                "POST /solve needs a Content-Length body",
                            );
                            return HttpStep::Finish;
                        };
                        if length > MAX_BODY_BYTES {
                            respond_http_error(
                                outbox,
                                "413 Content Too Large",
                                "batch body too large",
                            );
                            return HttpStep::Finish;
                        }
                        http.state = HttpState::Body {
                            request,
                            body: Vec::new(),
                            discard: false,
                            keep_alive,
                        };
                    }
                    (_, "/healthz") | (_, "/solve") => {
                        respond_http_error(
                            outbox,
                            "405 Method Not Allowed",
                            "use GET /healthz or POST /solve",
                        );
                        return HttpStep::Finish;
                    }
                    _ => {
                        respond_http_error(
                            outbox,
                            "404 Not Found",
                            "unknown path; this server has /healthz and /solve",
                        );
                        return HttpStep::Finish;
                    }
                }
            }
            HttpState::Body {
                request,
                body,
                discard,
                keep_alive,
            } => {
                let length = request.content_length.unwrap_or(0);
                let take = (length - body.len()).min(http.buf.len());
                body.extend_from_slice(&http.buf[..take]);
                http.buf.drain(..take);
                if body.len() < length {
                    if draining {
                        return HttpStep::Finish; // clean drain mid-body
                    }
                    if peer_eof {
                        return HttpStep::Abort(String::from(
                            "io: connection closed before the full request body arrived",
                        ));
                    }
                    return HttpStep::Wait;
                }
                if *discard {
                    let ka = *keep_alive;
                    respond_healthz(shared, outbox, ka);
                    http.state = HttpState::Head;
                    if !ka {
                        return HttpStep::Finish;
                    }
                } else {
                    let mut machine = new_machine(shared, mailbox, key);
                    machine.feed(body);
                    machine.finish_input();
                    http.state = HttpState::Solving {
                        machine,
                        keep_alive: *keep_alive,
                        response: Vec::new(),
                    };
                }
            }
            HttpState::Solving {
                machine,
                keep_alive,
                response,
            } => {
                machine.pump(response, true);
                if !machine.is_done() {
                    return HttpStep::Wait;
                }
                if let Some(failure) = machine.failure() {
                    if matches!(failure, ServeError::FailFast { .. }) {
                        let cause = failure.to_string();
                        let body = format!("{{\"error\": {cause:?}}}\n");
                        write_http_response(
                            outbox,
                            "422 Unprocessable Entity",
                            "application/json",
                            body.as_bytes(),
                            false,
                        )
                        .expect(VEC_WRITE);
                        return HttpStep::Finish;
                    }
                    return HttpStep::Abort(failure.to_string());
                }
                let summary = machine
                    .summary()
                    .cloned()
                    .expect("a machine done without failure has a summary");
                let ka = *keep_alive;
                write_http_response(outbox, "200 OK", "application/x-ndjson", response, ka)
                    .expect(VEC_WRITE);
                record_summary(shared, conn_id, peer, &summary);
                http.state = HttpState::Head;
                if !ka {
                    return HttpStep::Finish;
                }
            }
        }
    }
}

/// Takes one complete request head (leading blank lines tolerated, the
/// terminator consumed) off the front of `buf`, or `None` if the
/// terminator has not arrived yet.
fn take_head(buf: &mut Vec<u8>) -> Option<Vec<u8>> {
    let start = buf
        .iter()
        .position(|b| !matches!(b, b'\r' | b'\n'))
        .unwrap_or(buf.len());
    let mut i = start;
    while i < buf.len() {
        if buf[i] == b'\n' {
            let rest = &buf[i + 1..];
            if rest.starts_with(b"\r\n") {
                let head = buf[start..=i].to_vec();
                buf.drain(..i + 3);
                return Some(head);
            }
            if rest.starts_with(b"\n") {
                let head = buf[start..=i].to_vec();
                buf.drain(..i + 2);
                return Some(head);
            }
            if rest.is_empty() {
                break; // possibly mid-terminator; wait for more bytes
            }
        }
        i += 1;
    }
    None
}

/// Writes the outbox's unsent tail until the socket would block.
fn flush_outbox(state: &mut ConnState) -> std::io::Result<()> {
    while state.sent < state.outbox.len() {
        match state.conn.write(&state.outbox[state.sent..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => {
                state.sent += n;
                state.last_write_progress = Instant::now();
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        }
    }
    if state.sent == state.outbox.len() {
        state.outbox.clear();
        state.sent = 0;
    } else if state.sent > 64 * 1024 {
        // keep a long-lived slow drain from pinning the written prefix
        state.outbox.drain(..state.sent);
        state.sent = 0;
    }
    Ok(())
}

/// A fresh [`SessionMachine`] whose completion wakes post `key` to this
/// reactor's mailbox.
fn new_machine(shared: &ListenShared, mailbox: &Arc<Mailbox>, key: usize) -> Box<SessionMachine> {
    let mailbox = Arc::clone(mailbox);
    let notify: Arc<dyn Fn() + Send + Sync> = Arc::new(move || mailbox.post_dirty(key));
    Box::new(SessionMachine::new(Arc::clone(&shared.ctx), notify))
}

/// The prefilled outbox of an at-capacity rejection.
fn rejection_bytes(http: bool, max_conns: usize) -> Vec<u8> {
    let message = format!("server at capacity ({max_conns} connections); retry later");
    if http {
        let mut outbox = Vec::new();
        let body = format!("{{\"error\": {message:?}}}\n");
        write_http_response(
            &mut outbox,
            "503 Service Unavailable",
            "application/json",
            body.as_bytes(),
            false,
        )
        .expect(VEC_WRITE);
        outbox
    } else {
        format!("{}\n", error_line(0, None, &message)).into_bytes()
    }
}

fn respond_healthz(shared: &ListenShared, outbox: &mut Vec<u8>, keep_alive: bool) {
    let body = healthz_body(shared);
    write_http_response(
        outbox,
        "200 OK",
        "application/json",
        body.as_bytes(),
        keep_alive,
    )
    .expect(VEC_WRITE);
}

fn respond_http_error(outbox: &mut Vec<u8>, status: &str, reason: &str) {
    let body = format!("{{\"error\": {reason:?}}}\n");
    write_http_response(outbox, status, "application/json", body.as_bytes(), false)
        .expect(VEC_WRITE);
}

/// ` [shard-id]` when this listener has one, empty otherwise — spliced
/// into log lines so a fleet's merged stderr stays attributable.
fn shard_tag(config: &ListenConfig) -> String {
    match &config.shard_id {
        Some(id) => format!(" [{id}]"),
        None => String::new(),
    }
}

/// The `/healthz` body: the honest process-wide capacity picture (worker
/// budget, pool load, connection and outbox gauges) plus the listener's
/// age, solution-cache effectiveness and (when sharded) identity.
fn healthz_body(shared: &ListenShared) -> String {
    let shard = match &shared.config.shard_id {
        Some(id) => {
            let mut quoted = String::new();
            json::write_string(&mut quoted, id);
            quoted
        }
        None => String::from("null"),
    };
    let cache = shared.ctx.solutions.stats();
    // one coherent snapshot: `busy_workers` is clamped to `workers`, so a
    // scrape racing a pool transition never reports more busy workers than
    // exist (the gauge dashboards divide these two)
    let pool = shared.executor().stats();
    format!(
        "{{\"schema_version\": {REPORT_SCHEMA_VERSION}, \"status\": \"ok\", \
         \"workers\": {}, \"busy_workers\": {}, \"queue_depth\": {}, \
         \"active_connections\": {}, \"uptime_ms\": {}, \
         \"open_connections\": {}, \"io_threads\": {}, \"outbox_bytes\": {}, \
         \"solution_cache\": {{\"entries\": {}, \"capacity\": {}, \
         \"hit_rate\": {:.4}, \"warm_starts\": {}}}, \"shard_id\": {shard}}}\n",
        pool.workers,
        pool.busy,
        pool.queued,
        shared.active.load(Ordering::SeqCst),
        shared.started.elapsed().as_millis(),
        shared.open.load(Ordering::SeqCst),
        shared.io_threads,
        shared.outbox_bytes.load(Ordering::SeqCst),
        cache.entries,
        cache.capacity,
        cache.hit_rate(),
        cache.warm_starts,
    )
}

fn record_summary(shared: &ListenShared, conn_id: usize, peer: &str, summary: &BatchSummary) {
    lock_ignoring_poison(&shared.report).absorb(summary);
    match shared.config.log {
        ConnLog::Quiet => {}
        ConnLog::Text => {
            let pool = shared.executor().stats();
            log_line(
                shared.config.log,
                format!(
                    "conn {conn_id}{} ({peer}): {} records ({} solved, {} errors), {} deadline \
                     hits | pool {}/{} busy, {} queued",
                    shard_tag(&shared.config),
                    summary.records,
                    summary.solved,
                    summary.errors,
                    summary.deadline_hits,
                    pool.busy,
                    pool.workers,
                    pool.queued,
                ),
            )
        }
        ConnLog::Json => log_line(shared.config.log, summary.to_json_line()),
    }
}

fn log_line(log: ConnLog, line: String) {
    if log != ConnLog::Quiet {
        eprintln!("{line}");
    }
}
