//! The NDJSON wire protocol: one JSON record per line, in and out.
//!
//! # Request lines
//!
//! Each input line is a `SolveRequest`-shaped object. The instance comes
//! either inline or by generator spec — exactly one of the two:
//!
//! ```json
//! {"id": "a", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}, "solver": "auto"}
//! {"id": "b", "generator": {"family": "uniform", "n": 100, "seed": 7}}
//! ```
//!
//! Optional fields (`id`, `solver`, `seed`, `decompose`, `validation`,
//! `max_jobs`, `deadline_ms`, `cache`, `parallel`) default to the server's
//! configuration; unknown fields are ignored, so clients may stamp their
//! own metadata onto request lines.
//!
//! `cache` controls the record's participation in the server's solution
//! cache: `"off"` bypasses it entirely, `"read"` may be served from it
//! but never inserts, `"write"` inserts but never reads, and
//! `"readwrite"` (the default) does both. Reports served from the cache
//! carry `"cached": true`; solves whose incumbent was seeded from a
//! cached near match carry `"warm_started": true`.
//!
//! `parallel` is the record's intra-instance parallelism policy
//! (`"auto"` / `"on"` / `"off"`): whether the solve may fork its own
//! kernels across the executor's idle workers. The fork–join layer is
//! deterministic, so the policy trades wall-clock time only — reports are
//! byte-identical either way.
//!
//! `deadline_ms` is the record's hard solve deadline, counted from the
//! moment a pool worker picks the record up: the solver is cut at its next
//! cooperative checkpoint and the embedded report carries
//! `deadline_hit: true` with the solver's incumbent schedule (or the
//! record fails with an `Infeasible` error line when the solver held no
//! incumbent). A record-level value overrides the server's
//! `--deadline-ms` batch default. `deadline_ms: 0` means "no speculative
//! work at all" — the cheapest feasible answer, immediately.
//!
//! # Response lines
//!
//! Exactly one line per input line, in input order. Every line carries the
//! stable `schema_version` stamp, the 1-based input `line`, the echoed
//! `id` (or `null`), and `ok`:
//!
//! ```json
//! {"schema_version": 1, "line": 1, "id": "a", "ok": true, "report": {…}}
//! {"schema_version": 1, "line": 2, "id": null, "ok": false, "error": "…"}
//! ```
//!
//! The embedded `report` object is [`SolveReport::to_json_line`].
//! [`parse_output_line`] reads response lines back (for golden tests and
//! downstream tooling) and tolerates unknown fields, so recorded lines
//! keep parsing as the protocol grows additively.

use busytime_core::memo::CachePolicy;
use busytime_core::solve::{ParallelPolicy, SolveOptions, ValidationLevel, REPORT_SCHEMA_VERSION};
use busytime_core::{Instance, SolveReport};
use busytime_instances::json::{self, JsonError, Value};
use busytime_instances::GeneratorSpec;
use busytime_interval::Interval;

/// Where a record's instance comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum RecordInput {
    /// Jobs and `g` inline on the request line.
    Inline(Instance),
    /// A deterministic generator spec to materialize.
    Generated(GeneratorSpec),
}

/// One parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchRecord {
    /// Client-chosen identifier, echoed on the response line.
    pub id: Option<String>,
    /// The instance, inline or by description.
    pub input: RecordInput,
    /// Registry key override (server default when absent).
    pub solver: Option<String>,
    /// Seed override for randomized solvers.
    pub seed: Option<u64>,
    /// Component-decomposition override.
    pub decompose: Option<bool>,
    /// Validation-level override (`"skip"` / `"basic"` / `"strict"`).
    pub validation: Option<ValidationLevel>,
    /// Per-record size budget.
    pub max_jobs: Option<usize>,
    /// Per-record hard solve deadline in milliseconds (overrides the
    /// batch-level default).
    pub deadline_ms: Option<u64>,
    /// Solution-cache participation (`"off"`/`"read"`/`"write"`/
    /// `"readwrite"`); the server default — [`CachePolicy::ReadWrite`] —
    /// when absent.
    pub cache: Option<CachePolicy>,
    /// Intra-instance parallelism override (`"auto"`/`"on"`/`"off"`); the
    /// server default when absent.
    pub parallel: Option<ParallelPolicy>,
}

impl BatchRecord {
    /// Parses one request line: the zero-copy fast path when the line is
    /// simple enough ([`BatchRecord::parse_fast`]), the [`Value`]-tree
    /// parser otherwise. The two agree byte for byte on every line — the
    /// fast path declines (rather than erring) on anything it cannot
    /// prove it handles identically.
    pub fn parse(line: &str) -> Result<BatchRecord, JsonError> {
        match Self::parse_fast(line) {
            Some(record) => Ok(record),
            None => Self::parse_owned(line),
        }
    }

    /// Zero-copy parse of a request line. Resolves the hot fields (`id`,
    /// `solver`, `deadline_ms`, `cache`, inline `instance` arrays, …) with
    /// borrowing cursors ([`json::scan`]) and never builds a [`Value`]
    /// tree. Returns `None` — *never* an error — whenever the line needs
    /// the owned parser: escape sequences, `generator` records,
    /// non-integer numbers, unknown object-valued fields, or any shape
    /// [`BatchRecord::parse_owned`] would reject. Public so differential
    /// tests and benches can pin the fast path against the owned one.
    pub fn parse_fast(line: &str) -> Option<BatchRecord> {
        use json::scan;

        /// Top-level key budget: lines stamping more client metadata than
        /// this take the owned path (the dup-key check is a linear scan
        /// over a fixed array — keep it cheap).
        const MAX_KEYS: usize = 24;

        let bytes = line.as_bytes();
        let mut pos = scan::skip_ws(line, 0);
        if bytes.get(pos) != Some(&b'{') {
            return None;
        }
        pos = scan::skip_ws(line, pos + 1);

        let mut seen: [&str; MAX_KEYS] = [""; MAX_KEYS];
        let mut nkeys = 0usize;
        let mut id = None;
        let mut input: Option<RecordInput> = None;
        let mut solver = None;
        let mut seed: Option<u64> = None;
        let mut decompose = None;
        let mut validation = None;
        let mut max_jobs: Option<usize> = None;
        let mut deadline_ms: Option<u64> = None;
        let mut cache = None;
        let mut parallel = None;

        if bytes.get(pos) == Some(&b'}') {
            pos += 1;
        } else {
            loop {
                let (key, next) = scan::string_borrowed(line, pos)?;
                if nkeys == MAX_KEYS || seen[..nkeys].contains(&key) {
                    return None; // owned parser rejects duplicate keys
                }
                seen[nkeys] = key;
                nkeys += 1;
                pos = scan::skip_ws(line, next);
                if bytes.get(pos) != Some(&b':') {
                    return None;
                }
                pos = scan::skip_ws(line, pos + 1);
                match key {
                    "id" => {
                        if let Some(p) = scan::literal(line, pos, "null") {
                            pos = p; // null id means no id
                        } else {
                            let (v, p) = scan::string_borrowed(line, pos)?;
                            id = Some(v.to_string());
                            pos = p;
                        }
                    }
                    "instance" => {
                        let (inst, p) = fast_inline_instance(line, pos)?;
                        input = Some(RecordInput::Inline(inst));
                        pos = p;
                    }
                    "solver" => {
                        // null `solver` is an owned-parser error — decline
                        let (v, p) = scan::string_borrowed(line, pos)?;
                        solver = Some(v.to_string());
                        pos = p;
                    }
                    "seed" => (seed, pos) = fast_opt_int(line, pos)?,
                    "max_jobs" => (max_jobs, pos) = fast_opt_int(line, pos)?,
                    "deadline_ms" => (deadline_ms, pos) = fast_opt_int(line, pos)?,
                    "decompose" => {
                        if let Some(p) = scan::literal(line, pos, "null") {
                            pos = p;
                        } else if let Some(p) = scan::literal(line, pos, "true") {
                            decompose = Some(true);
                            pos = p;
                        } else if let Some(p) = scan::literal(line, pos, "false") {
                            decompose = Some(false);
                            pos = p;
                        } else {
                            return None;
                        }
                    }
                    "validation" => {
                        let (v, p) = scan::string_borrowed(line, pos)?;
                        validation = Some(match v {
                            "skip" => ValidationLevel::Skip,
                            "basic" => ValidationLevel::Basic,
                            "strict" => ValidationLevel::Strict,
                            _ => return None,
                        });
                        pos = p;
                    }
                    "cache" => {
                        if let Some(p) = scan::literal(line, pos, "null") {
                            pos = p; // null cache means server default
                        } else {
                            let (v, p) = scan::string_borrowed(line, pos)?;
                            cache = Some(v.parse::<CachePolicy>().ok()?);
                            pos = p;
                        }
                    }
                    "parallel" => {
                        if let Some(p) = scan::literal(line, pos, "null") {
                            pos = p; // null parallel means server default
                        } else {
                            let (v, p) = scan::string_borrowed(line, pos)?;
                            parallel = Some(ParallelPolicy::parse(v)?);
                            pos = p;
                        }
                    }
                    // unknown client metadata — and `generator` records,
                    // whose object value makes the skip decline
                    _ => pos = scan::skip_simple_value(line, pos, 8)?,
                }
                pos = scan::skip_ws(line, pos);
                match bytes.get(pos)? {
                    b',' => pos = scan::skip_ws(line, pos + 1),
                    b'}' => {
                        pos += 1;
                        break;
                    }
                    _ => return None,
                }
            }
        }
        if scan::skip_ws(line, pos) != line.len() {
            return None; // trailing garbage is an owned-parser error
        }
        Some(BatchRecord {
            id,
            input: input?,
            solver,
            seed,
            decompose,
            validation,
            max_jobs,
            deadline_ms,
            cache,
            parallel,
        })
    }

    /// Parses one request line through the owned [`Value`]-tree parser —
    /// the semantic reference [`BatchRecord::parse_fast`] must agree with.
    pub fn parse_owned(line: &str) -> Result<BatchRecord, JsonError> {
        let value = json::parse(line)?;
        let id = match value.get("id") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| JsonError("field `id` must be a string".into()))?
                    .to_string(),
            ),
        };
        let input = match (value.get("instance"), value.get("generator")) {
            (Some(_), Some(_)) => {
                return Err(JsonError(
                    "record has both `instance` and `generator`; provide exactly one".into(),
                ))
            }
            (Some(inst), None) => RecordInput::Inline(parse_inline_instance(inst)?),
            (None, Some(spec)) => RecordInput::Generated(GeneratorSpec::from_value(spec)?),
            (None, None) => {
                return Err(JsonError(
                    "record needs an `instance` or a `generator`".into(),
                ))
            }
        };
        let solver = match value.get("solver") {
            None => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| JsonError("field `solver` must be a string".into()))?
                    .to_string(),
            ),
        };
        let validation = match value.get("validation") {
            None => None,
            Some(v) => Some(parse_validation(v.as_str().ok_or_else(|| {
                JsonError("field `validation` must be a string".into())
            })?)?),
        };
        let cache = match value.get("cache") {
            None | Some(Value::Null) => None,
            Some(v) => Some(
                v.as_str()
                    .ok_or_else(|| JsonError("field `cache` must be a string".into()))?
                    .parse::<CachePolicy>()
                    .map_err(JsonError)?,
            ),
        };
        let parallel = match value.get("parallel") {
            None | Some(Value::Null) => None,
            Some(v) => {
                let raw = v
                    .as_str()
                    .ok_or_else(|| JsonError("field `parallel` must be a string".into()))?;
                Some(ParallelPolicy::parse(raw).ok_or_else(|| {
                    JsonError(format!(
                        "unknown parallel policy '{raw}' (expected auto, on or off)"
                    ))
                })?)
            }
        };
        Ok(BatchRecord {
            id,
            input,
            solver,
            seed: json::opt_int(&value, "seed")?,
            decompose: opt_bool(&value, "decompose")?,
            validation,
            max_jobs: json::opt_int(&value, "max_jobs")?,
            deadline_ms: json::opt_int(&value, "deadline_ms")?,
            cache,
            parallel,
        })
    }

    /// Materializes the record's instance (generates when described by
    /// spec). Equal inputs materialize equal instances, which is what the
    /// server's feature cache keys on.
    pub fn instance(&self) -> Instance {
        match &self.input {
            RecordInput::Inline(inst) => inst.clone(),
            RecordInput::Generated(spec) => spec.generate(),
        }
    }

    /// Folds this record's overrides into a base [`SolveOptions`].
    pub fn apply_overrides(&self, mut options: SolveOptions) -> SolveOptions {
        if let Some(seed) = self.seed {
            options.seed = seed;
        }
        if let Some(decompose) = self.decompose {
            options.decompose = decompose;
        }
        if let Some(validation) = self.validation {
            options.validation = validation;
        }
        if let Some(max_jobs) = self.max_jobs {
            options.max_jobs = Some(max_jobs);
        }
        if let Some(ms) = self.deadline_ms {
            options.deadline = Some(std::time::Duration::from_millis(ms));
        }
        if let Some(parallel) = self.parallel {
            options.parallel = parallel;
        }
        options
    }
}

fn parse_validation(s: &str) -> Result<ValidationLevel, JsonError> {
    match s {
        "skip" => Ok(ValidationLevel::Skip),
        "basic" => Ok(ValidationLevel::Basic),
        "strict" => Ok(ValidationLevel::Strict),
        other => Err(JsonError(format!(
            "unknown validation level '{other}' (expected skip, basic or strict)"
        ))),
    }
}

fn parse_inline_instance(value: &Value) -> Result<Instance, JsonError> {
    let g_raw = value
        .field("g")?
        .as_i64()
        .ok_or_else(|| JsonError("field `g` must be an integer".into()))?;
    let g = u32::try_from(g_raw).map_err(|_| JsonError("field `g` out of range".into()))?;
    if g == 0 {
        return Err(JsonError("field `g` must be at least 1".into()));
    }
    let jobs = value
        .field("jobs")?
        .as_array()
        .ok_or_else(|| JsonError("field `jobs` must be an array".into()))?
        .iter()
        .map(|pair| {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| JsonError("each job must be a `[start, end]` pair".into()))?;
            match (pair[0].as_i64(), pair[1].as_i64()) {
                (Some(s), Some(c)) if s <= c => Ok(Interval::new(s, c)),
                (Some(s), Some(c)) => {
                    Err(JsonError(format!("job `[{s}, {c}]` has start after end")))
                }
                _ => Err(JsonError("job endpoints must be integers".into())),
            }
        })
        .collect::<Result<Vec<Interval>, _>>()?;
    Ok(Instance::new(jobs, g))
}

/// Zero-copy read of an optional integer field value: `null` is absent,
/// a strict integer converts or declines (the owned parser turns
/// out-of-range values into errors — those must go through it).
fn fast_opt_int<T: TryFrom<i64>>(line: &str, pos: usize) -> Option<(Option<T>, usize)> {
    use json::scan;
    if let Some(p) = scan::literal(line, pos, "null") {
        return Some((None, p));
    }
    let (n, p) = scan::int_strict(line, pos)?;
    T::try_from(n).ok().map(|v| (Some(v), p))
}

/// Zero-copy read of an inline `{"g": …, "jobs": [[s, c], …]}` object.
/// Declines on anything [`parse_inline_instance`] would reject (`g`
/// missing/0/out-of-range, malformed pairs, `start > end`) and on float
/// endpoints, which only the owned parser can normalize.
fn fast_inline_instance(line: &str, pos: usize) -> Option<(Instance, usize)> {
    use json::scan;
    let bytes = line.as_bytes();
    if bytes.get(pos) != Some(&b'{') {
        return None;
    }
    let mut pos = scan::skip_ws(line, pos + 1);
    let mut seen: [&str; 8] = [""; 8];
    let mut nkeys = 0usize;
    let mut g: Option<u32> = None;
    let mut jobs: Option<Vec<Interval>> = None;
    if bytes.get(pos) == Some(&b'}') {
        pos += 1;
    } else {
        loop {
            let (key, next) = scan::string_borrowed(line, pos)?;
            if nkeys == seen.len() || seen[..nkeys].contains(&key) {
                return None;
            }
            seen[nkeys] = key;
            nkeys += 1;
            pos = scan::skip_ws(line, next);
            if bytes.get(pos) != Some(&b':') {
                return None;
            }
            pos = scan::skip_ws(line, pos + 1);
            match key {
                "g" => {
                    let (n, p) = scan::int_strict(line, pos)?;
                    let value = u32::try_from(n).ok()?;
                    if value == 0 {
                        return None;
                    }
                    g = Some(value);
                    pos = p;
                }
                "jobs" => (jobs, pos) = fast_job_pairs(line, pos).map(|(j, p)| (Some(j), p))?,
                _ => pos = scan::skip_simple_value(line, pos, 8)?,
            }
            pos = scan::skip_ws(line, pos);
            match bytes.get(pos)? {
                b',' => pos = scan::skip_ws(line, pos + 1),
                b'}' => {
                    pos += 1;
                    break;
                }
                _ => return None,
            }
        }
    }
    Some((Instance::new(jobs?, g?), pos))
}

/// Zero-copy read of a `[[start, end], …]` jobs array of strict-integer
/// pairs with `start ≤ end`.
fn fast_job_pairs(line: &str, pos: usize) -> Option<(Vec<Interval>, usize)> {
    use json::scan;
    let bytes = line.as_bytes();
    if bytes.get(pos) != Some(&b'[') {
        return None;
    }
    let mut pos = scan::skip_ws(line, pos + 1);
    let mut jobs = Vec::new();
    if bytes.get(pos) == Some(&b']') {
        return Some((jobs, pos + 1));
    }
    loop {
        if bytes.get(pos) != Some(&b'[') {
            return None;
        }
        pos = scan::skip_ws(line, pos + 1);
        let (s, p) = scan::int_strict(line, pos)?;
        pos = scan::skip_ws(line, p);
        if bytes.get(pos) != Some(&b',') {
            return None;
        }
        pos = scan::skip_ws(line, pos + 1);
        let (c, p) = scan::int_strict(line, pos)?;
        pos = scan::skip_ws(line, p);
        if bytes.get(pos) != Some(&b']') || s > c {
            return None;
        }
        jobs.push(Interval::new(s, c));
        pos = scan::skip_ws(line, pos + 1);
        match bytes.get(pos)? {
            b',' => pos = scan::skip_ws(line, pos + 1),
            b']' => return Some((jobs, pos + 1)),
            _ => return None,
        }
    }
}

fn opt_bool(value: &Value, key: &str) -> Result<Option<bool>, JsonError> {
    match value.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(Value::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(JsonError(format!("field `{key}` must be a boolean"))),
    }
}

fn line_prefix(out: &mut String, line: usize, id: Option<&str>, ok: bool) {
    out.push_str(&format!(
        "{{\"schema_version\": {REPORT_SCHEMA_VERSION}, \"line\": {line}, \"id\": "
    ));
    match id {
        Some(id) => json::write_string(out, id),
        None => out.push_str("null"),
    }
    out.push_str(&format!(", \"ok\": {ok}"));
}

/// Renders a successful response line (no trailing newline).
pub fn report_line(line: usize, id: Option<&str>, report: &SolveReport) -> String {
    let mut out = String::new();
    line_prefix(&mut out, line, id, true);
    out.push_str(", \"report\": ");
    out.push_str(&report.to_json_line());
    out.push('}');
    out
}

/// Renders a structured error response line (no trailing newline).
pub fn error_line(line: usize, id: Option<&str>, error: &str) -> String {
    let mut out = String::new();
    line_prefix(&mut out, line, id, false);
    out.push_str(", \"error\": ");
    json::write_string(&mut out, error);
    out.push('}');
    out
}

/// A response line restamped by [`reline_output`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelinedOutput {
    /// The response line with its `line` field rewritten.
    pub text: String,
    /// The line's `ok` flag, read positionally off the stable prefix.
    pub ok: bool,
}

/// Rewrites the `line` number of a response line without parsing (or
/// re-serializing) the full JSON — the restamp the shard router applies
/// when it forwards a backend's answer under the client's original input
/// numbering.
///
/// Returns `None` when `text` does not open with the exact prefix every
/// response line carries (`{"schema_version": N, "line": L, "id": …,
/// "ok": …`) — which is also how the router tells a per-record response
/// apart from a [`crate::engine::BatchSummary`] trailer, whose line has
/// no `line` field. The `id` is skipped structurally (escapes honored),
/// never substring-matched, so an adversarial id cannot spoof the `ok`
/// flag.
pub fn reline_output(text: &str, line: usize) -> Option<RelinedOutput> {
    let rest = text.strip_prefix("{\"schema_version\": ")?;
    let digits = rest.bytes().take_while(u8::is_ascii_digit).count();
    if digits == 0 {
        return None;
    }
    let rest = rest[digits..].strip_prefix(", \"line\": ")?;
    let old_start = text.len() - rest.len();
    let old_digits = rest.bytes().take_while(u8::is_ascii_digit).count();
    if old_digits == 0 {
        return None;
    }
    let tail = &rest[old_digits..];
    let after_id = tail.strip_prefix(", \"id\": ").and_then(|after_key| {
        after_key
            .strip_prefix("null")
            .or_else(|| skip_json_string(after_key))
    })?;
    let ok = if after_id.starts_with(", \"ok\": true") {
        true
    } else if after_id.starts_with(", \"ok\": false") {
        false
    } else {
        return None;
    };
    let mut out = String::with_capacity(text.len() + 20);
    out.push_str(&text[..old_start]);
    out.push_str(&line.to_string());
    out.push_str(tail);
    Some(RelinedOutput { text: out, ok })
}

/// Skips one JSON string literal at the start of `s` (honoring `\"` and
/// other backslash escapes), returning the rest after the closing quote.
fn skip_json_string(s: &str) -> Option<&str> {
    let bytes = s.as_bytes();
    if bytes.first() != Some(&b'"') {
        return None;
    }
    let mut i = 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&s[i + 1..]),
            _ => i += 1,
        }
    }
    None
}

/// The fields of an embedded report a protocol consumer relies on.
///
/// Deliberately a summary, not a full [`SolveReport`]: response lines may
/// grow fields this type does not know about (and golden lines recorded
/// under older servers may lack fields newer ones emit), so only the
/// stable core is materialized.
#[derive(Clone, Debug, PartialEq)]
pub struct ReportSummary {
    /// The resolved scheduler name.
    pub solver: String,
    /// Total busy time.
    pub cost: i64,
    /// Machines used.
    pub machines: i64,
    /// Certified lower bound.
    pub lower_bound: i64,
    /// `cost / lower_bound`.
    pub gap: f64,
    /// True iff the record's deadline cut the solve and the assignment is
    /// the solver's incumbent. Absent on lines recorded by pre-deadline
    /// servers; parsed as `false` then.
    pub deadline_hit: bool,
    /// True iff the report was served from the solution cache. Absent on
    /// lines recorded by pre-cache servers; parsed as `false` then.
    pub cached: bool,
    /// True iff the solve was warm-started from a cached near match.
    /// Absent on older lines; parsed as `false` then.
    pub warm_started: bool,
    /// Machine of each job.
    pub assignment: Vec<usize>,
}

/// One parsed response line.
#[derive(Clone, Debug, PartialEq)]
pub enum OutputLine {
    /// A solved record.
    Report {
        /// 1-based input line number.
        line: usize,
        /// Echoed record id.
        id: Option<String>,
        /// The embedded report summary.
        report: ReportSummary,
    },
    /// A failed record.
    Error {
        /// 1-based input line number.
        line: usize,
        /// Echoed record id (when the line parsed far enough to have one).
        id: Option<String>,
        /// Human-readable cause.
        error: String,
    },
}

impl OutputLine {
    /// The 1-based input line number this response answers.
    pub fn line(&self) -> usize {
        match self {
            OutputLine::Report { line, .. } | OutputLine::Error { line, .. } => *line,
        }
    }
}

/// Parses a response line, ignoring unknown fields (forward and backward
/// compatible across additive protocol growth).
pub fn parse_output_line(input: &str) -> Result<OutputLine, JsonError> {
    let value = json::parse(input)?;
    let line = value
        .field("line")?
        .as_i64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or_else(|| JsonError("field `line` must be a non-negative integer".into()))?;
    let id = match value.get("id") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| JsonError("field `id` must be a string".into()))?
                .to_string(),
        ),
    };
    let ok = match value.field("ok")? {
        Value::Bool(b) => *b,
        _ => return Err(JsonError("field `ok` must be a boolean".into())),
    };
    if !ok {
        let error = value
            .field("error")?
            .as_str()
            .ok_or_else(|| JsonError("field `error` must be a string".into()))?
            .to_string();
        return Ok(OutputLine::Error { line, id, error });
    }
    let report = value.field("report")?;
    let int = |key: &str| -> Result<i64, JsonError> {
        report
            .field(key)?
            .as_i64()
            .ok_or_else(|| JsonError(format!("report field `{key}` must be an integer")))
    };
    let gap = match report.field("gap")? {
        Value::Int(n) => *n as f64,
        Value::Number(n) => *n,
        // a non-finite gap (positive cost over a zero certified bound)
        // serializes as null; parse it back as the infinity it stands for
        Value::Null => f64::INFINITY,
        _ => return Err(JsonError("report field `gap` must be a number".into())),
    };
    let assignment = report
        .field("assignment")?
        .as_array()
        .ok_or_else(|| JsonError("report field `assignment` must be an array".into()))?
        .iter()
        .map(|v| {
            v.as_i64()
                .and_then(|m| usize::try_from(m).ok())
                .ok_or_else(|| JsonError("machine ids must be non-negative integers".into()))
        })
        .collect::<Result<Vec<usize>, _>>()?;
    Ok(OutputLine::Report {
        line,
        id,
        report: ReportSummary {
            solver: report
                .field("solver")?
                .as_str()
                .ok_or_else(|| JsonError("report field `solver` must be a string".into()))?
                .to_string(),
            cost: int("cost")?,
            machines: int("machines")?,
            lower_bound: int("lower_bound")?,
            gap,
            deadline_hit: matches!(report.get("deadline_hit"), Some(Value::Bool(true))),
            cached: matches!(report.get("cached"), Some(Value::Bool(true))),
            warm_started: matches!(report.get("warm_started"), Some(Value::Bool(true))),
            assignment,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use busytime_core::SolveRequest;

    #[test]
    fn parses_inline_record_with_overrides() {
        let rec = BatchRecord::parse(
            r#"{"id": "x", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]},
               "solver": "first-fit", "seed": 9, "decompose": false,
               "validation": "strict", "max_jobs": 10, "deadline_ms": 250,
               "parallel": "off", "client_tag": "ignored"}"#,
        )
        .unwrap();
        assert_eq!(rec.id.as_deref(), Some("x"));
        assert_eq!(rec.solver.as_deref(), Some("first-fit"));
        assert_eq!(rec.instance().len(), 2);
        assert_eq!(rec.deadline_ms, Some(250));
        assert_eq!(rec.parallel, Some(ParallelPolicy::Off));
        let opts = rec.apply_overrides(SolveOptions::default());
        assert_eq!(opts.seed, 9);
        assert!(!opts.decompose);
        assert_eq!(opts.validation, ValidationLevel::Strict);
        assert_eq!(opts.max_jobs, Some(10));
        assert_eq!(opts.deadline, Some(std::time::Duration::from_millis(250)));
        assert_eq!(opts.parallel, ParallelPolicy::Off);
    }

    #[test]
    fn parses_generator_record() {
        let rec = BatchRecord::parse(r#"{"generator": {"family": "proper", "n": 12, "seed": 3}}"#)
            .unwrap();
        assert!(rec.id.is_none());
        let inst = rec.instance();
        assert_eq!(inst.len(), 12);
        // determinism: same record, same instance
        assert_eq!(inst, rec.instance());
    }

    #[test]
    fn rejects_shapeless_records() {
        for bad in [
            r#"{"id": "a"}"#,
            r#"{"instance": {"g": 2, "jobs": []}, "generator": {"family": "uniform"}}"#,
            r#"{"instance": {"g": 0, "jobs": []}}"#,
            r#"{"instance": {"g": 2, "jobs": [[4, 0]]}}"#,
            r#"{"instance": {"g": 2, "jobs": [[0, 4]]}, "validation": "paranoid"}"#,
            r#"{"instance": {"g": 2, "jobs": [[0, 4]]}, "parallel": "sideways"}"#,
            r#"not json at all"#,
        ] {
            assert!(BatchRecord::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn response_lines_round_trip() {
        let inst = Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 2);
        let report = SolveRequest::new(&inst).solve().unwrap();
        let line = report_line(3, Some("abc"), &report);
        assert!(!line.contains('\n'));
        match parse_output_line(&line).unwrap() {
            OutputLine::Report {
                line,
                id,
                report: summary,
            } => {
                assert_eq!(line, 3);
                assert_eq!(id.as_deref(), Some("abc"));
                assert_eq!(summary.cost, report.cost);
                assert_eq!(summary.lower_bound, report.lower_bound);
                assert_eq!(summary.assignment.len(), inst.len());
            }
            other => panic!("expected report line, got {other:?}"),
        }

        let err = error_line(7, None, "json: bad \"line\"");
        match parse_output_line(&err).unwrap() {
            OutputLine::Error { line, id, error } => {
                assert_eq!(line, 7);
                assert!(id.is_none());
                assert!(error.contains("bad \"line\""));
            }
            other => panic!("expected error line, got {other:?}"),
        }
    }

    #[test]
    fn output_parser_tolerates_null_gap() {
        let inst = Instance::from_pairs([(0, 4)], 2);
        let report = SolveRequest::new(&inst).solve().unwrap();
        let line = report_line(1, None, &report);
        let gap_field = format!("\"gap\": {:.6}", report.gap);
        assert!(line.contains(&gap_field), "{line}");
        let nulled = line.replacen(&gap_field, "\"gap\": null", 1);
        match parse_output_line(&nulled).unwrap() {
            OutputLine::Report { report, .. } => assert!(report.gap.is_infinite()),
            other => panic!("expected report line, got {other:?}"),
        }
    }

    #[test]
    fn reline_restamps_without_reparsing() {
        let inst = Instance::from_pairs([(0, 4), (1, 5)], 2);
        let report = SolveRequest::new(&inst).solve().unwrap();
        let original = report_line(42, Some("abc"), &report);
        let relined = reline_output(&original, 7).unwrap();
        assert!(relined.ok);
        assert!(relined.text.starts_with(&format!(
            "{{\"schema_version\": {REPORT_SCHEMA_VERSION}, \"line\": 7, \"id\": \"abc\""
        )));
        // nothing but the line number changed
        match parse_output_line(&relined.text).unwrap() {
            OutputLine::Report {
                line,
                id,
                report: parsed,
            } => {
                assert_eq!(line, 7);
                assert_eq!(id.as_deref(), Some("abc"));
                assert_eq!(parsed.cost, report.cost);
            }
            other => panic!("expected report line, got {other:?}"),
        }

        let err = error_line(3, None, "boom");
        let relined = reline_output(&err, 11).unwrap();
        assert!(!relined.ok);
        assert_eq!(parse_output_line(&relined.text).unwrap().line(), 11);
    }

    #[test]
    fn reline_rejects_trailers_and_spoofed_ids() {
        // a batch-summary trailer has no `line` field: not a response line
        assert!(
            reline_output("{\"schema_version\": 1, \"records\": 3, \"solved\": 3}", 1).is_none()
        );
        assert!(reline_output("free text", 1).is_none());

        // an id crafted to *contain* the ok-prefix must not fool the
        // positional scan: the real flag after the string wins
        let tricky = error_line(1, Some("x\", \"ok\": true"), "nope");
        let relined = reline_output(&tricky, 9).unwrap();
        assert!(!relined.ok, "spoofed id flipped the ok flag: {tricky}");
        match parse_output_line(&relined.text).unwrap() {
            OutputLine::Error { line, id, .. } => {
                assert_eq!(line, 9);
                assert_eq!(id.as_deref(), Some("x\", \"ok\": true"));
            }
            other => panic!("expected error line, got {other:?}"),
        }
    }

    #[test]
    fn output_parser_tolerates_unknown_fields() {
        let inst = Instance::from_pairs([(0, 4)], 2);
        let report = SolveRequest::new(&inst).solve().unwrap();
        let line = report_line(1, None, &report);
        // a future server stamps extra fields at both nesting levels
        let extended = line
            .replacen(
                "{\"schema_version\"",
                "{\"future\": [1, 2], \"schema_version\"",
                1,
            )
            .replacen("\"report\": {", "\"report\": {\"queue_ms\": 0.5, ", 1);
        let parsed = parse_output_line(&extended).unwrap();
        assert_eq!(parsed.line(), 1);
    }
}
