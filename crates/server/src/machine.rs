//! The resumable per-connection session state machine behind the
//! event-driven [`crate::listener`].
//!
//! [`SessionMachine`] is the non-blocking counterpart of
//! [`crate::engine::BatchSession`]: instead of owning a `BufRead`/`Write`
//! pair and blocking on it, the machine is *fed* raw socket bytes as they
//! arrive (`feed`), dispatches parsed records onto the shared
//! [`Executor`] as fire-and-forget jobs, receives completions through a
//! wakeable inbox, and *pumped* (`pump`) emits response bytes in input
//! order into whatever outbox the caller maintains. The I/O thread that
//! drives it never blocks and never solves; the executor workers that
//! solve never touch the socket.
//!
//! Record semantics are identical to the blocking engine by construction:
//! both paths share [`crate::engine`]'s `prepare_record` (parse-time
//! solution-cache consultation), `solve_prepared` (the worker-side solve,
//! warm starts and write-back included) and `settle_*` helpers (in-order
//! accounting, deadline classification, latency exclusions). Records are
//! parsed in *waves* of at most the engine chunk size, and the next wave
//! is parsed only once the current wave's dispatches have all completed —
//! which preserves the blocking engine's cross-record solution-cache
//! behavior (a record repeated after a completed wave is a lookup hit) and
//! its per-wave feature-cache accounting (duplicates within a wave count
//! one miss plus hits).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use busytime_core::cancel::CancelToken;
use busytime_core::memo::SolutionCache;
use busytime_core::pool::{DeadlineOutcome, Executor};
use busytime_core::solve::SolverRegistry;
use busytime_core::InstanceFeatures;

use crate::engine::{
    effective_chunk_size, effective_width, lock_ignoring_poison, prepare_record, settle_bad,
    settle_hit, settle_outcome, solve_prepared, BatchSummary, ErrorPolicy, RecordResult,
    ServeConfig, ServeError, SessionStats, SharedFeatureCache, SolveItem,
};
use crate::protocol::BatchRecord;

/// Everything the machines of one listener share: the registry, the
/// engine configuration, both caches, the executor and the shutdown
/// token. One of these is built per listener and handed to every
/// connection's machine as an `Arc`.
pub(crate) struct SessionContext {
    pub(crate) registry: Arc<SolverRegistry>,
    pub(crate) config: ServeConfig,
    pub(crate) cache: SharedFeatureCache,
    pub(crate) solutions: SolutionCache,
    pub(crate) executor: Executor,
    /// The listener's shutdown token: parsing stops once it fires, and
    /// every record token is armed as a child of it so a drain cuts
    /// in-flight solves cooperatively.
    pub(crate) cancel: CancelToken,
}

/// One completed solve, posted by an executor worker into the machine's
/// inbox.
struct Completion {
    seq: usize,
    outcome: DeadlineOutcome<RecordResult>,
}

/// How one input-order slot will be (or was) answered.
enum Answer {
    /// The line failed to parse.
    Bad(String),
    /// Answered from the solution cache at parse time.
    Hit(busytime_core::SolveReport),
    /// A completed dispatch.
    Solved(DeadlineOutcome<RecordResult>),
}

enum SlotState {
    /// Parsed and prepared, waiting for a dispatch slot under the
    /// session's width cap.
    Queued(Box<SolveItem>),
    /// On (or queued behind) the executor; a [`Completion`] will fill it.
    InFlight,
    /// Answer known; drains once every earlier slot has drained.
    Ready(Box<Answer>),
}

/// One record's input-order slot.
struct Slot {
    line: usize,
    id: Option<String>,
    state: SlotState,
}

/// A resumable batch session over one connection: feed bytes in, pump
/// response bytes out, in input order; see the [module docs](self).
pub(crate) struct SessionMachine {
    ctx: Arc<SessionContext>,
    /// Completions posted by executor workers; drained by `pump`.
    inbox: Arc<Mutex<Vec<Completion>>>,
    /// Called by workers after posting a completion — the listener's hook
    /// to wake the poll loop that owns this machine.
    notify: Arc<dyn Fn() + Send + Sync>,
    /// Unconsumed input bytes (complete lines are drained off the front).
    inbuf: Vec<u8>,
    /// Where the newline scan over `inbuf` resumes.
    scanned: usize,
    line_no: usize,
    /// `finish_input` was called: the client's end of batch.
    eof: bool,
    /// FailFast (or a future fatal) latch: the batch is aborted, no
    /// further answers stream, and the connection should be cut.
    failed: Option<ServeError>,
    /// Input-order slots awaiting drain; `base_seq` is the front's seq.
    slots: VecDeque<Slot>,
    base_seq: usize,
    next_seq: usize,
    /// Seqs parsed but not yet dispatched (width cap back-pressure).
    queue: VecDeque<usize>,
    inflight: usize,
    width: usize,
    chunk_size: usize,
    stats: SessionStats,
    started: Instant,
    summary: Option<BatchSummary>,
}

impl SessionMachine {
    /// A machine over the listener's shared context. `notify` is invoked
    /// from executor workers whenever a completion lands in the inbox —
    /// it must be cheap and non-blocking (the listener posts a wake to
    /// the owning poll loop).
    pub(crate) fn new(ctx: Arc<SessionContext>, notify: Arc<dyn Fn() + Send + Sync>) -> Self {
        let width = effective_width(&ctx.config, &ctx.executor);
        let chunk_size = effective_chunk_size(&ctx.config, width);
        SessionMachine {
            ctx,
            inbox: Arc::new(Mutex::new(Vec::new())),
            notify,
            inbuf: Vec::new(),
            scanned: 0,
            line_no: 0,
            eof: false,
            failed: None,
            slots: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            queue: VecDeque::new(),
            inflight: 0,
            width,
            chunk_size,
            stats: SessionStats::default(),
            started: Instant::now(),
            summary: None,
        }
    }

    /// Buffers freshly-read socket bytes. Call `pump` afterwards to parse
    /// and dispatch them.
    pub(crate) fn feed(&mut self, bytes: &[u8]) {
        self.inbuf.extend_from_slice(bytes);
    }

    /// Marks the client's end of batch (half-close, idle cut, or the
    /// listener's shutdown drain). Buffered complete lines — and a final
    /// unterminated one — are still parsed and answered.
    pub(crate) fn finish_input(&mut self) {
        self.eof = true;
    }

    /// The batch is fully answered: summary emitted (or the batch
    /// aborted), nothing in flight.
    pub(crate) fn is_done(&self) -> bool {
        self.summary.is_some() || self.failed.is_some()
    }

    /// Records dispatched (or queued for dispatch) whose answers have not
    /// come back yet — the signal that an idle wire does not mean an idle
    /// session.
    pub(crate) fn has_inflight(&self) -> bool {
        self.inflight > 0 || !self.queue.is_empty()
    }

    /// The batch summary, once the session finished cleanly.
    pub(crate) fn summary(&self) -> Option<&BatchSummary> {
        self.summary.as_ref()
    }

    /// Why the batch aborted, when it did ([`ErrorPolicy::FailFast`]).
    pub(crate) fn failure(&self) -> Option<&ServeError> {
        self.failed.as_ref()
    }

    /// Drives the machine as far as it can go without blocking: drains
    /// worker completions, emits ready answers (in input order) into
    /// `out`, parses and dispatches the next wave when the current one is
    /// complete, and appends the summary line once everything is
    /// answered. `allow_parse = false` suspends parsing (outbox
    /// back-pressure) while completions still drain.
    ///
    /// Returns `true` when bytes were appended to `out`.
    pub(crate) fn pump(&mut self, out: &mut Vec<u8>, allow_parse: bool) -> bool {
        let before = out.len();
        self.drain_inbox();
        loop {
            let mut progressed = self.drain_ready(out);
            if allow_parse && self.can_parse() {
                progressed |= self.parse_wave();
            }
            progressed |= self.dispatch_some();
            if !progressed {
                break;
            }
        }
        self.maybe_summarize(out);
        out.len() > before
    }

    /// Moves posted completions into their slots.
    fn drain_inbox(&mut self) {
        let completions = std::mem::take(&mut *lock_ignoring_poison(&self.inbox));
        for Completion { seq, outcome } in completions {
            // completions for slots cleared by a FailFast abort are stale
            if seq < self.base_seq {
                continue;
            }
            let slot = &mut self.slots[seq - self.base_seq];
            debug_assert!(matches!(slot.state, SlotState::InFlight));
            slot.state = SlotState::Ready(Box::new(Answer::Solved(outcome)));
            self.inflight -= 1;
        }
    }

    /// Streams the contiguous ready prefix, settling each answer into the
    /// shared statistics exactly as the blocking engine does at write
    /// time.
    fn drain_ready(&mut self, out: &mut Vec<u8>) -> bool {
        let mut any = false;
        while matches!(
            self.slots.front().map(|s| &s.state),
            Some(SlotState::Ready(_))
        ) {
            let slot = self.slots.pop_front().expect("checked front");
            self.base_seq += 1;
            let SlotState::Ready(answer) = slot.state else {
                unreachable!("front checked Ready");
            };
            let policy = self.ctx.config.error_policy;
            let settled = match *answer {
                Answer::Bad(message) => settle_bad(slot.line, &message, policy, &mut self.stats),
                Answer::Hit(report) => Ok(settle_hit(
                    slot.line,
                    slot.id.as_deref(),
                    &report,
                    &mut self.stats,
                )),
                Answer::Solved(outcome) => settle_outcome(
                    slot.line,
                    slot.id.as_deref(),
                    &outcome,
                    policy,
                    &mut self.stats,
                ),
            };
            match settled {
                Ok(line) => {
                    out.extend_from_slice(line.as_bytes());
                    out.push(b'\n');
                    any = true;
                }
                Err(e) => {
                    self.fail(e);
                    break;
                }
            }
        }
        any
    }

    /// Aborts the batch: later slots never answer (matching the blocking
    /// engine, which returns mid-stream), and completions still in flight
    /// are dropped as stale when they arrive.
    fn fail(&mut self, error: ServeError) {
        self.failed = Some(error);
        self.slots.clear();
        self.queue.clear();
        self.base_seq = self.next_seq;
        self.inflight = 0;
    }

    /// A new wave may parse once the current one has fully completed —
    /// the window in which the blocking engine would be between chunks.
    /// (Completed means answered by the workers, not yet drained to the
    /// client: write-backs have happened, so parse-time lookups stay
    /// equivalent.) Parsing also stops at the shutdown token, exactly
    /// like the blocking read loop.
    fn can_parse(&self) -> bool {
        self.failed.is_none()
            && self.summary.is_none()
            && self.inflight == 0
            && self.queue.is_empty()
            && !self.ctx.cancel.is_cancelled()
    }

    /// Takes the next complete line off `inbuf` (or the final
    /// unterminated line at EOF), like the blocking engine's `next_line`.
    fn take_line(&mut self) -> Option<Vec<u8>> {
        match self.inbuf[self.scanned..].iter().position(|&b| b == b'\n') {
            Some(at) => {
                let end = self.scanned + at + 1;
                let line = self.inbuf[..end].to_vec();
                self.inbuf.drain(..end);
                self.scanned = 0;
                Some(line)
            }
            None => {
                self.scanned = self.inbuf.len();
                if self.eof && !self.inbuf.is_empty() {
                    self.scanned = 0;
                    Some(std::mem::take(&mut self.inbuf))
                } else {
                    None
                }
            }
        }
    }

    /// Parses up to one chunk of buffered records into new slots: bad
    /// lines and solution-cache hits become `Ready` immediately, solves
    /// are queued for dispatch. Runs the wave's feature-cache accounting
    /// the way the blocking engine's batched detection pass counts it.
    fn parse_wave(&mut self) -> bool {
        let mut wave: Vec<usize> = Vec::new();
        while wave.len() < self.chunk_size {
            let Some(buf) = self.take_line() else { break };
            self.line_no += 1;
            let parsed = std::str::from_utf8(&buf)
                .map_err(|e| format!("line is not valid UTF-8: {e}"))
                .and_then(|line| {
                    let trimmed = line.trim();
                    if trimmed.is_empty() {
                        return Ok(None); // blank lines are not records
                    }
                    BatchRecord::parse(trimmed)
                        .map(Some)
                        .map_err(|e| e.to_string())
                });
            match parsed {
                Ok(None) => continue,
                Ok(Some(record)) => {
                    self.stats.records += 1;
                    let item = prepare_record(
                        record,
                        self.line_no,
                        &self.ctx.registry,
                        &self.ctx.config,
                        &self.ctx.solutions,
                        &mut self.stats,
                    );
                    wave.push(self.push_slot(item));
                }
                Err(message) => {
                    self.stats.records += 1;
                    self.slots.push_back(Slot {
                        line: self.line_no,
                        id: None,
                        state: SlotState::Ready(Box::new(Answer::Bad(message))),
                    });
                    self.next_seq += 1;
                    wave.push(self.next_seq - 1);
                    if self.ctx.config.error_policy == ErrorPolicy::FailFast {
                        // no point parsing past the abort point; records
                        // before it still stream
                        break;
                    }
                }
            }
        }
        if wave.is_empty() {
            return false;
        }
        // the wave's feature-cache accounting, counted at parse time the
        // way the blocking engine's batched detection pass counts it: a
        // shared-cache hit per already-known instance, one miss per
        // distinct fresh instance, hits for duplicates within the wave
        let mut fresh: Vec<busytime_core::memo::CanonicalInstance> = Vec::new();
        for &seq in &wave {
            let slot = &mut self.slots[seq - self.base_seq];
            let SlotState::Queued(item) = &mut slot.state else {
                continue;
            };
            if item.hit.is_some() {
                continue;
            }
            if let Some(features) = self.ctx.cache.lookup(&item.canon) {
                self.stats.cache_hits += 1;
                item.features = Some(features);
            } else if fresh.contains(&item.canon) {
                self.stats.cache_hits += 1; // repeated within this wave
            } else {
                fresh.push(item.canon.clone());
            }
        }
        self.stats.cache_misses += fresh.len();
        true
    }

    /// Appends a slot for a prepared record: cache hits are `Ready` at
    /// once (they never reach the executor), solves join the dispatch
    /// queue. Returns the slot's seq.
    fn push_slot(&mut self, mut item: SolveItem) -> usize {
        let seq = self.next_seq;
        self.next_seq += 1;
        let line = item.line;
        let id = item.record.id.clone();
        let state = match item.hit.take() {
            Some(report) => SlotState::Ready(Box::new(Answer::Hit(report))),
            None => {
                self.queue.push_back(seq);
                SlotState::Queued(Box::new(item))
            }
        };
        self.slots.push_back(Slot { line, id, state });
        seq
    }

    /// Spawns queued records onto the executor up to the session's width
    /// cap — the event-driven analogue of the blocking engine's
    /// `par_map_deadline_under(width, ..)` fairness: one session cannot
    /// occupy more than its share of workers no matter how many records
    /// it has parsed.
    fn dispatch_some(&mut self) -> bool {
        let mut any = false;
        while self.inflight < self.width {
            let Some(seq) = self.queue.pop_front() else {
                break;
            };
            let slot = &mut self.slots[seq - self.base_seq];
            let state = std::mem::replace(&mut slot.state, SlotState::InFlight);
            let SlotState::Queued(item) = state else {
                unreachable!("queued seqs hold Queued slots");
            };
            self.inflight += 1;
            any = true;
            let ctx = Arc::clone(&self.ctx);
            let inbox = Arc::clone(&self.inbox);
            let notify = Arc::clone(&self.notify);
            let executor = ctx.executor.clone();
            executor.spawn(move || {
                let mut item = item;
                // feature detection runs worker-side, before the record's
                // budget is armed — detection time is charged to the
                // batch, never to the record, exactly as the blocking
                // engine's separate detection pass does. The shared cache
                // still deduplicates across records and connections.
                if item.features.is_none() {
                    item.features = Some(match ctx.cache.lookup(&item.canon) {
                        Some(features) => features,
                        None => {
                            let features = InstanceFeatures::detect(&item.inst);
                            ctx.cache.insert(item.canon.clone(), features.clone());
                            features
                        }
                    });
                }
                // arm the record's budget at pickup (a child of the
                // session token, so a shutdown drain cuts it too)
                let token = match item.budget {
                    Some(budget) => ctx.cancel.child_after(budget),
                    None => ctx.cancel.child(),
                };
                let solve_started = Instant::now();
                let result =
                    solve_prepared(&item, &ctx.registry, &ctx.config, &ctx.solutions, &token);
                let elapsed = solve_started.elapsed();
                let outcome = DeadlineOutcome {
                    result,
                    elapsed,
                    // the dispatching clock is the enforcement of last
                    // resort for uncooperative solves, exactly like the
                    // deadline pool's own stamp
                    over_deadline: item.budget.is_some_and(|b| elapsed > b),
                };
                lock_ignoring_poison(&inbox).push(Completion { seq, outcome });
                notify();
            });
        }
        any
    }

    /// Emits the summary line once the input has ended (or the shutdown
    /// token fired) and every slot has drained.
    fn maybe_summarize(&mut self, out: &mut Vec<u8>) {
        if self.summary.is_some() || self.failed.is_some() {
            return;
        }
        let input_done = (self.eof && self.inbuf.is_empty()) || self.ctx.cancel.is_cancelled();
        if !input_done || !self.slots.is_empty() || !self.queue.is_empty() || self.inflight > 0 {
            return;
        }
        let summary = std::mem::take(&mut self.stats).summarize(self.started.elapsed(), self.width);
        out.extend_from_slice(summary.to_json_line().as_bytes());
        out.push(b'\n');
        self.summary = Some(summary);
    }
}
