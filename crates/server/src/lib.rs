#![warn(missing_docs)]

//! `busytime-server` — the batched NDJSON solve server over the solver
//! registry.
//!
//! The workspace's serving story: fleets of independent busy-time
//! instances (optical-network provisioning waves, VM-consolidation
//! tickers, experiment sweeps) arrive continuously and must be solved at
//! throughput, not one `SolveRequest` at a time. This crate turns the
//! unified pipeline of [`busytime_core::solve`] into a batch engine:
//!
//! * [`protocol`] — the NDJSON wire format: one `SolveRequest`-shaped
//!   record per input line (instance inline or by
//!   [`busytime_instances::GeneratorSpec`]), one response line per record,
//!   in input order, every line stamped with the stable `schema_version`.
//! * [`engine`] — [`engine::BatchSession`], the chunked parse → batched
//!   feature-detect → deadline-pool solve → in-order stream core over any
//!   `BufRead`/`Write` pair ([`engine::serve`] is the stdin-shaped
//!   wrapper): batched feature detection with a hash-keyed
//!   [`engine::SharedFeatureCache`] (shareable across sessions, with true
//!   LRU eviction), solve fan-out over the persistent process-wide
//!   [`busytime_core::pool::Executor`], and a [`engine::BatchSummary`]
//!   (throughput + solved/s, p50/p99 solve latency, aggregate gap, cache
//!   hits, deadline hits) once the batch drains.
//! * [`listener`] — the long-lived socket front-end: NDJSON over TCP or
//!   Unix-domain sockets plus a minimal HTTP/1.1 `POST /solve` +
//!   `GET /healthz` mode, one [`engine::BatchSession`] per connection, all
//!   of them multiplexed onto the *one* process-wide executor (so
//!   `--workers` bounds total solver parallelism no matter how many
//!   connections are live), the feature cache shared across connections,
//!   per-connection summary trailer lines, and graceful drain on
//!   shutdown/idle-timeout.
//! * [`http`] — the minimal HTTP/1.1 plumbing behind the listener's HTTP
//!   mode and health endpoint, including the client-side response reader
//!   and [`http::parse_healthz`] decoder that `busytime-router` uses to
//!   probe and score backend shards.
//!
//! The CLI front-ends are `busytime-cli serve` (stdin → stdout),
//! `busytime-cli batch FILE`, and `busytime-cli listen`
//! (`--tcp ADDR | --unix PATH | --http ADDR`):
//!
//! ```text
//! $ echo '{"instance": {"g": 2, "jobs": [[0, 4], [1, 5], [6, 9]]}}' \
//!     | busytime-cli serve --workers 4
//! {"schema_version": 1, "line": 1, "id": null, "ok": true, "report": {…}}
//! ```
//!
//! Library use mirrors that:
//!
//! ```
//! use busytime_core::solve::SolverRegistry;
//! use busytime_server::{serve, ServeConfig};
//!
//! let input = r#"{"id": "a", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#;
//! let mut out = Vec::new();
//! let registry = SolverRegistry::with_defaults();
//! let summary = serve(input.as_bytes(), &mut out, &registry, &ServeConfig::default()).unwrap();
//! assert_eq!(summary.solved, 1);
//! assert!(String::from_utf8(out).unwrap().contains("\"ok\": true"));
//! ```

pub mod engine;
pub mod http;
pub mod listener;
mod machine;
pub mod protocol;

pub use engine::{
    serve, BatchSession, BatchSummary, ErrorPolicy, ServeConfig, ServeError, SharedFeatureCache,
    DEFAULT_SOLUTION_CACHE,
};
pub use http::{parse_healthz, HealthSnapshot};
pub use listener::{ConnLog, ListenConfig, ListenMode, ListenReport, Listener};
pub use protocol::{
    parse_output_line, reline_output, BatchRecord, OutputLine, RecordInput, RelinedOutput,
    ReportSummary,
};
