//! Minimal HTTP/1.1 plumbing shared by the listener and the shard router.
//!
//! The listener's HTTP mode ([`crate::listener::ListenMode::Http`]) and the
//! router's health probes both speak the same deliberately small dialect:
//! `Content-Length` bodies, keep-alive, nothing else. This module holds the
//! server-side head/body helpers the listener always had, plus the
//! client-side response reader and the [`parse_healthz`] decoder the router
//! uses to score backends.

use std::io::{BufRead, Read, Write};

use busytime_core::cancel::CancelToken;
use busytime_instances::json::{self, JsonError, Value};

/// Upper bound on a request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on a `POST /solve` body.
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Upper bound on a client-read response body ([`read_http_response`]);
/// health bodies are tiny, so anything past this is a protocol error.
const MAX_CLIENT_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request head.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// The request method (`GET`, `POST`, ...).
    pub method: String,
    /// The request path (`/healthz`, `/solve`, ...).
    pub path: String,
    /// The declared `Content-Length`, when one was sent.
    pub content_length: Option<usize>,
    /// Whether the connection should be kept open after the response.
    pub keep_alive: bool,
}

/// Why a request head could not be served.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire were not a request this dialect accepts; the
    /// string is a human-readable reason suitable for a 400 body.
    Malformed(String),
    /// The transport failed underneath the parse.
    Io(std::io::Error),
}

/// Reads one request head (request line + headers). `Ok(None)` = the
/// client closed between requests, or the shutdown token fired while the
/// connection was idle.
pub fn read_http_head<R: BufRead>(
    reader: &mut R,
    shutdown: &CancelToken,
) -> Result<Option<HttpRequest>, HttpError> {
    let mut head = Vec::new();
    // hard-bound the whole head read: `read_until` only returns at a
    // delimiter or EOF, so without this `Take` a newline-free stream would
    // grow `head` without limit before the size check below could ever run
    let mut limited = reader.by_ref().take(MAX_HEAD_BYTES as u64 + 1);
    loop {
        match limited.read_until(b'\n', &mut head) {
            Ok(0) => {
                return if head.is_empty() {
                    Ok(None)
                } else if head.len() > MAX_HEAD_BYTES {
                    Err(HttpError::Malformed("request head too large".into()))
                } else {
                    Err(HttpError::Malformed("truncated request head".into()))
                };
            }
            Ok(_) => {
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
                if head.len()
                    == head
                        .iter()
                        .take_while(|&&b| b == b'\r' || b == b'\n')
                        .count()
                {
                    // tolerate leading blank lines between pipelined
                    // requests (RFC 9112 §2.2)
                    head.clear();
                    continue;
                }
                if head.len() > MAX_HEAD_BYTES {
                    return Err(HttpError::Malformed("request head too large".into()));
                }
                // single-line head ("GET /healthz HTTP/1.1\r\n") still
                // needs its terminating blank line; keep reading
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.is_cancelled() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
    parse_http_head(&head).map(Some)
}

/// Parses a complete request head (request line + headers) into an
/// [`HttpRequest`].
pub fn parse_http_head(head: &[u8]) -> Result<HttpRequest, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::Malformed("request head is not valid UTF-8".into()))?;
    let mut lines = text.lines().filter(|l| !l.is_empty());
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m, p, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "malformed request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol version {version:?}"
        )));
    }
    let mut content_length = None;
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close
    let mut keep_alive = version == "HTTP/1.1";
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = Some(
                value
                    .parse::<usize>()
                    .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?,
            );
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(HttpError::Malformed(
                "Transfer-Encoding is not supported; send a Content-Length body".into(),
            ));
        }
    }
    Ok(HttpRequest {
        method: method.to_string(),
        path: path.to_string(),
        content_length,
        keep_alive,
    })
}

/// Reads exactly `length` body bytes, polling the shutdown token across
/// read timeouts. `Ok(None)` = shutdown fired mid-body.
pub fn read_http_body<R: BufRead>(
    reader: &mut R,
    length: usize,
    shutdown: &CancelToken,
) -> std::io::Result<Option<Vec<u8>>> {
    // grow with the bytes that actually arrive — allocating the claimed
    // Content-Length up front would let a header alone (64 half-open
    // requests × 64 MiB claims) pin gigabytes without sending a byte
    let mut body = Vec::with_capacity(length.min(64 * 1024));
    let mut chunk = [0u8; 64 * 1024];
    while body.len() < length {
        let want = (length - body.len()).min(chunk.len());
        match reader.read(&mut chunk[..want]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!("body ended after {} of {length} bytes", body.len()),
                ));
            }
            Ok(n) => body.extend_from_slice(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.is_cancelled() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(body))
}

/// Writes one complete response (status line, the three headers this
/// dialect uses, body) and flushes.
pub fn write_http_response<W: Write>(
    writer: &mut W,
    status: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// One response as a client sees it: the status code plus the body bytes.
#[derive(Clone, Debug)]
pub struct HttpResponse {
    /// The numeric status code off the status line.
    pub status: u16,
    /// The body, complete per `Content-Length` (or read to EOF without one).
    pub body: Vec<u8>,
}

/// Reads one response off a connection this process opened (the router
/// probing a shard's `/healthz`): status line, headers, then the body per
/// `Content-Length` — or to EOF when the server sent none and closed.
/// Socket timeouts surface as errors; the caller's probe timeout is the
/// retry policy.
pub fn read_http_response<R: BufRead>(reader: &mut R) -> std::io::Result<HttpResponse> {
    let malformed = |reason: String| std::io::Error::new(std::io::ErrorKind::InvalidData, reason);
    let mut head = Vec::new();
    let mut limited = reader.by_ref().take(MAX_HEAD_BYTES as u64 + 1);
    loop {
        match limited.read_until(b'\n', &mut head) {
            Ok(0) => return Err(malformed("truncated response head".into())),
            Ok(_) => {
                if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
                    break;
                }
                if head.len() > MAX_HEAD_BYTES {
                    return Err(malformed("response head too large".into()));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let text = std::str::from_utf8(&head)
        .map_err(|_| malformed("response head is not valid UTF-8".into()))?;
    let mut lines = text.lines().filter(|l| !l.is_empty());
    let status_line = lines
        .next()
        .ok_or_else(|| malformed("empty response".into()))?;
    let status = status_line
        .strip_prefix("HTTP/1.")
        .and_then(|rest| rest.split_whitespace().nth(1))
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| malformed(format!("malformed status line: {status_line:?}")))?;
    let mut content_length = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse::<usize>().ok();
        }
    }
    let mut body = Vec::new();
    match content_length {
        Some(length) if length > MAX_CLIENT_BODY_BYTES => {
            return Err(malformed(format!("response body too large ({length} B)")));
        }
        Some(length) => {
            body.resize(length, 0);
            reader.read_exact(&mut body)?;
        }
        None => {
            reader
                .by_ref()
                .take(MAX_CLIENT_BODY_BYTES as u64)
                .read_to_end(&mut body)?;
        }
    }
    Ok(HttpResponse { status, body })
}

/// One shard's health, as reported by its `GET /healthz` body.
///
/// The `uptime_ms` and `shard_id` fields are additive (new in the router
/// PR); [`parse_healthz`] tolerates bodies from older listeners that lack
/// them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// The backend's process-wide worker budget.
    pub workers: usize,
    /// Workers busy solving right now.
    pub busy_workers: usize,
    /// Solve chunks queued behind the busy workers.
    pub queue_depth: usize,
    /// Live client connections on the backend.
    pub active_connections: usize,
    /// Milliseconds since the backend started listening.
    pub uptime_ms: u64,
    /// Sockets currently registered with the backend's I/O reactors
    /// (includes connections still flushing a rejection). Additive (new
    /// in the readiness-loop PR); `0` for older listeners.
    pub open_connections: usize,
    /// The backend's reactor thread count. Additive; `0` for older
    /// listeners.
    pub io_threads: usize,
    /// Bytes buffered in per-connection outboxes waiting for slow
    /// clients, summed across connections. Additive; `0` for older
    /// listeners.
    pub outbox_bytes: usize,
    /// The backend's `--shard-id`, when it was started with one.
    pub shard_id: Option<String>,
}

/// Decodes a `GET /healthz` body into a [`HealthSnapshot`].
pub fn parse_healthz(body: &str) -> Result<HealthSnapshot, JsonError> {
    let value = json::parse(body.trim())?;
    let count = |key: &str| -> Result<usize, JsonError> {
        match value.get(key) {
            None => Ok(0),
            Some(v) => v
                .as_i64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| JsonError(format!("healthz `{key}` is not a count"))),
        }
    };
    if value.get("status").is_none() {
        return Err(JsonError("not a healthz body: no `status` field".into()));
    }
    let shard_id = match value.get("shard_id") {
        None | Some(Value::Null) => None,
        Some(v) => Some(
            v.as_str()
                .ok_or_else(|| JsonError("healthz `shard_id` is not a string".into()))?
                .to_string(),
        ),
    };
    Ok(HealthSnapshot {
        workers: count("workers")?,
        busy_workers: count("busy_workers")?,
        queue_depth: count("queue_depth")?,
        active_connections: count("active_connections")?,
        uptime_ms: count("uptime_ms")? as u64,
        open_connections: count("open_connections")?,
        io_threads: count("io_threads")?,
        outbox_bytes: count("outbox_bytes")?,
        shard_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn head(text: &str) -> HttpRequest {
        parse_http_head(text.as_bytes()).ok().unwrap()
    }

    #[test]
    fn parses_request_heads() {
        let get = head("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(get.method, "GET");
        assert_eq!(get.path, "/healthz");
        assert!(get.keep_alive);
        assert_eq!(get.content_length, None);

        let post = head("POST /solve HTTP/1.1\r\nContent-Length: 42\r\nConnection: close\r\n\r\n");
        assert_eq!(post.method, "POST");
        assert_eq!(post.content_length, Some(42));
        assert!(!post.keep_alive);

        let old = head("GET /healthz HTTP/1.0\r\n\r\n");
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
    }

    #[test]
    fn rejects_malformed_heads() {
        for bad in [
            "GET\r\n\r\n",
            "GET /healthz SPDY/3\r\n\r\n",
            "POST /solve HTTP/1.1\r\nContent-Length: many\r\n\r\n",
            "POST /solve HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(
                parse_http_head(bad.as_bytes()).is_err(),
                "accepted: {bad:?}"
            );
        }
    }

    #[test]
    fn reads_responses_with_and_without_length() {
        let wire = b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
                     Content-Length: 5\r\nConnection: close\r\n\r\nhellotrailing";
        let mut reader = &wire[..];
        let response = read_http_response(&mut reader).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"hello");

        let wire = b"HTTP/1.1 503 Service Unavailable\r\n\r\nbusy";
        let mut reader = &wire[..];
        let response = read_http_response(&mut reader).unwrap();
        assert_eq!(response.status, 503);
        assert_eq!(response.body, b"busy");

        let mut reader = &b"not http at all\r\n\r\n"[..];
        assert!(read_http_response(&mut reader).is_err());
    }

    #[test]
    fn parses_healthz_bodies_old_and_new() {
        // a pre-router listener body: no uptime_ms / shard_id
        let old = parse_healthz(
            "{\"schema_version\": 1, \"status\": \"ok\", \"workers\": 4, \
             \"busy_workers\": 1, \"queue_depth\": 7, \"active_connections\": 2}",
        )
        .unwrap();
        assert_eq!(old.workers, 4);
        assert_eq!(old.busy_workers, 1);
        assert_eq!(old.queue_depth, 7);
        assert_eq!(old.active_connections, 2);
        assert_eq!(old.uptime_ms, 0);
        assert_eq!(old.shard_id, None);

        let new = parse_healthz(
            "{\"schema_version\": 1, \"status\": \"ok\", \"workers\": 2, \
             \"busy_workers\": 0, \"queue_depth\": 0, \"active_connections\": 0, \
             \"uptime_ms\": 1234, \"shard_id\": \"shard-1\"}",
        )
        .unwrap();
        assert_eq!(new.uptime_ms, 1234);
        assert_eq!(new.shard_id.as_deref(), Some("shard-1"));
        assert_eq!(new.open_connections, 0, "absent gauge defaults to 0");

        // a readiness-loop listener body: reactor gauges present
        let reactor = parse_healthz(
            "{\"schema_version\": 1, \"status\": \"ok\", \"workers\": 2, \
             \"busy_workers\": 0, \"queue_depth\": 0, \"active_connections\": 3, \
             \"uptime_ms\": 10, \"open_connections\": 5, \"io_threads\": 2, \
             \"outbox_bytes\": 4096, \"shard_id\": null}",
        )
        .unwrap();
        assert_eq!(reactor.open_connections, 5);
        assert_eq!(reactor.io_threads, 2);
        assert_eq!(reactor.outbox_bytes, 4096);

        assert!(parse_healthz("{\"workers\": 1}").is_err(), "no status");
        assert!(parse_healthz("nope").is_err());
    }
}
