//! Integration coverage of the socket front-end: concurrent NDJSON
//! connections with per-connection in-order responses, the HTTP mode, a
//! connection killed mid-batch, deadlines over the wire, capacity
//! rejection, executor saturation (the process-wide worker budget), and
//! graceful shutdown drain.

use std::borrow::Cow;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use busytime_core::algo::{FirstFit, Scheduler, SchedulerError};
use busytime_core::cancel::CancelToken;
use busytime_core::pool::Executor;
use busytime_core::solve::SolverRegistry;
use busytime_core::{Instance, Schedule};
use busytime_server::{
    parse_output_line, ConnLog, ListenConfig, ListenMode, ListenReport, Listener, OutputLine,
};

/// A listener running on a background thread, on an ephemeral port.
struct Server {
    addr: SocketAddr,
    shutdown: CancelToken,
    handle: std::thread::JoinHandle<std::io::Result<ListenReport>>,
}

fn quiet_config() -> ListenConfig {
    ListenConfig {
        log: ConnLog::Quiet,
        // quick poll so the tests' partial chunks flush promptly
        read_timeout: Duration::from_millis(30),
        ..ListenConfig::default()
    }
}

fn start(mode: fn(String) -> ListenMode, config: ListenConfig) -> Server {
    let mode = mode("127.0.0.1:0".to_string());
    let registry = Arc::new(SolverRegistry::with_defaults());
    let listener = Listener::bind(&mode, registry, config).unwrap();
    let addr = listener.local_addr().unwrap();
    let shutdown = listener.shutdown_token();
    let handle = std::thread::spawn(move || listener.run());
    Server {
        addr,
        shutdown,
        handle,
    }
}

/// [`start`] with a custom registry and a pinned executor — the harness
/// for the process-wide-budget tests.
fn start_on(executor: Executor, registry: SolverRegistry, config: ListenConfig) -> Server {
    let mode = ListenMode::Tcp("127.0.0.1:0".to_string());
    let listener = Listener::bind(&mode, Arc::new(registry), config)
        .unwrap()
        .executor(executor);
    let addr = listener.local_addr().unwrap();
    let shutdown = listener.shutdown_token();
    let handle = std::thread::spawn(move || listener.run());
    Server {
        addr,
        shutdown,
        handle,
    }
}

/// A solver that holds its worker for `hold` (polling its token, so a
/// drain cuts it early) while counting how many of itself run at once —
/// the probe for the process-wide worker budget.
struct Gate {
    live: Arc<AtomicUsize>,
    peak: Arc<AtomicUsize>,
    hold: Duration,
}

impl Scheduler for Gate {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Gate")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let now = self.live.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
        let started = Instant::now();
        while started.elapsed() < self.hold && !cancel.is_cancelled() {
            std::thread::sleep(Duration::from_millis(2));
        }
        self.live.fetch_sub(1, Ordering::SeqCst);
        FirstFit::paper().schedule_with(inst, &CancelToken::never())
    }
}

fn gate_registry(
    live: &Arc<AtomicUsize>,
    peak: &Arc<AtomicUsize>,
    hold: Duration,
) -> SolverRegistry {
    let mut registry = SolverRegistry::with_defaults();
    let live = Arc::clone(live);
    let peak = Arc::clone(peak);
    registry.register(
        "gate",
        "holds a worker, counting concurrency (test stub)",
        None,
        Box::new(move |_| {
            Box::new(Gate {
                live: live.clone(),
                peak: peak.clone(),
                hold,
            })
        }),
    );
    registry
}

fn gate_record(id: &str) -> String {
    format!(
        r#"{{"id": "{id}", "instance": {{"g": 2, "jobs": [[0, 4], [1, 5]]}}, "solver": "gate"}}"#
    )
}

impl Server {
    fn stop(self) -> ListenReport {
        self.shutdown.cancel();
        self.handle.join().unwrap().unwrap()
    }
}

/// One NDJSON client connection with blocking line reads (generous
/// timeout so a hung server fails the test instead of wedging it).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "connection closed before expected line");
        line.trim_end().to_string()
    }

    /// Half-close the write side; the server answers the batch, appends
    /// its summary line, and closes.
    fn finish(&mut self) {
        self.stream.shutdown(Shutdown::Write).unwrap();
    }

    fn read_to_end(&mut self) -> Vec<String> {
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest).unwrap();
        rest.lines().map(str::to_string).collect()
    }
}

fn record(id: &str) -> String {
    format!(r#"{{"id": "{id}", "instance": {{"g": 2, "jobs": [[0, 4], [1, 5]]}}}}"#)
}

fn assert_report_id(line: &str, want: &str) {
    match parse_output_line(line).unwrap() {
        OutputLine::Report { id, .. } => assert_eq!(id.as_deref(), Some(want), "{line}"),
        other => panic!("expected report line for {want}, got {other:?}"),
    }
}

#[test]
fn concurrent_connections_get_interleaved_in_order_service() {
    let server = start(ListenMode::Tcp, quiet_config());
    let mut a = Client::connect(server.addr);
    let mut b = Client::connect(server.addr);

    // both connections are live at once and get served without closing:
    // the sessions flush partial chunks on their read-timeout polls
    a.send(&record("a-1"));
    a.send(&record("a-2"));
    b.send(&record("b-1"));
    assert_report_id(&a.read_line(), "a-1");
    assert_report_id(&a.read_line(), "a-2");
    assert_report_id(&b.read_line(), "b-1");

    // interleave another round the other way
    b.send(&record("b-2"));
    a.send(&record("a-3"));
    assert_report_id(&b.read_line(), "b-2");
    assert_report_id(&a.read_line(), "a-3");

    // per-connection summary trailers count each connection's own batch
    a.finish();
    let a_rest = a.read_to_end();
    assert_eq!(a_rest.len(), 1, "exactly the summary after half-close");
    assert!(a_rest[0].contains("\"records\": 3"), "{}", a_rest[0]);
    b.finish();
    let b_rest = b.read_to_end();
    assert!(b_rest[0].contains("\"records\": 2"), "{}", b_rest[0]);

    let report = server.stop();
    assert_eq!(report.connections, 2);
    assert_eq!(report.records, 5);
    assert_eq!(report.solved, 5);
    assert_eq!(report.rejected, 0);
}

#[test]
fn responses_stay_in_input_order_within_a_connection() {
    let config = ListenConfig {
        serve: busytime_server::ServeConfig {
            workers: 4,
            ..busytime_server::ServeConfig::default()
        },
        ..quiet_config()
    };
    let server = start(ListenMode::Tcp, config);
    let mut client = Client::connect(server.addr);
    for i in 0..40 {
        client.send(&record(&format!("r-{i}")));
    }
    client.finish();
    let lines = client.read_to_end();
    assert_eq!(lines.len(), 41, "40 responses + summary");
    for (i, line) in lines[..40].iter().enumerate() {
        let parsed = parse_output_line(line).unwrap();
        assert_eq!(parsed.line(), i + 1, "{line}");
        assert_report_id(line, &format!("r-{i}"));
    }
    server.stop();
}

#[test]
fn http_solve_round_trip_and_healthz() {
    let server = start(ListenMode::Http, quiet_config());

    // POST /solve: NDJSON body in, response lines + summary out
    let body = format!("{}\n{}\n", record("h-1"), record("h-2"));
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        stream,
        "POST /solve HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, payload) = response.split_once("\r\n\r\n").unwrap();
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("application/x-ndjson"), "{head}");
    let lines: Vec<&str> = payload.lines().collect();
    assert_eq!(lines.len(), 3, "2 responses + summary: {payload}");
    assert_report_id(lines[0], "h-1");
    assert_report_id(lines[1], "h-2");
    assert!(lines[2].contains("\"records\": 2"), "{}", lines[2]);

    // GET /healthz answers a liveness probe
    let mut probe = TcpStream::connect(server.addr).unwrap();
    probe
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(
        probe,
        "GET /healthz HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut health = String::new();
    probe.read_to_string(&mut health).unwrap();
    assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
    assert!(health.contains("\"status\": \"ok\""), "{health}");
    // the probe reports solution-cache effectiveness: h-1 filled an entry,
    // the identical h-2 (same body) was a lookup
    assert!(
        health.contains("\"solution_cache\": {\"entries\": 1"),
        "{health}"
    );
    assert!(health.contains("\"warm_starts\": 0"), "{health}");

    // unknown paths answer 404 without wedging the server
    let mut lost = TcpStream::connect(server.addr).unwrap();
    lost.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    write!(lost, "GET /nope HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut missing = String::new();
    lost.read_to_string(&mut missing).unwrap();
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    let report = server.stop();
    assert_eq!(report.records, 2);
    assert_eq!(report.solved, 2);
}

#[test]
fn solution_cache_serves_repeats_across_connections() {
    let server = start(ListenMode::Tcp, quiet_config());

    // first connection: a fresh solve fills the shared solution cache
    let mut warm = Client::connect(server.addr);
    warm.send(&record("fill"));
    warm.finish();
    let lines = warm.read_to_end();
    assert!(lines[0].contains("\"cached\": false"), "{}", lines[0]);
    let trailer = lines.last().unwrap();
    assert!(trailer.contains("\"solution_cache_hits\": 0"), "{trailer}");
    assert!(
        trailer.contains("\"solution_cache_misses\": 1"),
        "{trailer}"
    );

    // second connection, same instance: answered from the cache
    let mut repeat = Client::connect(server.addr);
    repeat.send(&record("hit"));
    repeat.finish();
    let lines = repeat.read_to_end();
    assert!(lines[0].contains("\"cached\": true"), "{}", lines[0]);
    assert_report_id(&lines[0], "hit");
    let trailer = lines.last().unwrap();
    assert!(trailer.contains("\"solution_cache_hits\": 1"), "{trailer}");
    assert!(
        trailer.contains("\"solution_cache_misses\": 0"),
        "{trailer}"
    );

    // a record opting out still solves fresh on a warm cache
    let mut opt_out = Client::connect(server.addr);
    opt_out
        .send(r#"{"id": "off", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}, "cache": "off"}"#);
    opt_out.finish();
    let lines = opt_out.read_to_end();
    assert!(lines[0].contains("\"cached\": false"), "{}", lines[0]);

    server.stop();
}

#[test]
fn killed_connection_leaves_the_server_serving_others() {
    let server = start(ListenMode::Tcp, quiet_config());

    // the victim sends a record plus a partial line, then vanishes
    // without half-closing — the server must not let that take anything
    // else down
    {
        let mut victim = Client::connect(server.addr);
        victim.send(&record("doomed"));
        victim
            .stream
            .write_all(br#"{"id": "torn", "instance"#)
            .unwrap();
        victim.stream.flush().unwrap();
        // dropped here: full close, mid-batch
    }

    let mut survivor = Client::connect(server.addr);
    survivor.send(&record("alive"));
    assert_report_id(&survivor.read_line(), "alive");
    survivor.finish();
    let rest = survivor.read_to_end();
    assert!(rest[0].contains("\"records\": 1"), "{}", rest[0]);

    let report = server.stop();
    assert_eq!(report.connections, 2, "the killed connection still counts");
    assert!(report.solved >= 1);
}

#[test]
fn deadline_ms_is_honored_over_the_socket() {
    let server = start(ListenMode::Tcp, quiet_config());
    let mut client = Client::connect(server.addr);
    client
        .send(r#"{"id": "cut", "instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}, "deadline_ms": 0}"#);
    client.send(&record("free"));
    client.finish();
    let lines = client.read_to_end();
    assert_eq!(lines.len(), 3);
    assert!(lines[0].contains("\"deadline_hit\": true"), "{}", lines[0]);
    assert!(lines[1].contains("\"deadline_hit\": false"), "{}", lines[1]);
    assert!(lines[2].contains("\"deadline_hits\": 1"), "{}", lines[2]);

    let report = server.stop();
    assert_eq!(report.deadline_hits, 1);
}

#[test]
fn capacity_cap_rejects_politely() {
    let config = ListenConfig {
        max_conns: 1,
        ..quiet_config()
    };
    let server = start(ListenMode::Tcp, config);

    // occupy the single slot (a served record proves the slot is active)
    let mut holder = Client::connect(server.addr);
    holder.send(&record("held"));
    assert_report_id(&holder.read_line(), "held");

    // the second connection is answered with a structured error and closed
    let mut refused = Client::connect(server.addr);
    let line = refused.read_line();
    assert!(line.contains("\"ok\": false"), "{line}");
    assert!(line.contains("capacity"), "{line}");
    assert!(refused.read_to_end().is_empty());

    holder.finish();
    let rest = holder.read_to_end();
    assert!(rest[0].contains("\"records\": 1"), "{}", rest[0]);

    let report = server.stop();
    assert_eq!(report.connections, 1);
    assert_eq!(report.rejected, 1);
}

#[test]
fn shutdown_drains_an_inflight_connection() {
    let server = start(ListenMode::Tcp, quiet_config());
    let mut client = Client::connect(server.addr);
    client.send(&record("draining"));
    // the record is answered via the partial-chunk flush even though the
    // client never half-closes...
    assert_report_id(&client.read_line(), "draining");
    // ...and shutdown makes the open connection summarize and close
    server.shutdown.cancel();
    let rest = client.read_to_end();
    assert_eq!(rest.len(), 1, "summary then EOF: {rest:?}");
    assert!(rest[0].contains("\"records\": 1"), "{}", rest[0]);

    let report = server.handle.join().unwrap().unwrap();
    assert_eq!(report.connections, 1);
    assert_eq!(report.records, 1);
}

#[test]
fn pending_records_flush_even_with_a_partial_line_buffered() {
    // regression: a complete record followed by the *start* of the next
    // one in the same burst must not block the first record's response —
    // the partial line is carried while the pending chunk dispatches
    let server = start(ListenMode::Tcp, quiet_config());
    let mut client = Client::connect(server.addr);
    client
        .stream
        .write_all(format!("{}\n{{\"id\": \"torn", record("whole")).as_bytes())
        .unwrap();
    client.stream.flush().unwrap();
    assert_report_id(&client.read_line(), "whole");

    // ...and the carried fragment still completes into a served record
    client
        .stream
        .write_all(b"\", \"instance\": {\"g\": 2, \"jobs\": [[0, 3]]}}\n")
        .unwrap();
    client.stream.flush().unwrap();
    assert_report_id(&client.read_line(), "torn");
    client.finish();
    let rest = client.read_to_end();
    assert!(rest[0].contains("\"records\": 2"), "{}", rest[0]);
    server.stop();
}

#[test]
fn silent_connection_is_cut_by_the_conn_idle_timeout() {
    let config = ListenConfig {
        conn_idle_timeout: Some(Duration::from_millis(150)),
        ..quiet_config()
    };
    let server = start(ListenMode::Tcp, config);
    let mut mute = Client::connect(server.addr);
    // send nothing at all: the idle cut must treat this as end-of-batch,
    // summarize zero records and free the capacity slot
    let lines = mute.read_to_end();
    assert_eq!(lines.len(), 1, "empty summary then EOF: {lines:?}");
    assert!(lines[0].contains("\"records\": 0"), "{}", lines[0]);

    // the slot is free again: a real client still gets served
    let mut live = Client::connect(server.addr);
    live.send(&record("after"));
    assert_report_id(&live.read_line(), "after");
    live.finish();
    live.read_to_end();

    let report = server.stop();
    assert_eq!(report.connections, 2);
}

#[test]
fn http_keep_alive_survives_a_probe_with_a_body() {
    let server = start(ListenMode::Http, quiet_config());
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // a GET with a body is unusual but legal; the server must drain it so
    // the follow-up request on the same connection parses cleanly
    write!(
        stream,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nblobGET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut both = String::new();
    stream.read_to_string(&mut both).unwrap();
    let ok_count = both.matches("HTTP/1.1 200 OK").count();
    assert_eq!(
        ok_count, 2,
        "both keep-alive requests must answer 200: {both}"
    );
    server.stop();
}

#[test]
fn oversized_http_head_is_rejected_not_buffered() {
    let server = start(ListenMode::Http, quiet_config());
    let mut stream = TcpStream::connect(server.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    // a newline-free flood: the head cap must cut it off rather than
    // buffering the stream without bound
    let flood = vec![b'x'; 64 * 1024];
    // the server may close mid-send once the cap trips; that's the point
    let _ = stream.write_all(&flood);
    let _ = stream.flush();
    let mut response = String::new();
    let _ = stream.read_to_string(&mut response);
    assert!(
        response.starts_with("HTTP/1.1 400") && response.contains("too large"),
        "{response}"
    );
    server.stop();
}

#[test]
fn idle_timeout_stops_a_quiet_listener() {
    let config = ListenConfig {
        idle_timeout: Some(Duration::from_millis(120)),
        ..quiet_config()
    };
    let server = start(ListenMode::Tcp, config);
    // one served connection resets the idle clock; after it closes the
    // listener winds itself down without any shutdown signal
    let mut client = Client::connect(server.addr);
    client.send(&record("only"));
    client.finish();
    let lines = client.read_to_end();
    assert_eq!(lines.len(), 2);
    let report = server.handle.join().unwrap().unwrap();
    assert_eq!(report.connections, 1);
}

#[test]
fn executor_caps_process_wide_parallelism_across_connections() {
    // more connections than workers: a pinned 2-worker executor must
    // bound *total* live solver threads at 2 no matter how many
    // connections are in flight, while every connection still gets its
    // responses in input order
    let live = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let registry = gate_registry(&live, &peak, Duration::from_millis(40));
    let server = start_on(Executor::new(2), registry, quiet_config());

    let mut clients: Vec<Client> = (0..4).map(|_| Client::connect(server.addr)).collect();
    for (c, client) in clients.iter_mut().enumerate() {
        for r in 0..3 {
            client.send(&gate_record(&format!("c{c}-r{r}")));
        }
        client.finish();
    }
    for (c, client) in clients.iter_mut().enumerate() {
        let lines = client.read_to_end();
        assert_eq!(lines.len(), 4, "3 responses + summary: {lines:?}");
        for (r, line) in lines[..3].iter().enumerate() {
            assert_report_id(line, &format!("c{c}-r{r}"));
        }
        assert!(lines[3].contains("\"records\": 3"), "{}", lines[3]);
    }
    assert!(
        peak.load(Ordering::SeqCst) <= 2,
        "2-worker budget ran {} solves at once",
        peak.load(Ordering::SeqCst)
    );
    assert_eq!(live.load(Ordering::SeqCst), 0);

    let report = server.stop();
    assert_eq!(report.connections, 4);
    assert_eq!(report.records, 12);
    assert_eq!(report.solved, 12);
}

#[test]
fn shutdown_drain_cuts_records_still_queued_on_the_executor() {
    // a single worker and a batch of slow records: once the first solve
    // is on the worker, SIGINT-style shutdown must cut it cooperatively
    // and poison the tokens of the records still queued, so the whole
    // batch answers promptly (flagged) instead of waiting out every hold
    let live = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    // 2 s per record uncancelled — six of them would hold the drain for
    // 12 s; the cut must finish far inside that
    let registry = gate_registry(&live, &peak, Duration::from_secs(2));
    let server = start_on(Executor::new(1), registry, quiet_config());

    let mut client = Client::connect(server.addr);
    for r in 0..6 {
        client.send(&gate_record(&format!("q-{r}")));
    }
    let started = Instant::now();
    // wait until the first record is actually on the worker, then drain
    while live.load(Ordering::SeqCst) == 0 && started.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(live.load(Ordering::SeqCst) > 0, "no solve ever started");
    server.shutdown.cancel();

    let lines = client.read_to_end();
    let drained_in = started.elapsed();
    assert_eq!(lines.len(), 7, "6 responses + summary: {lines:?}");
    for (r, line) in lines[..6].iter().enumerate() {
        assert_report_id(line, &format!("q-{r}"));
        assert!(
            line.contains("\"deadline_hit\": true"),
            "record q-{r} must answer as cut: {line}"
        );
    }
    assert!(lines[6].contains("\"records\": 6"), "{}", lines[6]);
    assert!(
        drained_in < Duration::from_secs(8),
        "drain took {drained_in:?}; queued records were not cut"
    );

    let report = server.handle.join().unwrap().unwrap();
    assert_eq!(report.connections, 1);
    assert_eq!(report.records, 6);
}

#[cfg(unix)]
#[test]
fn unix_socket_round_trip_and_cleanup() {
    use std::os::unix::net::UnixStream;

    let path = std::env::temp_dir().join(format!(
        "busytime-listener-test-{}.sock",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let registry = Arc::new(SolverRegistry::with_defaults());
    let listener =
        Listener::bind(&ListenMode::Unix(path.clone()), registry, quiet_config()).unwrap();
    assert!(listener.local_addr().is_none());
    assert_eq!(listener.endpoint(), format!("unix://{}", path.display()));
    let shutdown = listener.shutdown_token();
    let handle = std::thread::spawn(move || listener.run());

    let mut stream = UnixStream::connect(&path).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream.write_all(record("ux").as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.shutdown(Shutdown::Write).unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let lines: Vec<&str> = response.lines().collect();
    assert_eq!(lines.len(), 2);
    assert_report_id(lines[0], "ux");
    assert!(lines[1].contains("\"records\": 1"), "{}", lines[1]);

    shutdown.cancel();
    let report = handle.join().unwrap().unwrap();
    assert_eq!(report.connections, 1);
    assert!(
        !path.exists(),
        "socket path must be removed on clean shutdown"
    );
}

/// Kernel-reported thread count of this test process.
#[cfg(target_os = "linux")]
fn os_thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .unwrap()
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

/// A connect flood far past `--max-conns` answers every extra connection
/// with a structured rejection without spawning a single thread: the
/// rejections are prefilled outboxes flushed by the reactors themselves.
#[cfg(target_os = "linux")]
#[test]
fn rejection_flood_spawns_no_threads() {
    let config = ListenConfig {
        max_conns: 4,
        ..quiet_config()
    };
    let server = start(ListenMode::Tcp, config);

    // fill the four slots (a served record proves each slot is active)
    let mut holders: Vec<Client> = (0..4).map(|_| Client::connect(server.addr)).collect();
    for (i, holder) in holders.iter_mut().enumerate() {
        holder.send(&record(&format!("hold-{i}")));
        assert_report_id(&holder.read_line(), &format!("hold-{i}"));
    }

    let before = os_thread_count();
    let flood: Vec<Client> = (0..100).map(|_| Client::connect(server.addr)).collect();
    // let the reactor accept and reject the whole flood, then sample the
    // thread count while all 100 rejections are (or were) in flight
    std::thread::sleep(Duration::from_millis(150));
    let during = os_thread_count();
    assert!(
        during <= before + 2,
        "rejections must not cost threads: {before} before the flood, {during} during \
         (thread-per-rejection would add dozens)"
    );

    for mut refused in flood {
        let line = refused.read_line();
        assert!(line.contains("\"ok\": false"), "{line}");
        assert!(line.contains("capacity"), "{line}");
        assert!(refused.read_to_end().is_empty(), "error line then EOF");
    }

    for holder in &mut holders {
        holder.finish();
        let rest = holder.read_to_end();
        assert!(rest[0].contains("\"records\": 1"), "{}", rest[0]);
    }
    let report = server.stop();
    assert_eq!(report.connections, 4);
    assert_eq!(report.rejected, 100);
}

/// Clamps a socket's kernel receive buffer (disabling autotuning, which
/// on loopback balloons into the tens of megabytes and would absorb any
/// realistic response volume before back-pressure could bite).
#[cfg(target_os = "linux")]
fn clamp_recv_buffer(stream: &std::net::TcpStream, bytes: i32) {
    use std::os::fd::AsRawFd;
    extern "C" {
        fn setsockopt(
            fd: i32,
            level: i32,
            name: i32,
            value: *const std::ffi::c_void,
            len: u32,
        ) -> i32;
    }
    const SOL_SOCKET: i32 = 1;
    const SO_RCVBUF: i32 = 8;
    let rc = unsafe {
        setsockopt(
            stream.as_raw_fd(),
            SOL_SOCKET,
            SO_RCVBUF,
            &bytes as *const i32 as *const std::ffi::c_void,
            std::mem::size_of::<i32>() as u32,
        )
    };
    assert_eq!(rc, 0, "setsockopt(SO_RCVBUF) failed");
}

/// A client that stops reading caps its per-connection outbox and gets
/// its socket reads suspended — without wedging the executor or any
/// other connection — and still receives every response, in order, once
/// it resumes.
#[cfg(target_os = "linux")]
#[test]
fn slow_reader_backpressure_suspends_reads_not_the_executor() {
    let config = ListenConfig {
        outbox_limit: 8 * 1024,
        ..quiet_config()
    };
    let server = start(ListenMode::Tcp, config);

    // pre-warm the shared solution cache with the one instance the flood
    // uses, so the flood's responses come at lookup speed, not solve speed
    let warm_record = r#"{"id": "warm", "generator": {"family": "uniform", "n": 2500, "g": 4, "seed": 7}, "solver": "first-fit"}"#;
    let mut warm = Client::connect(server.addr);
    warm.send(warm_record);
    assert_report_id(&warm.read_line(), "warm");
    warm.finish();
    warm.read_to_end();

    // tiny generator records with 2500-entry assignments: ~6 MB of
    // responses against a clamped ~16 KiB receive buffer (every record
    // is a solution-cache hit, so the responses pile up far faster than
    // the stalled client drains them)
    let mut slow = Client::connect(server.addr);
    clamp_recv_buffer(&slow.stream, 16 * 1024);
    for i in 0..720 {
        slow.send(&format!(
            r#"{{"id": "big-{i}", "generator": {{"family": "uniform", "n": 2500, "g": 4, "seed": 7}}, "solver": "first-fit"}}"#
        ));
    }
    slow.finish();
    // ...and deliberately read nothing yet

    // the stalled connection must not block the executor: fresh
    // connections keep getting solved end to end
    for i in 0..3 {
        let mut brisk = Client::connect(server.addr);
        brisk.send(&record(&format!("brisk-{i}")));
        assert_report_id(&brisk.read_line(), &format!("brisk-{i}"));
        brisk.finish();
        brisk.read_to_end();
    }

    // the healthz gauges see the parked bytes once the kernel buffers
    // fill (solve speed varies wildly across build profiles, so poll)
    let deadline = Instant::now() + Duration::from_secs(60);
    let snapshot = loop {
        let mut probe = Client::connect(server.addr);
        probe
            .stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        probe.reader.read_to_string(&mut response).unwrap();
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
        let snapshot = busytime_server::parse_healthz(body).unwrap();
        if snapshot.outbox_bytes > 0 || Instant::now() >= deadline {
            break snapshot;
        }
        std::thread::sleep(Duration::from_millis(100));
    };
    assert!(
        snapshot.outbox_bytes > 0,
        "responses must be parked in the outbox while the client stalls: {snapshot:?}"
    );
    assert!(snapshot.io_threads > 0, "{snapshot:?}");
    assert!(snapshot.open_connections > 0, "{snapshot:?}");

    // resume reading: all 720 responses arrive, in input order, then the
    // summary trailer — nothing was dropped under back-pressure
    let lines = slow.read_to_end();
    assert_eq!(lines.len(), 721, "720 responses + summary");
    for (i, line) in lines[..720].iter().enumerate() {
        assert_report_id(line, &format!("big-{i}"));
    }
    assert!(lines[720].contains("\"records\": 720"), "{}", lines[720]);

    let report = server.stop();
    assert_eq!(report.connections, 5);
    assert_eq!(report.records, 724);
    assert!(report.health_probes >= 1, "{report:?}");
}

/// The `/healthz` pool gauges come from one coherent executor snapshot:
/// no scrape may ever report more busy workers than the pool has, even
/// while solves grab and release workers under the probe — and the gauges
/// must actually move while solvers hold workers (a snapshot that always
/// reads zero would pass the clamp vacuously).
#[test]
fn healthz_pool_gauges_stay_clamped_under_load() {
    let live = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    let registry = gate_registry(&live, &peak, Duration::from_millis(400));
    let server = start_on(Executor::new(2), registry, quiet_config());

    let mut client = Client::connect(server.addr);
    for i in 0..6 {
        client.send(&gate_record(&format!("g-{i}")));
    }
    client.finish();

    let mut saw_busy = false;
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        let mut probe = Client::connect(server.addr);
        probe
            .stream
            .write_all(b"GET /healthz HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        probe.reader.read_to_string(&mut response).unwrap();
        let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
        let snapshot = busytime_server::parse_healthz(body).unwrap();
        assert_eq!(snapshot.workers, 2, "{snapshot:?}");
        assert!(
            snapshot.busy_workers <= snapshot.workers,
            "scrape reported more busy workers than exist: {snapshot:?}"
        );
        saw_busy |= snapshot.busy_workers > 0;
        if saw_busy && live.load(Ordering::SeqCst) == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(saw_busy, "no scrape caught the pool busy");

    let lines = client.read_to_end();
    assert_eq!(lines.len(), 7, "6 responses + summary");
    server.stop();
}
