//! Differential coverage for the zero-copy NDJSON fast path.
//!
//! The contract under test: [`BatchRecord::parse_fast`] may *decline* any
//! line (returning `None`), but whenever it produces a record, the owned
//! parser must produce an equal one — and [`BatchRecord::parse`], which
//! dispatches between the two, must agree with [`BatchRecord::parse_owned`]
//! on every input, errors included. An adversarial corpus pins the edge
//! cases; a property test sweeps randomized records end to end.

use busytime_server::protocol::{BatchRecord, RecordInput};
use proptest::prelude::*;

/// Every corpus line, hostile or benign: the dispatching parser and the
/// owned parser must return identical results (same record or same error).
#[test]
fn corpus_fast_and_owned_agree() {
    for line in CORPUS {
        let owned = BatchRecord::parse_owned(line);
        let dispatched = BatchRecord::parse(line);
        assert_eq!(dispatched, owned, "parse != parse_owned on: {line}");
        if let Some(fast) = BatchRecord::parse_fast(line) {
            assert_eq!(
                Ok(fast),
                owned,
                "fast path accepted a line the owned parser treats differently: {line}"
            );
        }
    }
}

/// The representative hot lines must actually take the fast path — a
/// regression that silently sends everything to the owned parser would
/// otherwise keep all tests green while losing the optimization.
#[test]
fn hot_lines_take_the_fast_path() {
    let hot = [
        r#"{"instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#,
        r#"{"id": "a", "instance": {"g": 2, "jobs": [[0, 4]]}, "solver": "auto"}"#,
        r#"{"id": "b", "instance": {"g": 3, "jobs": []}, "deadline_ms": 250, "cache": "off"}"#,
        r#"{"instance": {"g": 2, "jobs": [[0, 4]]}, "parallel": "on"}"#,
        r#"{"instance": {"g": 1, "jobs": [[-5, -1]]}, "seed": 7, "decompose": true,
           "validation": "strict", "max_jobs": 100, "client_tag": "meta"}"#,
    ];
    for line in hot {
        assert!(
            BatchRecord::parse_fast(line).is_some(),
            "expected the fast path to handle: {line}"
        );
    }
}

/// Lines the fast path must decline (they need owned-parser semantics),
/// while the dispatching parser still accepts them.
#[test]
fn escape_and_float_lines_fall_back_but_parse() {
    let fallback = [
        // escaped id decodes only in the owned parser
        r#"{"id": "a\nb", "instance": {"g": 2, "jobs": [[0, 4]]}}"#,
        // the key *decodes* to "id" — byte-level scanning cannot see
        // that, the owned parser must
        r#"{"i\u0064": "x", "instance": {"g": 2, "jobs": [[0, 4]]}}"#,
        // integral floats are valid integers to the owned parser
        r#"{"instance": {"g": 2.0, "jobs": [[0, 4]]}}"#,
        r#"{"instance": {"g": 2, "jobs": [[0.0, 4.0]]}}"#,
        r#"{"instance": {"g": 2, "jobs": [[0, 4]]}, "deadline_ms": 4.0}"#,
        // generator records always take the owned path
        r#"{"generator": {"family": "uniform", "n": 10, "seed": 1}}"#,
        // unknown object-valued metadata
        r#"{"instance": {"g": 2, "jobs": [[0, 4]]}, "meta": {"k": 1}}"#,
    ];
    for line in fallback {
        assert!(
            BatchRecord::parse_fast(line).is_none(),
            "fast path should decline: {line}"
        );
        assert!(
            BatchRecord::parse(line).is_ok(),
            "owned fallback should accept: {line}"
        );
    }
}

/// The adversarial corpus: escapes, unicode, duplicate keys, truncations,
/// overflow, nulls, huge and garbage lines.
const CORPUS: &[&str] = &[
    // benign shapes
    r#"{"instance": {"g": 2, "jobs": [[0, 4], [1, 5]]}}"#,
    r#"{"id": "x", "instance": {"g": 2, "jobs": [[0, 4]]}, "solver": "first-fit",
       "seed": 9, "decompose": false, "validation": "basic", "max_jobs": 10,
       "deadline_ms": 250, "cache": "readwrite"}"#,
    r#"  {  "instance" : { "jobs" : [ [ 0 , 4 ] ] , "g" : 2 } }  "#,
    r#"{"instance": {"g": 4294967295, "jobs": []}}"#,
    r#"{"id": null, "instance": {"g": 1, "jobs": [[0, 0]]}, "cache": null, "seed": null}"#,
    r#"{"instance": {"g": 1, "jobs": [[-9223372036854775808, 9223372036854775807]]}}"#,
    // escapes and unicode
    r#"{"id": "café \"quoted\" \\slash\\ \t", "instance": {"g": 2, "jobs": []}}"#,
    "{\"id\": \"caf\u{e9} → 日本語\", \"instance\": {\"g\": 2, \"jobs\": []}}",
    r#"{"id": "\u0041BC", "instance": {"g": 2, "jobs": [[0, 4]]}}"#,
    r#"{"id": "bad \u escape", "instance": {"g": 2, "jobs": []}}"#,
    r#"{"id": "\ud800", "instance": {"g": 2, "jobs": []}}"#,
    // unknown fields of every simple shape, plus object (owned-only)
    r#"{"instance": {"g": 2, "jobs": []}, "tag": "s", "n": 1, "x": 1.5, "b": true,
       "z": null, "arr": [1, [2, "three"], []], "obj": {"nested": [1]}}"#,
    // numbers at and past the edge
    r#"{"instance": {"g": 2, "jobs": []}, "seed": 18446744073709551615}"#,
    r#"{"instance": {"g": 2, "jobs": []}, "seed": 99999999999999999999}"#,
    r#"{"instance": {"g": 2, "jobs": []}, "seed": -1}"#,
    r#"{"instance": {"g": 2, "jobs": []}, "deadline_ms": 1e3}"#,
    r#"{"instance": {"g": 2, "jobs": [[0, 12-3]]}}"#,
    r#"{"instance": {"g": 0123, "jobs": []}}"#,
    // structural violations
    r#"{"id": "a"}"#,
    r#"{}"#,
    r#""just a string""#,
    r#"[1, 2]"#,
    r#"42"#,
    r#"{"instance": {"g": 2, "jobs": []}, "generator": {"family": "uniform"}}"#,
    r#"{"instance": {"g": 0, "jobs": []}}"#,
    r#"{"instance": {"g": -2, "jobs": []}}"#,
    r#"{"instance": {"g": 4294967296, "jobs": []}}"#,
    r#"{"instance": {"jobs": [[0, 4]]}}"#,
    r#"{"instance": {"g": 2, "jobs": [[4, 0]]}}"#,
    r#"{"instance": {"g": 2, "jobs": [[0]]}}"#,
    r#"{"instance": {"g": 2, "jobs": [[0, 1, 2]]}}"#,
    r#"{"instance": {"g": 2, "jobs": [0, 4]}}"#,
    r#"{"instance": {"g": 2, "jobs": "none"}}"#,
    r#"{"solver": null, "instance": {"g": 2, "jobs": []}}"#,
    r#"{"validation": "paranoid", "instance": {"g": 2, "jobs": []}}"#,
    r#"{"validation": null, "instance": {"g": 2, "jobs": []}}"#,
    r#"{"cache": "sometimes", "instance": {"g": 2, "jobs": []}}"#,
    r#"{"parallel": "auto", "instance": {"g": 2, "jobs": []}}"#,
    r#"{"parallel": null, "instance": {"g": 2, "jobs": []}}"#,
    r#"{"parallel": "sideways", "instance": {"g": 2, "jobs": []}}"#,
    r#"{"parallel": 2, "instance": {"g": 2, "jobs": []}}"#,
    r#"{"decompose": "yes", "instance": {"g": 2, "jobs": []}}"#,
    r#"{"decompose": 1, "instance": {"g": 2, "jobs": []}}"#,
    // duplicate keys at both levels
    r#"{"id": "a", "id": "b", "instance": {"g": 2, "jobs": []}}"#,
    r#"{"instance": {"g": 2, "g": 3, "jobs": []}}"#,
    r#"{"tag": 1, "tag": 2, "instance": {"g": 2, "jobs": []}}"#,
    // truncations
    r#"{"instance": {"g": 2, "jobs": [[0, 4]"#,
    r#"{"instance": {"g": 2, "jobs": [[0, "#,
    r#"{"id": "unterminated"#,
    r#"{"instance": {"g": 2, "jobs": []}"#,
    r#"{"instance""#,
    r#"{"#,
    r#""#,
    // trailing garbage
    r#"{"instance": {"g": 2, "jobs": []}} extra"#,
    r#"{"instance": {"g": 2, "jobs": []}}{"#,
    // not the protocol at all
    r#"not json"#,
    r#"null"#,
    r#"true"#,
];

/// A huge line (thousands of jobs) parses identically on both paths and
/// takes the fast one.
#[test]
fn huge_line_agrees_and_stays_fast() {
    let mut line = String::from(r#"{"id": "big", "instance": {"g": 7, "jobs": ["#);
    for i in 0..5000i64 {
        if i > 0 {
            line.push_str(", ");
        }
        line.push_str(&format!("[{}, {}]", i, i + 40));
    }
    line.push_str("]}}");
    let fast = BatchRecord::parse_fast(&line).expect("huge simple line stays on the fast path");
    let owned = BatchRecord::parse_owned(&line).expect("owned parser accepts");
    assert_eq!(fast, owned);
    match &fast.input {
        RecordInput::Inline(inst) => assert_eq!(inst.len(), 5000),
        other => panic!("expected inline instance, got {other:?}"),
    }
}

fn arb_id() -> impl Strategy<Value = Option<String>> {
    (0u32..4, proptest::collection::vec(0u32..96, 0..12)).prop_map(|(kind, chars)| {
        match kind {
            0 => None,
            // plain ASCII ids stay on the fast path; ids with quotes,
            // backslashes, control chars or unicode exercise the fallback
            _ => Some(
                chars
                    .into_iter()
                    .map(|c| char::from_u32(c + 0x20).unwrap_or('é'))
                    .collect(),
            ),
        }
    })
}

fn arb_jobs() -> impl Strategy<Value = Vec<(i64, i64)>> {
    proptest::collection::vec((-1_000i64..1_000, 0i64..100), 0..20)
        .prop_map(|pairs| pairs.into_iter().map(|(s, l)| (s, s + l)).collect())
}

proptest! {
    /// Round-trip: a record rendered to NDJSON (ids escaped through the
    /// writer) parses back to exactly the intended values, and the
    /// dispatching parser always matches the owned one.
    #[test]
    fn randomized_records_round_trip(
        id in arb_id(),
        g in 1u32..10,
        jobs in arb_jobs(),
        seed in (0u32..2, 0u64..1_000_000).prop_map(|(on, v)| (on == 1).then_some(v)),
        deadline in (0u32..2, 0u64..100_000).prop_map(|(on, v)| (on == 1).then_some(v)),
    ) {
        let mut line = String::from("{");
        if let Some(id) = &id {
            line.push_str("\"id\": ");
            busytime_instances::json::write_string(&mut line, id);
            line.push_str(", ");
        }
        line.push_str(&format!("\"instance\": {{\"g\": {g}, \"jobs\": ["));
        for (i, (s, c)) in jobs.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            line.push_str(&format!("[{s}, {c}]"));
        }
        line.push_str("]}");
        if let Some(seed) = seed {
            line.push_str(&format!(", \"seed\": {seed}"));
        }
        if let Some(ms) = deadline {
            line.push_str(&format!(", \"deadline_ms\": {ms}"));
        }
        line.push('}');

        let record = BatchRecord::parse(&line).expect("rendered record parses");
        let owned = BatchRecord::parse_owned(&line);
        prop_assert_eq!(Ok(&record), owned.as_ref());
        if let Some(fast) = BatchRecord::parse_fast(&line) {
            prop_assert_eq!(&fast, &record);
        }
        prop_assert_eq!(&record.id, &id);
        prop_assert_eq!(record.seed, seed);
        prop_assert_eq!(record.deadline_ms, deadline);
        let inst = record.instance();
        prop_assert_eq!(inst.g(), g);
        let parsed_jobs: Vec<(i64, i64)> =
            inst.jobs().iter().map(|iv| (iv.start, iv.end)).collect();
        prop_assert_eq!(parsed_jobs, jobs);
    }
}
