//! NDJSON protocol coverage: golden round-trips, malformed-line error
//! records, input-order preservation under a wide worker pool, and the
//! empty-batch edge case.

use busytime_core::pool::Executor;
use busytime_core::solve::SolverRegistry;
use busytime_instances::json;
use busytime_server::{
    parse_output_line, serve, BatchSession, BatchSummary, ErrorPolicy, OutputLine, ServeConfig,
};

fn run(input: &str, config: &ServeConfig) -> (Vec<String>, BatchSummary) {
    let registry = SolverRegistry::with_defaults();
    let mut out = Vec::new();
    let summary = serve(input.as_bytes(), &mut out, &registry, config).unwrap();
    let text = String::from_utf8(out).unwrap();
    (text.lines().map(str::to_string).collect(), summary)
}

fn run_on(executor: Executor, input: &str, config: &ServeConfig) -> (Vec<String>, BatchSummary) {
    let registry = SolverRegistry::with_defaults();
    let mut out = Vec::new();
    let summary = BatchSession::new(&registry, config)
        .executor(executor)
        .run(input.as_bytes(), &mut out)
        .unwrap();
    let text = String::from_utf8(out).unwrap();
    (text.lines().map(str::to_string).collect(), summary)
}

/// Golden round-trip: a fixed request line must keep producing a report
/// line with these exact solved values (the instance and solver are
/// deterministic). If the protocol gains fields this test still passes —
/// the parser ignores unknown fields by design.
#[test]
fn golden_request_to_report_round_trip() {
    // three jobs, g = 2: [0,4] and [1,5] share machine 0; the paper's
    // FirstFit opens machine 1 for the disjoint [6,9]. Busy time is
    // 5 + 3 = 8 either way.
    let request = r#"{"id": "golden-1", "instance": {"g": 2, "jobs": [[0, 4], [1, 5], [6, 9]]}, "solver": "first-fit"}"#;
    let (lines, summary) = run(&format!("{request}\n"), &ServeConfig::default());
    assert_eq!(lines.len(), 1);
    assert_eq!(summary.solved, 1);

    // the line is strict JSON and parses through the tolerant reader
    json::parse(&lines[0]).expect("response line is valid JSON");
    match parse_output_line(&lines[0]).unwrap() {
        OutputLine::Report { line, id, report } => {
            assert_eq!(line, 1);
            assert_eq!(id.as_deref(), Some("golden-1"));
            assert!(report.solver.starts_with("FirstFit"));
            assert_eq!(report.cost, 8);
            assert_eq!(report.machines, 2);
            assert_eq!(report.assignment, vec![0, 0, 1]);
            assert!(report.gap >= 1.0);
        }
        other => panic!("expected a report line, got {other:?}"),
    }

    // golden line recorded under schema_version 1: stays parseable even
    // with fields this build has never heard of
    let recorded = r#"{"schema_version": 1, "line": 1, "id": "golden-1", "ok": true, "shard": 3, "report": {"schema_version": 1, "solver": "FirstFit[paper]", "cost": 8, "machines": 2, "lower_bound": 8, "gap": 1.0, "assignment": [0, 0, 1], "queue_ms": 0.2}}"#;
    match parse_output_line(recorded).unwrap() {
        OutputLine::Report { report, .. } => {
            assert_eq!(report.cost, 8);
            assert_eq!(report.assignment, vec![0, 0, 1]);
        }
        other => panic!("expected a report line, got {other:?}"),
    }
}

#[test]
fn malformed_line_yields_structured_error_record() {
    let input = concat!(
        r#"{"id": "ok-1", "instance": {"g": 2, "jobs": [[0, 3]]}}"#,
        "\n",
        "{this is not json\n",
        r#"{"instance": {"g": 2, "jobs": [[5, 2]]}}"#,
        "\n",
        r#"{"id": "ok-2", "instance": {"g": 2, "jobs": [[0, 3]]}}"#,
        "\n",
    );
    let (lines, summary) = run(input, &ServeConfig::default());
    assert_eq!(lines.len(), 4, "one response line per input line");
    assert_eq!(summary.solved, 2);
    assert_eq!(summary.errors, 2);

    // every line (including errors) is machine-parseable and in order
    for (i, line) in lines.iter().enumerate() {
        let parsed = parse_output_line(line)
            .unwrap_or_else(|e| panic!("line {} unparseable: {e}\n{line}", i + 1));
        assert_eq!(parsed.line(), i + 1);
    }
    match parse_output_line(&lines[1]).unwrap() {
        OutputLine::Error { error, id, .. } => {
            assert!(id.is_none());
            assert!(error.starts_with("json:"), "unexpected cause: {error}");
        }
        other => panic!("expected an error line, got {other:?}"),
    }
    match parse_output_line(&lines[2]).unwrap() {
        OutputLine::Error { error, .. } => {
            assert!(error.contains("start after end"), "{error}");
        }
        other => panic!("expected an error line, got {other:?}"),
    }
}

#[test]
fn input_order_is_preserved_under_eight_workers() {
    // 200 distinct instances with wildly skewed solve costs (size ramps
    // up), several parse errors sprinkled in, chunk size forced small so
    // the batch spans many dispatch waves
    let mut input = String::new();
    for i in 0..200 {
        if i % 41 == 7 {
            input.push_str("broken line\n");
        } else {
            let n = 5 + (i % 37) * 4;
            input.push_str(&format!(
                "{{\"id\": \"rec-{i}\", \"generator\": {{\"family\": \"uniform\", \"n\": {n}, \"seed\": {i}}}}}\n"
            ));
        }
    }
    let config = ServeConfig {
        workers: 8,
        chunk_size: 16,
        ..ServeConfig::default()
    };
    // a pinned 8-worker executor: the width must not be clamped below 8
    // by whatever budget the host machine's global pool happens to have
    let executor = busytime_core::pool::Executor::new(8);
    let (lines, summary) = run_on(executor, &input, &config);
    assert_eq!(lines.len(), 200);
    assert_eq!(summary.records, 200);
    assert_eq!(summary.workers, 8);
    assert_eq!(summary.solved + summary.errors, 200);
    for (i, line) in lines.iter().enumerate() {
        let parsed = parse_output_line(line).unwrap();
        assert_eq!(parsed.line(), i + 1, "line {} out of order", i + 1);
        match parsed {
            OutputLine::Report { id, .. } => {
                assert_eq!(id.as_deref(), Some(format!("rec-{i}").as_str()));
            }
            OutputLine::Error { .. } => assert_eq!(i % 41, 7),
        }
    }
}

#[test]
fn worker_counts_agree_on_results() {
    // the same batch solved with 1 and 8 workers must stream identical
    // cost/assignment data (timings differ, summaries agree on totals)
    let mut input = String::new();
    for i in 0..40 {
        input.push_str(&format!(
            "{{\"generator\": {{\"family\": \"proper\", \"n\": 24, \"seed\": {i}}}}}\n"
        ));
    }
    let one = ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    };
    let eight = ServeConfig {
        workers: 8,
        ..ServeConfig::default()
    };
    let (lines1, summary1) = run(&input, &one);
    let (lines8, summary8) = run(&input, &eight);
    assert_eq!(summary1.total_cost, summary8.total_cost);
    assert_eq!(summary1.total_lower_bound, summary8.total_lower_bound);
    for (a, b) in lines1.iter().zip(&lines8) {
        let (pa, pb) = (parse_output_line(a).unwrap(), parse_output_line(b).unwrap());
        match (pa, pb) {
            (OutputLine::Report { report: ra, .. }, OutputLine::Report { report: rb, .. }) => {
                assert_eq!(ra.cost, rb.cost);
                assert_eq!(ra.assignment, rb.assignment);
            }
            other => panic!("mismatched line kinds: {other:?}"),
        }
    }
}

#[test]
fn empty_batch_streams_nothing_and_summarizes_zero() {
    for input in ["", "\n\n\n", "   \n\t\n"] {
        let (lines, summary) = run(input, &ServeConfig::default());
        assert!(lines.is_empty(), "streamed lines for empty batch");
        assert_eq!(summary.records, 0);
        assert_eq!(summary.solved, 0);
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.aggregate_gap, 1.0);
        assert_eq!(summary.p50_solve, std::time::Duration::ZERO);
        assert_eq!(summary.p99_solve, std::time::Duration::ZERO);
        // the summary line itself still renders
        assert!(summary.to_json_line().contains("\"records\": 0"));
    }
}

#[test]
fn fail_fast_reports_offending_line_and_id() {
    let input = concat!(
        r#"{"id": "fine", "instance": {"g": 2, "jobs": [[0, 3]]}}"#,
        "\n",
        r#"{"id": "doomed", "instance": {"g": 2, "jobs": [[0, 3]]}, "solver": "martian"}"#,
        "\n",
    );
    let registry = SolverRegistry::with_defaults();
    let mut out = Vec::new();
    let config = ServeConfig {
        error_policy: ErrorPolicy::FailFast,
        ..ServeConfig::default()
    };
    let err = serve(input.as_bytes(), &mut out, &registry, &config).unwrap_err();
    let message = err.to_string();
    assert!(message.contains("line 2"), "{message}");
    assert!(message.contains("doomed"), "{message}");
    assert!(message.contains("martian"), "{message}");
}

#[test]
fn deadline_ms_round_trips_through_the_wire() {
    // pre-deadline golden line (no deadline_hit field): parses as false
    let recorded = r#"{"schema_version": 1, "line": 1, "id": "old", "ok": true, "report": {"schema_version": 1, "solver": "FirstFit[paper]", "cost": 8, "machines": 2, "lower_bound": 8, "gap": 1.0, "assignment": [0, 0, 1]}}"#;
    match parse_output_line(recorded).unwrap() {
        OutputLine::Report { report, .. } => assert!(!report.deadline_hit),
        other => panic!("expected a report line, got {other:?}"),
    }

    // a live record cut by `deadline_ms: 0` round-trips flagged, with a
    // full incumbent assignment, and the summary counts the hit
    let input = concat!(
        r#"{"id": "cut", "instance": {"g": 2, "jobs": [[0, 4], [1, 5], [6, 9]]}, "deadline_ms": 0}"#,
        "\n",
    );
    let (lines, summary) = run(input, &ServeConfig::default());
    assert_eq!(summary.deadline_hits, 1);
    match parse_output_line(&lines[0]).unwrap() {
        OutputLine::Report { report, id, .. } => {
            assert_eq!(id.as_deref(), Some("cut"));
            assert!(report.deadline_hit);
            assert_eq!(report.assignment.len(), 3);
            assert!(report.cost >= report.lower_bound);
        }
        other => panic!("expected a report line, got {other:?}"),
    }
    assert!(summary.to_json_line().contains("\"deadline_hits\": 1"));
}
