//! ASCII rendering of schedules (Gantt charts) and summary statistics.
//!
//! Rendering is for humans debugging schedules and for the examples; the
//! statistics feed experiment tables.

use crate::instance::Instance;
use crate::schedule::Schedule;

/// Summary statistics of a schedule.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScheduleStats {
    /// Total busy time (the objective).
    pub cost: i64,
    /// Number of machines.
    pub machines: usize,
    /// Capacity utilization: `len(J) / (g · cost)` ∈ (0, 1]. 1.0 means every
    /// busy machine-second runs `g` jobs — the parallelism bound is tight.
    pub utilization: f64,
    /// `cost / best_lower_bound` — an upper bound on the true approximation
    /// ratio of this schedule.
    pub ratio_to_bound: f64,
}

/// Computes summary statistics for a feasible schedule.
pub fn stats(inst: &Instance, sched: &Schedule) -> ScheduleStats {
    let cost = sched.cost(inst);
    let lb = crate::bounds::best_lower_bound(inst);
    ScheduleStats {
        cost,
        machines: sched.machine_count(),
        utilization: if cost == 0 {
            1.0
        } else {
            inst.total_len() as f64 / (f64::from(inst.g()) * cost as f64)
        },
        ratio_to_bound: if lb == 0 {
            1.0
        } else {
            cost as f64 / lb as f64
        },
    }
}

/// Renders the schedule as an ASCII Gantt chart, one row per machine,
/// `width` characters across the instance's hull. Busy cells show the
/// number of concurrently running jobs (`1`–`9`, `+` for ≥ 10); idle time
/// inside a machine's hull is `·`, outside `space`.
///
/// Intended for small/medium instances; rows are capped at `max_machines`
/// (a trailing line reports elision).
pub fn gantt(inst: &Instance, sched: &Schedule, width: usize, max_machines: usize) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let Some(hull) = busytime_interval::hull(inst.jobs()) else {
        return String::from("(empty instance)\n");
    };
    let width = width.max(10);
    let span = (hull.len().max(1)) as f64;
    let col_of = |t: i64| -> usize {
        (((t - hull.start) as f64 / span) * (width as f64 - 1.0)).round() as usize
    };
    let _ = writeln!(
        out,
        "time {}..{} ({} ticks), g = {}, cost = {}",
        hull.start,
        hull.end,
        hull.len(),
        inst.g(),
        sched.cost(inst)
    );
    for (m, jobs) in sched.machine_jobs().iter().enumerate().take(max_machines) {
        let mut counts = vec![0u32; width];
        for &j in jobs {
            let iv = inst.job(j);
            for cell in counts
                .iter_mut()
                .take(col_of(iv.end) + 1)
                .skip(col_of(iv.start))
            {
                *cell += 1;
            }
        }
        let row: String = counts
            .iter()
            .map(|&c| match c {
                0 => '·',
                1..=9 => char::from_digit(c, 10).expect("single digit"),
                _ => '+',
            })
            .collect();
        let _ = writeln!(out, "M{m:<3} {row}");
    }
    if sched.machine_count() > max_machines {
        let _ = writeln!(
            out,
            "… {} more machines",
            sched.machine_count() - max_machines
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{FirstFit, Scheduler};

    fn example() -> (Instance, Schedule) {
        let inst = Instance::from_pairs([(0, 10), (0, 10), (12, 20), (5, 15)], 2);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        (inst, sched)
    }

    #[test]
    fn stats_are_consistent() {
        let (inst, sched) = example();
        let s = stats(&inst, &sched);
        assert_eq!(s.cost, sched.cost(&inst));
        assert_eq!(s.machines, sched.machine_count());
        assert!(s.utilization > 0.0 && s.utilization <= 1.0);
        assert!(s.ratio_to_bound >= 1.0);
    }

    #[test]
    fn perfect_utilization_at_full_packing() {
        // two identical jobs, g = 2, one machine: len = 2·10, cost = 10 → 1.0
        let inst = Instance::from_pairs([(0, 10), (0, 10)], 2);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        let s = stats(&inst, &sched);
        assert!((s.utilization - 1.0).abs() < 1e-12);
        assert!((s.ratio_to_bound - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gantt_renders_rows_per_machine() {
        let (inst, sched) = example();
        let chart = gantt(&inst, &sched, 40, 10);
        let rows: Vec<&str> = chart.lines().collect();
        assert!(rows[0].contains("cost ="));
        assert_eq!(rows.len(), 1 + sched.machine_count());
        // machine rows carry digits where busy
        assert!(rows[1].contains('1') || rows[1].contains('2'));
    }

    #[test]
    fn gantt_elides_excess_machines() {
        let inst = Instance::from_pairs([(0, 5); 12], 1);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        let chart = gantt(&inst, &sched, 20, 3);
        assert!(chart.contains("more machines"));
    }

    #[test]
    fn gantt_empty_instance() {
        let inst = Instance::new(vec![], 2);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        assert_eq!(gantt(&inst, &sched, 30, 5), "(empty instance)\n");
    }

    #[test]
    fn stats_empty_instance() {
        let inst = Instance::new(vec![], 2);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        let s = stats(&inst, &sched);
        assert_eq!(s.cost, 0);
        assert_eq!(s.machines, 0);
    }
}
