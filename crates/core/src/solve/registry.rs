//! Dynamic solver selection: string keys → boxed scheduler factories.
//!
//! Serving layers (CLI, experiment runner, a future batching front-end)
//! pick algorithms by *name and configuration*, not by compile-time type;
//! [`SolverRegistry`] is that indirection. The default registry carries
//! every paper algorithm and baseline from [`crate::algo`]; downstream
//! crates (e.g. `busytime-exact`) register additional solvers onto it, and
//! callers can register their own.

use std::borrow::Cow;
use std::collections::BTreeMap;

use crate::algo::{
    BestFit, BoundedLength, CliqueScheduler, FirstFit, GuessMatch, MinMachines, NextFitArrival,
    NextFitProper, RandomFit, Scheduler,
};
use crate::solve::{Auto, SolveOptions};

/// Builds a configured scheduler from request options. The built scheduler
/// is `Send + Sync` so the solve pipeline may share it across the
/// executor's workers (parallel component decomposition); every registered
/// solver is a stateless value, so the bound costs implementors nothing.
pub type SolverFactory =
    Box<dyn Fn(&SolveOptions) -> Box<dyn Scheduler + Send + Sync> + Send + Sync>;

/// One registered solver: key, human description, guarantee note and
/// factory.
pub struct SolverEntry {
    key: String,
    summary: &'static str,
    guarantee: Option<&'static str>,
    factory: SolverFactory,
}

impl SolverEntry {
    /// The canonical registry key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// One-line description.
    pub fn summary(&self) -> &'static str {
        self.summary
    }

    /// Approximation guarantee and the class it holds on, if any.
    pub fn guarantee(&self) -> Option<&'static str> {
        self.guarantee
    }

    /// Instantiates the solver for the given options.
    pub fn build(&self, options: &SolveOptions) -> Box<dyn Scheduler + Send + Sync> {
        (self.factory)(options)
    }
}

impl std::fmt::Debug for SolverEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolverEntry")
            .field("key", &self.key)
            .field("summary", &self.summary)
            .field("guarantee", &self.guarantee)
            .finish_non_exhaustive()
    }
}

/// A name-indexed collection of solver factories.
#[derive(Debug, Default)]
pub struct SolverRegistry {
    entries: BTreeMap<String, SolverEntry>,
    aliases: BTreeMap<String, String>,
}

impl SolverRegistry {
    /// An empty registry (no solvers).
    pub fn empty() -> Self {
        SolverRegistry::default()
    }

    /// The default registry: [`Auto`], every paper algorithm, and every
    /// baseline of [`crate::algo`]. Exhaustive solvers live in
    /// `busytime-exact`, which registers itself via its `register`
    /// function (this crate cannot depend on it).
    pub fn with_defaults() -> Self {
        let mut reg = SolverRegistry::empty();
        reg.register(
            "auto",
            "portfolio: detect structure, dispatch specialist, FirstFit safety net",
            Some("min(specialist, FirstFit); ≤ 4·OPT always"),
            Box::new(|_| Box::new(Auto::new())),
        );
        reg.register(
            "first-fit",
            "sort by length, first machine that fits (§2)",
            Some("≤ 4·OPT on general instances (Thm 2.1)"),
            Box::new(|_| Box::new(FirstFit::paper())),
        );
        reg.register(
            "first-fit-seeded",
            "FirstFit with seeded tie-breaking (uses the request seed)",
            Some("≤ 4·OPT on general instances (Thm 2.1)"),
            Box::new(|opts| Box::new(FirstFit::seeded(opts.seed))),
        );
        reg.register(
            "next-fit-proper",
            "greedy g-batching in start order (§3.1)",
            Some("≤ 2·OPT on proper families (Thm 3.1)"),
            Box::new(|_| Box::new(NextFitProper::new())),
        );
        reg.register(
            "bounded-length",
            "segment the line, b-match jobs to segments (§3.2)",
            Some("≤ (2+ε)·OPT for lengths in [1, d] (Thm 3.2)"),
            Box::new(|_| Box::new(BoundedLength::first_fit())),
        );
        reg.register(
            "clique",
            "δ-sorted g-chunking around a common point (Appendix)",
            Some("≤ 2·OPT on pairwise-overlapping families (Thm A.1)"),
            Box::new(|_| Box::new(CliqueScheduler::new())),
        );
        reg.register(
            "guess-match",
            "guess machine busy intervals, match jobs (size-guarded)",
            None,
            Box::new(|_| Box::new(GuessMatch::new())),
        );
        reg.register(
            "min-machines",
            "optimal machine count ⌈ω/g⌉ via interval coloring (§1.1 baseline)",
            None,
            Box::new(|_| Box::new(MinMachines)),
        );
        reg.register(
            "next-fit-arrival",
            "next-fit in arrival order (baseline)",
            None,
            Box::new(|_| Box::new(NextFitArrival)),
        );
        reg.register(
            "best-fit",
            "machine whose busy time grows least (baseline)",
            None,
            Box::new(|_| Box::new(BestFit)),
        );
        reg.register(
            "random-fit",
            "random feasible machine (uses the request seed; baseline)",
            None,
            Box::new(|opts| Box::new(RandomFit::new(opts.seed))),
        );
        // legacy CLI spellings
        reg.alias("firstfit", "first-fit");
        reg.alias("nextfit", "next-fit-proper");
        reg.alias("greedy", "next-fit-proper");
        reg.alias("arrival", "next-fit-arrival");
        reg.alias("bestfit", "best-fit");
        reg.alias("randomfit", "random-fit");
        reg.alias("minmachines", "min-machines");
        reg.alias("bounded", "bounded-length");
        reg
    }

    /// Registers (or replaces) a solver under `key`.
    pub fn register(
        &mut self,
        key: impl Into<String>,
        summary: &'static str,
        guarantee: Option<&'static str>,
        factory: SolverFactory,
    ) {
        let key = key.into();
        self.entries.insert(
            key.clone(),
            SolverEntry {
                key,
                summary,
                guarantee,
                factory,
            },
        );
    }

    /// Adds an alternative spelling for an existing key.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not registered (registration-time programmer
    /// error, not a runtime condition).
    pub fn alias(&mut self, alias: impl Into<String>, target: &str) {
        assert!(
            self.entries.contains_key(target),
            "alias target `{target}` is not registered"
        );
        self.aliases.insert(alias.into(), target.to_string());
    }

    /// Looks up a solver by canonical key or alias.
    pub fn get(&self, key: &str) -> Option<&SolverEntry> {
        self.entries
            .get(key)
            .or_else(|| self.aliases.get(key).and_then(|t| self.entries.get(t)))
    }

    /// True iff `key` resolves (canonically or via alias).
    pub fn contains(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Instantiates the solver registered under `key`.
    pub fn build(
        &self,
        key: &str,
        options: &SolveOptions,
    ) -> Result<Box<dyn Scheduler + Send + Sync>, super::SolveError> {
        match self.get(key) {
            Some(entry) => Ok(entry.build(options)),
            None => Err(super::SolveError::UnknownSolver {
                requested: key.to_string(),
                available: self.names().iter().map(|s| s.to_string()).collect(),
            }),
        }
    }

    /// All canonical keys, sorted (aliases excluded).
    pub fn names(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Iterates over all entries in key order.
    pub fn entries(&self) -> impl Iterator<Item = &SolverEntry> {
        self.entries.values()
    }

    /// A table of `key → summary [guarantee]` lines for CLI help output.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for entry in self.entries() {
            out.push_str(&format!("  {:<18} {}", entry.key(), entry.summary()));
            if let Some(g) = entry.guarantee() {
                out.push_str(&format!(" — {g}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Convenience: the name a scheduler reports, owned (for table rows and
/// serialized reports).
pub fn owned_name(s: &dyn Scheduler) -> String {
    match s.name() {
        Cow::Borrowed(b) => b.to_string(),
        Cow::Owned(o) => o,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;

    #[test]
    fn defaults_cover_paper_algorithms() {
        let reg = SolverRegistry::with_defaults();
        for key in [
            "auto",
            "first-fit",
            "next-fit-proper",
            "bounded-length",
            "clique",
        ] {
            assert!(reg.contains(key), "missing {key}");
        }
        assert!(reg.names().len() >= 10);
    }

    #[test]
    fn aliases_resolve_to_canonical_entries() {
        let reg = SolverRegistry::with_defaults();
        assert_eq!(reg.get("firstfit").unwrap().key(), "first-fit");
        assert_eq!(reg.get("bounded").unwrap().key(), "bounded-length");
        assert!(!reg.names().contains(&"firstfit")); // aliases not listed
    }

    #[test]
    fn every_entry_builds_and_schedules() {
        let reg = SolverRegistry::with_defaults();
        // a clique so even the class-restricted specialists accept it
        let inst = Instance::from_pairs([(0, 4), (1, 5), (2, 6)], 2);
        let opts = SolveOptions::default();
        for entry in reg.entries() {
            let solver = entry.build(&opts);
            let sched = solver
                .schedule(&inst)
                .unwrap_or_else(|e| panic!("{} failed: {e}", entry.key()));
            sched.validate(&inst).unwrap();
        }
    }

    #[test]
    fn unknown_key_lists_available() {
        let reg = SolverRegistry::with_defaults();
        let msg = match reg.build("no-such", &SolveOptions::default()) {
            Err(e) => e.to_string(),
            Ok(_) => panic!("expected UnknownSolver"),
        };
        assert!(msg.contains("no-such"));
        assert!(msg.contains("first-fit"));
    }

    #[test]
    fn seed_flows_into_seeded_factories() {
        let reg = SolverRegistry::with_defaults();
        let opts = SolveOptions {
            seed: 42,
            ..SolveOptions::default()
        };
        let solver = reg.build("random-fit", &opts).unwrap();
        assert_eq!(solver.name(), "RandomFit[seed42]");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn alias_to_missing_target_panics() {
        SolverRegistry::empty().alias("x", "missing");
    }

    #[test]
    fn custom_registration_overrides() {
        let mut reg = SolverRegistry::with_defaults();
        reg.register(
            "first-fit",
            "overridden",
            None,
            Box::new(|_| Box::new(crate::algo::BestFit)),
        );
        assert_eq!(reg.get("first-fit").unwrap().summary(), "overridden");
    }
}
