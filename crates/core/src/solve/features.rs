//! Structural feature detection for instances.
//!
//! The paper's algorithms are *structure-conditional*: their guarantees hold
//! on specific instance classes (proper families §3.1, bounded lengths
//! §3.2, cliques Appendix A). [`InstanceFeatures::detect`] measures every
//! class membership the portfolio cares about in one pass, so dispatch
//! logic ([`crate::solve::Auto`]) and reports ([`crate::solve::SolveReport`])
//! share a single, cheap (`O(n log n)`) detection step — one fused
//! [`FamilyScan`] sweep (a single `(start, end)` sort reused for every
//! aggregate) rather than a sort per predicate.

use busytime_interval::FamilyScan;

use crate::instance::Instance;

/// Structural facts about an instance, as detected by
/// [`InstanceFeatures::detect`].
#[derive(Clone, Debug, PartialEq)]
pub struct InstanceFeatures {
    /// Number of jobs `n`.
    pub jobs: usize,
    /// Parallelism parameter `g`.
    pub g: u32,
    /// No job properly contains another (§3.1's proper families).
    pub proper: bool,
    /// All jobs share a common time point (the Appendix's cliques).
    pub clique: bool,
    /// Number of connected components of the interval graph.
    pub components: usize,
    /// Clique number ω — the maximum number of simultaneously active jobs.
    pub max_overlap: usize,
    /// Minimum job length (0 for an empty instance; point jobs have
    /// length 0).
    pub min_len: i64,
    /// Maximum job length (0 for an empty instance).
    pub max_len: i64,
    /// `span(J)` — measure of the union of all jobs.
    pub span: i64,
    /// `len(J)` — summed job lengths.
    pub total_len: i64,
}

impl InstanceFeatures {
    /// Runs every detector on `inst` via one fused [`FamilyScan`] sweep.
    pub fn detect(inst: &Instance) -> Self {
        let scan = FamilyScan::scan(inst.jobs());
        InstanceFeatures {
            jobs: scan.len,
            g: inst.g(),
            proper: scan.proper,
            clique: scan.len > 0 && scan.clique,
            components: scan.components,
            max_overlap: scan.max_overlap,
            min_len: scan.min_len,
            max_len: scan.max_len,
            span: scan.span,
            total_len: scan.total_len,
        }
    }

    /// True iff the interval graph is connected (or empty).
    pub fn connected(&self) -> bool {
        self.components <= 1
    }

    /// The normalized length width `d = max_len / min_len`, the parameter
    /// of §3.2's Bounded_Length precondition "lengths in `[1, d]`"
    /// (after scaling the shortest length to 1).
    ///
    /// `None` when some job has length 0 (point jobs are outside the class)
    /// or the instance is empty.
    pub fn length_width(&self) -> Option<i64> {
        if self.jobs == 0 || self.min_len < 1 {
            None
        } else {
            Some(
                self.max_len.div_euclid(self.min_len)
                    + i64::from(self.max_len.rem_euclid(self.min_len) != 0),
            )
        }
    }

    /// `⌈ω/g⌉` — the optimal machine *count* (Section 1.1), a cheap hint
    /// for sizing machine pools.
    pub fn min_machines(&self) -> usize {
        if self.jobs == 0 {
            0
        } else {
            self.max_overlap.div_ceil(self.g as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_proper_family() {
        let inst = Instance::from_pairs([(0, 3), (1, 4), (2, 5)], 2);
        let f = InstanceFeatures::detect(&inst);
        assert!(f.proper);
        assert!(f.clique); // all share point 2
        assert!(f.connected());
        assert_eq!(f.max_overlap, 3);
        assert_eq!(f.length_width(), Some(1));
    }

    #[test]
    fn detects_clique_with_containment() {
        let inst = Instance::from_pairs([(0, 10), (4, 6)], 2);
        let f = InstanceFeatures::detect(&inst);
        assert!(f.clique);
        assert!(!f.proper); // [4,6] ⊂ [0,10]
        assert_eq!(f.length_width(), Some(5));
    }

    #[test]
    fn detects_disconnected_general_family() {
        let inst = Instance::from_pairs([(0, 2), (100, 109)], 3);
        let f = InstanceFeatures::detect(&inst);
        assert!(!f.clique);
        assert_eq!(f.components, 2);
        assert_eq!(f.min_len, 2);
        assert_eq!(f.max_len, 9);
        assert_eq!(f.length_width(), Some(5)); // ⌈9/2⌉
    }

    #[test]
    fn point_jobs_have_no_length_width() {
        let inst = Instance::from_pairs([(0, 0), (0, 5)], 2);
        assert_eq!(InstanceFeatures::detect(&inst).length_width(), None);
    }

    #[test]
    fn empty_instance() {
        let f = InstanceFeatures::detect(&Instance::new(vec![], 4));
        assert!(!f.clique);
        assert!(f.proper); // vacuously
        assert_eq!(f.length_width(), None);
        assert_eq!(f.min_machines(), 0);
    }

    #[test]
    fn min_machines_rounds_up() {
        let inst = Instance::from_pairs([(0, 4); 5], 2);
        assert_eq!(InstanceFeatures::detect(&inst).min_machines(), 3);
    }

    #[test]
    fn fused_scan_matches_per_predicate_detection() {
        // the fused sweep must agree with the single-purpose instance
        // predicates it replaced, field for field
        let cases = [
            Instance::from_pairs([(0, 3), (1, 4), (2, 5)], 2),
            Instance::from_pairs([(0, 10), (4, 6)], 2),
            Instance::from_pairs([(0, 2), (100, 109)], 3),
            Instance::from_pairs([(0, 0), (0, 5), (5, 5), (5, 9)], 1),
            Instance::from_pairs([(0, 1), (1, 2), (2, 3), (10, 11)], 4),
            Instance::new(vec![], 2),
        ];
        for inst in &cases {
            let f = InstanceFeatures::detect(inst);
            assert_eq!(f.proper, inst.is_proper());
            assert_eq!(f.clique, !inst.is_empty() && inst.is_clique());
            assert_eq!(f.components, inst.components().len());
            assert_eq!(f.max_overlap, inst.max_overlap());
            assert_eq!(f.min_len, inst.min_len());
            assert_eq!(f.max_len, inst.max_len());
            assert_eq!(f.span, inst.span());
            assert_eq!(f.total_len, inst.total_len());
        }
    }
}
