//! The unified solve pipeline: one stable entry point over every solver.
//!
//! The paper gives a *family* of algorithms whose guarantees depend on
//! instance structure; callers should not have to hand-pick concrete types
//! and rediscover that structure themselves. This module packages the whole
//! flow behind two types:
//!
//! * [`SolveRequest`] — a builder holding the instance, a solver selection
//!   (registry key, or a custom boxed [`Scheduler`]) and options:
//!   component decomposition, validation level, seed, size/time budgets,
//!   and a hard per-solve [`SolveRequest::deadline`] enforced inside
//!   solver loops through a [`crate::cancel::CancelToken`].
//! * [`SolveReport`] — the rich result: schedule, cost, the best lower
//!   bound of [`crate::bounds`], the approximation gap, detected
//!   [`InstanceFeatures`], wall-clock per-phase timings, and the resolved
//!   solver name; deadline-cut solves come back flagged
//!   [`SolveReport::deadline_hit`] with the phase they were cut in.
//!   Renders as text ([`std::fmt::Display`]) and JSON
//!   ([`SolveReport::to_json`]).
//!
//! Solvers are looked up in a [`SolverRegistry`] (string key → factory), so
//! serving layers select algorithms dynamically; [`Auto`] is the portfolio
//! entry that dispatches on detected structure. The bare [`Scheduler`]
//! trait remains the low-level extension point — anything implementing it
//! can be registered or passed directly.
//!
//! ```
//! use busytime_core::{Instance, solve::SolveRequest};
//!
//! let inst = Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 2);
//! let report = SolveRequest::new(&inst).solver("auto").solve().unwrap();
//! assert!(report.gap >= 1.0);
//! report.schedule.validate(&inst).unwrap();
//! ```

mod auto;
mod features;
mod registry;

pub use auto::{Auto, AutoChoice};
pub use features::InstanceFeatures;
pub use registry::{owned_name, SolverEntry, SolverFactory, SolverRegistry};

use std::time::{Duration, Instant};

use crate::algo::{Decomposed, Scheduler, SchedulerError};
use crate::bounds;
use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::memo::{CachePolicy, CanonicalInstance, SolutionCache, SolveFingerprint, WarmStart};
use crate::schedule::{Schedule, ScheduleViolation};

/// The near-match edit budget used when a [`SolutionCache`] warm-starts a
/// miss: cached entries whose job multiset differs by at most this many
/// insertions/deletions may seed the exact solver's incumbent.
pub const WARM_EDIT_BUDGET: usize = 2;

/// How much checking [`SolveRequest::solve`] performs on the produced
/// schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ValidationLevel {
    /// Trust the solver; no validation phase.
    Skip,
    /// Run [`Schedule::validate`] (feasibility, dense ids, capacity).
    #[default]
    Basic,
    /// [`ValidationLevel::Basic`] plus internal-consistency checks
    /// (cost is never below the certified lower bound).
    Strict,
}

/// Solver selection inside a [`SolveRequest`].
enum SolverChoice {
    /// Look up this key in the registry at solve time.
    Named(String),
    /// Use this caller-supplied scheduler directly.
    Custom(Box<dyn Scheduler + Send + Sync>),
}

/// When a solve forks one instance's work across the global executor
/// (parallel component decomposition, parallel sort/bound kernels).
///
/// Whatever the policy, results are identical: the fork–join layer is
/// deterministic (see [`crate::pool`]'s fork–join contract), so the policy
/// trades wall-clock time only. The pipeline records the resolved width in
/// the schedule phase's detail when a fork was active.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ParallelPolicy {
    /// Fork iff the instance has at least
    /// [`crate::pool::intra::JOB_THRESHOLD`] jobs *and* the global
    /// executor has at least two idle workers — so single large solves
    /// accelerate while solves already running inside a saturated batch
    /// (whose workers are busy by definition) stay sequential and do not
    /// thrash the budget.
    #[default]
    Auto,
    /// Always enter the intra-parallelism context at the executor's full
    /// width (still inert on a single-worker executor, and nested
    /// submissions from pool workers always degrade to inline execution).
    On,
    /// Never fork; every kernel runs sequentially.
    Off,
}

impl ParallelPolicy {
    /// Parses the wire/CLI spelling (`auto` | `on` | `off`).
    pub fn parse(raw: &str) -> Option<ParallelPolicy> {
        match raw {
            "auto" => Some(ParallelPolicy::Auto),
            "on" => Some(ParallelPolicy::On),
            "off" => Some(ParallelPolicy::Off),
            _ => None,
        }
    }

    /// The canonical spelling accepted by [`ParallelPolicy::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            ParallelPolicy::Auto => "auto",
            ParallelPolicy::On => "on",
            ParallelPolicy::Off => "off",
        }
    }
}

/// Options shared by every solver factory and the pipeline driver.
#[derive(Clone, Debug)]
pub struct SolveOptions {
    /// Solve connected components independently and merge (the paper's
    /// w.l.o.g. preprocessing, Section 1.4; lossless). Default `true`.
    pub decompose: bool,
    /// Post-solve checking. Default [`ValidationLevel::Basic`].
    pub validation: ValidationLevel,
    /// Seed consumed by randomized solvers (`random-fit`,
    /// `first-fit-seeded`). Default 0.
    pub seed: u64,
    /// Refuse instances with more jobs than this before scheduling.
    pub max_jobs: Option<usize>,
    /// Soft wall-clock budget: once it is exceeded, the post-schedule
    /// validation phase (including [`ValidationLevel::Strict`] consistency
    /// checks) is skipped and the report's `budget_exhausted` flag is set.
    /// The lower-bound phase still runs (the report's `gap` needs it), and
    /// solvers are not interrupted mid-run — for that, use `deadline`.
    pub time_budget: Option<Duration>,
    /// Hard per-solve deadline, enforced *inside* solver loops through a
    /// [`CancelToken`]: on expiry the solver stops at its next cooperative
    /// checkpoint and the report comes back flagged `deadline_hit` with the
    /// solver's incumbent schedule, or the solve fails with
    /// [`SchedulerError::Infeasible`] when the solver held no incumbent.
    pub deadline: Option<Duration>,
    /// A machine-grouping hint from a cached near-match solution,
    /// consumed by solvers that accept a starting incumbent (currently
    /// `exact-bb`); other solvers ignore it. Usually injected by the
    /// pipeline from an attached [`SolutionCache`] rather than set by
    /// hand.
    pub warm_start: Option<WarmStart>,
    /// Intra-instance parallelism policy (default
    /// [`ParallelPolicy::Auto`]). Deliberately excluded from the
    /// solution-cache fingerprint: the fork–join layer is deterministic,
    /// so parallel and sequential solves of one instance are
    /// interchangeable cache entries.
    pub parallel: ParallelPolicy,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            decompose: true,
            validation: ValidationLevel::Basic,
            seed: 0,
            max_jobs: None,
            time_budget: None,
            deadline: None,
            warm_start: None,
            parallel: ParallelPolicy::Auto,
        }
    }
}

/// Why a solve failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The requested solver key is not in the registry.
    UnknownSolver {
        /// The key that failed to resolve.
        requested: String,
        /// All canonical keys the registry offers.
        available: Vec<String>,
    },
    /// The solver itself refused or failed.
    Scheduler(SchedulerError),
    /// The produced schedule failed validation — a solver bug.
    Validation(ScheduleViolation),
    /// The instance exceeds the request's size budget.
    BudgetExceeded {
        /// Jobs in the instance.
        jobs: usize,
        /// The configured cap.
        max_jobs: usize,
    },
    /// Strict validation found a cost below the certified lower bound —
    /// an internal inconsistency in cost accounting or bounds.
    CostBelowBound {
        /// The (impossible) reported cost.
        cost: i64,
        /// The certified lower bound it undercuts.
        lower_bound: i64,
    },
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::UnknownSolver {
                requested,
                available,
            } => {
                write!(
                    f,
                    "unknown solver `{requested}`; available: {}",
                    available.join(", ")
                )
            }
            SolveError::Scheduler(e) => write!(f, "{e}"),
            SolveError::Validation(v) => write!(f, "invalid schedule produced: {v}"),
            SolveError::BudgetExceeded { jobs, max_jobs } => {
                write!(f, "instance has {jobs} jobs, over the budget of {max_jobs}")
            }
            SolveError::CostBelowBound { cost, lower_bound } => {
                write!(f, "cost {cost} below certified lower bound {lower_bound}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<SchedulerError> for SolveError {
    fn from(e: SchedulerError) -> Self {
        SolveError::Scheduler(e)
    }
}

/// One timed pipeline phase inside a [`SolveReport`].
#[derive(Clone, Debug)]
pub struct PhaseStat {
    /// Phase name (`detect`, `build`, `schedule`, `bound`, `validate`).
    pub name: &'static str,
    /// Wall-clock duration of the phase.
    pub duration: Duration,
    /// Human-readable detail (e.g. which specialist `auto` dispatched to).
    pub detail: String,
}

/// The result of a solve: schedule plus everything a serving layer or
/// experiment table needs, computed once.
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The solver selection as requested (registry key or custom name).
    pub requested: String,
    /// The resolved name of the scheduler that actually ran.
    pub solver: String,
    /// The portfolio decision for the instance *as a whole*, when the
    /// `auto` solver was requested (computed with [`Auto`]'s default
    /// cutoffs). With component decomposition on (the default), `Auto`
    /// re-decides per connected component, so individual components of a
    /// disconnected instance may dispatch differently; the build phase's
    /// detail notes when that can happen.
    pub auto_choice: Option<AutoChoice>,
    /// The produced schedule (validated per the request's
    /// [`ValidationLevel`]).
    pub schedule: Schedule,
    /// Total busy time of the schedule — the objective.
    pub cost: i64,
    /// Machines used.
    pub machines: usize,
    /// The strongest lower bound of [`bounds::best_lower_bound`].
    pub lower_bound: i64,
    /// `cost / lower_bound` — an upper bound on the true approximation
    /// ratio achieved. When the bound is 0 this is `1.0` only if the cost
    /// is also 0 (empty instances); a positive cost over a zero bound is
    /// [`f64::INFINITY`] (JSON `null`) rather than a false optimality
    /// claim.
    pub gap: f64,
    /// Detected structure of the instance.
    pub features: InstanceFeatures,
    /// Per-phase wall-clock stats, in execution order.
    pub phases: Vec<PhaseStat>,
    /// Total wall-clock time of the pipeline.
    pub total: Duration,
    /// True iff the time budget expired and post-schedule phases were
    /// skipped.
    pub budget_exhausted: bool,
    /// True iff the request's deadline (or an externally supplied
    /// [`CancelToken`]) expired before the pipeline finished: the schedule
    /// is the solver's incumbent — feasible but with no optimality or
    /// approximation certificate beyond its reported `gap`.
    pub deadline_hit: bool,
    /// The pipeline phase during which the deadline expiry was first
    /// observed (`Some` iff `deadline_hit`).
    pub cut_phase: Option<&'static str>,
    /// True iff this report was served from a [`SolutionCache`] rather
    /// than solved fresh (the assignment is remapped to the caller's job
    /// order; everything else is the original solve verbatim).
    pub cached: bool,
    /// True iff the solve started from a near-match warm-start hint
    /// ([`SolveOptions::warm_start`]) — set whenever a hint was attached,
    /// whether injected by an attached cache or supplied by the caller.
    pub warm_started: bool,
}

/// Version stamp emitted in every report JSON document (the
/// `schema_version` field). Consumers of recorded report lines should
/// accept unknown fields, so additive protocol evolution does not bump
/// this; only a breaking change (renamed/retyped field) does.
pub const REPORT_SCHEMA_VERSION: u32 = 1;

impl SolveReport {
    /// One line suitable for logs: solver, cost, machines, gap.
    pub fn summary(&self) -> String {
        format!(
            "{}: cost {} on {} machines | LB {} | gap ≤ {:.3} | {:.1} ms",
            self.solver,
            self.cost,
            self.machines,
            self.lower_bound,
            self.gap,
            self.total.as_secs_f64() * 1e3,
        )
    }

    /// Serializes the full report (sans assignment) plus the machine
    /// assignment as multi-line, human-diffable JSON. The document starts
    /// with a stable [`REPORT_SCHEMA_VERSION`] stamp; parsers should
    /// tolerate unknown fields so the format can grow additively.
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// Serializes the same document as [`SolveReport::to_json`] onto a
    /// single line (no embedded newlines, no trailing newline) — the shape
    /// the NDJSON serving protocol streams, one report per input line.
    pub fn to_json_line(&self) -> String {
        self.render_json(false)
    }

    fn render_json(&self, pretty: bool) -> String {
        fn esc(out: &mut String, s: &str) {
            out.push('"');
            for ch in s.chars() {
                match ch {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        let ms = |d: Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
        let sep = if pretty { ",\n  " } else { ", " };
        let mut out = String::from(if pretty { "{\n  " } else { "{" });
        out.push_str(&format!("\"schema_version\": {REPORT_SCHEMA_VERSION}"));
        out.push_str(sep);
        out.push_str("\"requested\": ");
        esc(&mut out, &self.requested);
        out.push_str(sep);
        out.push_str("\"solver\": ");
        esc(&mut out, &self.solver);
        out.push_str(sep);
        out.push_str("\"auto_choice\": ");
        match self.auto_choice {
            Some(c) => esc(&mut out, c.solver_key()),
            None => out.push_str("null"),
        }
        let gap = if self.gap.is_finite() {
            format!("{:.6}", self.gap)
        } else {
            // f64 infinities have no JSON literal; consumers parse null
            // back as infinity
            String::from("null")
        };
        out.push_str(&format!(
            "{sep}\"cost\": {}{sep}\"machines\": {}{sep}\"lower_bound\": {}{sep}\"gap\": {gap}",
            self.cost, self.machines, self.lower_bound
        ));
        let f = &self.features;
        out.push_str(&format!(
            "{sep}\"features\": {{\"jobs\": {}, \"g\": {}, \"proper\": {}, \"clique\": {}, \
             \"components\": {}, \"max_overlap\": {}, \"min_len\": {}, \"max_len\": {}, \
             \"span\": {}, \"total_len\": {}}}",
            f.jobs,
            f.g,
            f.proper,
            f.clique,
            f.components,
            f.max_overlap,
            f.min_len,
            f.max_len,
            f.span,
            f.total_len
        ));
        out.push_str(sep);
        out.push_str("\"phases\": [");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"ms\": {}, \"detail\": ",
                p.name,
                ms(p.duration)
            ));
            esc(&mut out, &p.detail);
            out.push('}');
        }
        out.push_str(&format!(
            "]{sep}\"total_ms\": {}{sep}\"budget_exhausted\": {}{sep}\"deadline_hit\": {}\
             {sep}\"cached\": {}{sep}\"warm_started\": {}",
            ms(self.total),
            self.budget_exhausted,
            self.deadline_hit,
            self.cached,
            self.warm_started
        ));
        out.push_str(sep);
        out.push_str("\"cut_phase\": ");
        match self.cut_phase {
            Some(phase) => esc(&mut out, phase),
            None => out.push_str("null"),
        }
        out.push_str(sep);
        out.push_str("\"assignment\": [");
        for (i, m) in self.schedule.assignment().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&m.to_string());
        }
        out.push_str(if pretty { "]\n}\n" } else { "]}" });
        out
    }
}

impl std::fmt::Display for SolveReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "solver:      {} (requested: {})",
            self.solver, self.requested
        )?;
        if let Some(choice) = self.auto_choice {
            if self.features.components > 1 {
                writeln!(
                    f,
                    "auto chose:  {choice} (whole-instance decision; components decided independently)"
                )?;
            } else {
                writeln!(f, "auto chose:  {choice}")?;
            }
        }
        writeln!(
            f,
            "cost:        {} on {} machines",
            self.cost, self.machines
        )?;
        writeln!(
            f,
            "lower bound: {}  (gap ≤ {:.3})",
            self.lower_bound, self.gap
        )?;
        writeln!(
            f,
            "features:    n={} g={} proper={} clique={} components={} ω={} lengths=[{},{}]",
            self.features.jobs,
            self.features.g,
            self.features.proper,
            self.features.clique,
            self.features.components,
            self.features.max_overlap,
            self.features.min_len,
            self.features.max_len
        )?;
        for p in &self.phases {
            writeln!(
                f,
                "phase {:<9} {:>9.3} ms  {}",
                p.name,
                p.duration.as_secs_f64() * 1e3,
                p.detail
            )?;
        }
        write!(f, "total:       {:.3} ms", self.total.as_secs_f64() * 1e3)?;
        if self.budget_exhausted {
            write!(f, "  (time budget exhausted)")?;
        }
        if let Some(phase) = self.cut_phase {
            write!(f, "  (deadline hit in {phase}; incumbent returned)")?;
        }
        if self.cached {
            write!(f, "  (served from solution cache)")?;
        }
        if self.warm_started {
            write!(f, "  (warm-started from a cached near match)")?;
        }
        Ok(())
    }
}

/// Builder for one solve: instance + solver selection + options.
///
/// See the [module docs](self) for the full picture; the quick path is
/// `SolveRequest::new(&inst).solve()`, which runs the `auto` portfolio
/// with default options against the default registry.
pub struct SolveRequest<'a> {
    inst: &'a Instance,
    choice: SolverChoice,
    options: SolveOptions,
    precomputed: Option<InstanceFeatures>,
    cancel: Option<CancelToken>,
    cache: Option<SolutionCache>,
    cache_policy: CachePolicy,
}

impl<'a> SolveRequest<'a> {
    /// A request for `inst` with the `auto` portfolio and default options.
    pub fn new(inst: &'a Instance) -> Self {
        SolveRequest {
            inst,
            choice: SolverChoice::Named("auto".to_string()),
            options: SolveOptions::default(),
            precomputed: None,
            cancel: None,
            cache: None,
            cache_policy: CachePolicy::default(),
        }
    }

    /// Selects a solver by registry key (canonical name or alias).
    pub fn solver(mut self, key: impl Into<String>) -> Self {
        self.choice = SolverChoice::Named(key.into());
        self
    }

    /// Uses a caller-supplied scheduler instead of a registry lookup (the
    /// low-level [`Scheduler`] extension point). `Send + Sync` because the
    /// pipeline may share the scheduler across executor workers when
    /// solving components in parallel; schedulers are stateless values, so
    /// the bound is free in practice.
    pub fn scheduler(mut self, scheduler: Box<dyn Scheduler + Send + Sync>) -> Self {
        self.choice = SolverChoice::Custom(scheduler);
        self
    }

    /// Sets the intra-instance parallelism policy (default
    /// [`ParallelPolicy::Auto`]).
    pub fn parallel(mut self, policy: ParallelPolicy) -> Self {
        self.options.parallel = policy;
        self
    }

    /// Toggles component decomposition (default on).
    pub fn decompose(mut self, on: bool) -> Self {
        self.options.decompose = on;
        self
    }

    /// Sets the validation level (default [`ValidationLevel::Basic`]).
    pub fn validation(mut self, level: ValidationLevel) -> Self {
        self.options.validation = level;
        self
    }

    /// Sets the seed for randomized solvers.
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.seed = seed;
        self
    }

    /// Refuses instances with more than `n` jobs.
    pub fn max_jobs(mut self, n: usize) -> Self {
        self.options.max_jobs = Some(n);
        self
    }

    /// Sets a soft wall-clock budget (post-schedule phases are skipped
    /// once exceeded; the report is flagged).
    pub fn time_budget(mut self, budget: Duration) -> Self {
        self.options.time_budget = Some(budget);
        self
    }

    /// Sets a hard per-solve deadline, enforced *inside* solver loops: the
    /// pipeline hands every solver a [`CancelToken`] expiring `deadline`
    /// from the start of the solve, solvers poll it at branch/DP-row/sweep
    /// granularity, and on expiry the report carries the solver's incumbent
    /// schedule flagged [`SolveReport::deadline_hit`] (with the phase it
    /// was cut in) — or the solve fails with
    /// [`SchedulerError::Infeasible`] when the solver held no incumbent.
    ///
    /// ```
    /// use busytime_core::{Instance, solve::SolveRequest};
    /// use std::time::Duration;
    ///
    /// let inst = Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 2);
    /// // an already-expired deadline still yields a feasible schedule —
    /// // the portfolio returns its cheapest incumbent and flags the report
    /// let report = SolveRequest::new(&inst)
    ///     .deadline(Duration::ZERO)
    ///     .solve()
    ///     .unwrap();
    /// assert!(report.deadline_hit);
    /// assert!(report.cut_phase.is_some());
    /// report.schedule.validate(&inst).unwrap();
    /// ```
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.options.deadline = Some(deadline);
        self
    }

    /// Attaches an externally owned [`CancelToken`] (e.g. a serving pool's
    /// per-record token). The solve observes it alongside any
    /// [`SolveRequest::deadline`]: whichever expires or is cancelled first
    /// cuts the solve.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Replaces all options at once.
    pub fn options(mut self, options: SolveOptions) -> Self {
        self.options = options;
        self
    }

    /// Attaches a shared [`SolutionCache`]: under the request's
    /// [`CachePolicy`] (default [`CachePolicy::ReadWrite`]) the solve is
    /// served from the cache when an equivalent solve — same canonical
    /// instance, solver, seed and decomposition — is stored, warm-started
    /// from a near match when the solver is exact, and inserted after a
    /// clean fresh solve.
    ///
    /// ```
    /// use busytime_core::{memo::SolutionCache, Instance, SolveRequest};
    ///
    /// let cache = SolutionCache::new(64);
    /// let inst = Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 2);
    /// let cold = SolveRequest::new(&inst)
    ///     .solution_cache(cache.clone())
    ///     .solve()
    ///     .unwrap();
    /// assert!(!cold.cached);
    /// // a permuted copy of the instance is the same canonical instance
    /// let permuted = Instance::from_pairs([(6, 9), (1, 5), (0, 4)], 2);
    /// let hit = SolveRequest::new(&permuted)
    ///     .solution_cache(cache)
    ///     .solve()
    ///     .unwrap();
    /// assert!(hit.cached);
    /// assert_eq!(hit.cost, cold.cost);
    /// hit.schedule.validate(&permuted).unwrap();
    /// ```
    pub fn solution_cache(mut self, cache: SolutionCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Sets how the attached [`SolutionCache`] participates in this solve
    /// (default [`CachePolicy::ReadWrite`]); without an attached cache the
    /// policy is inert.
    pub fn cache_policy(mut self, policy: CachePolicy) -> Self {
        self.cache_policy = policy;
        self
    }

    /// Supplies a machine-grouping warm-start hint directly (the
    /// cache-independent form of [`SolveOptions::warm_start`]).
    pub fn warm_start(mut self, warm: WarmStart) -> Self {
        self.options.warm_start = Some(warm);
        self
    }

    /// Supplies already-detected features for this instance, skipping the
    /// detect phase (its `PhaseStat` is recorded as `cached`). Serving
    /// layers solving many identical instances use this to pay detection
    /// once per distinct instance.
    ///
    /// The caller must have obtained `features` from
    /// [`InstanceFeatures::detect`] on an equal instance; stale features
    /// would mis-dispatch the `auto` portfolio.
    pub fn features(mut self, features: InstanceFeatures) -> Self {
        self.precomputed = Some(features);
        self
    }

    /// Runs against the default registry ([`SolverRegistry::with_defaults`]).
    pub fn solve(self) -> Result<SolveReport, SolveError> {
        let registry = SolverRegistry::with_defaults();
        self.solve_with(&registry)
    }

    /// Runs against a caller-provided registry (e.g. one extended with the
    /// exact solvers of `busytime-exact`).
    pub fn solve_with(self, registry: &SolverRegistry) -> Result<SolveReport, SolveError> {
        let SolveRequest {
            inst,
            choice,
            mut options,
            precomputed,
            cancel,
            cache,
            cache_policy,
        } = self;
        let started = Instant::now();
        let mut phases: Vec<PhaseStat> = Vec::new();

        if let Some(max) = options.max_jobs {
            if inst.len() > max {
                return Err(SolveError::BudgetExceeded {
                    jobs: inst.len(),
                    max_jobs: max,
                });
            }
        }

        // intra-instance parallelism: resolve the policy to a fork width
        // and hold the context open for the whole pipeline, so canonical
        // hashing, feature detection, scheduling and bounds all fork. Off
        // never touches the global executor (it may not exist yet).
        let intra_width = match options.parallel {
            ParallelPolicy::Off => 1,
            ParallelPolicy::On => crate::pool::Executor::global().workers(),
            ParallelPolicy::Auto => {
                if inst.len() >= crate::pool::intra::JOB_THRESHOLD {
                    crate::pool::Executor::global().idle_workers()
                } else {
                    1
                }
            }
        };
        let _intra = (intra_width >= 2)
            .then(|| crate::pool::intra::enter(&crate::pool::Executor::global(), intra_width));

        // solution-cache consult: an exact hit short-circuits the whole
        // pipeline; on a miss, a near match may still warm-start an exact
        // solver's incumbent
        let memo_key = match &cache {
            Some(_) if cache_policy != CachePolicy::Off => {
                let solver = match &choice {
                    SolverChoice::Named(key) => registry
                        .get(key)
                        .map(|e| e.key().to_string())
                        .unwrap_or_else(|| key.clone()),
                    SolverChoice::Custom(s) => owned_name(&**s),
                };
                Some((
                    CanonicalInstance::of(inst),
                    SolveFingerprint {
                        solver,
                        seed: options.seed,
                        decompose: options.decompose,
                    },
                ))
            }
            _ => None,
        };
        if let (Some(cache), Some((canon, fp))) = (&cache, &memo_key) {
            if cache_policy.read_enabled() {
                if let Some(report) = cache.lookup(canon, fp) {
                    return Ok(report);
                }
                if options.warm_start.is_none() && fp.solver.starts_with("exact") {
                    options.warm_start = cache.warm_hint(canon, WARM_EDIT_BUDGET);
                }
            }
        }

        // the cooperative token every solver loop polls: the caller's
        // token (if any), tightened by the request's own deadline
        let token = match (cancel, options.deadline) {
            (Some(outer), Some(deadline)) => outer.child_after(deadline),
            (Some(outer), None) => outer,
            (None, Some(deadline)) => CancelToken::after(deadline),
            (None, None) => CancelToken::never(),
        };
        // the first phase after which the token is observed expired — the
        // phase the solve was "cut in"
        let mut cut_phase: Option<&'static str> = None;

        // detect
        let t = Instant::now();
        let cached = precomputed.is_some();
        let features = match precomputed {
            Some(f) => f,
            None => InstanceFeatures::detect(inst),
        };
        phases.push(PhaseStat {
            name: "detect",
            duration: t.elapsed(),
            detail: format!(
                "{}proper={} clique={} components={} width={:?}",
                if cached { "cached; " } else { "" },
                features.proper,
                features.clique,
                features.components,
                features.length_width()
            ),
        });
        if cut_phase.is_none() && token.is_cancelled() {
            cut_phase = Some("detect");
        }

        // build
        let t = Instant::now();
        let (requested, base): (String, Box<dyn Scheduler + Send + Sync>) = match choice {
            SolverChoice::Named(key) => {
                let solver = registry.build(&key, &options)?;
                (key, solver)
            }
            SolverChoice::Custom(s) => (owned_name(&*s), s),
        };
        let is_auto =
            registry.get(&requested).is_some_and(|e| e.key() == "auto") || base.name() == "Auto";
        let auto_choice = is_auto.then(|| Auto::new().decide(&features));
        let solver_name = owned_name(&*base);
        let solver: Box<dyn Scheduler + Send + Sync> = if options.decompose {
            Box::new(Decomposed::new(base))
        } else {
            base
        };
        // With decomposition on, Auto re-decides per connected component, so
        // the whole-instance decision recorded here may be refined per
        // component (see the `auto_choice` field docs).
        let multi_component = options.decompose && features.components > 1;
        phases.push(PhaseStat {
            name: "build",
            duration: t.elapsed(),
            detail: match auto_choice {
                Some(choice) if multi_component => format!(
                    "{solver_name} (whole-instance dispatch {choice}; {} components decided independently)",
                    features.components
                ),
                Some(choice) => format!("{solver_name} (dispatching to {choice})"),
                None => solver_name.clone(),
            },
        });
        if cut_phase.is_none() && token.is_cancelled() {
            cut_phase = Some("build");
        }

        // schedule — the token rides along into every solver loop
        let t = Instant::now();
        let schedule = solver.schedule_with(inst, &token)?;
        phases.push(PhaseStat {
            name: "schedule",
            duration: t.elapsed(),
            detail: if intra_width >= 2 {
                format!(
                    "{} machines (parallel width {intra_width})",
                    schedule.machine_count()
                )
            } else {
                format!("{} machines", schedule.machine_count())
            },
        });
        if cut_phase.is_none() && token.is_cancelled() {
            cut_phase = Some("schedule");
        }

        let budget_exhausted = options
            .time_budget
            .is_some_and(|budget| started.elapsed() > budget);

        // bound
        let t = Instant::now();
        let lower_bound = bounds::best_lower_bound(inst);
        phases.push(PhaseStat {
            name: "bound",
            duration: t.elapsed(),
            detail: "best_lower_bound (component + clique δ)".to_string(),
        });
        if cut_phase.is_none() && token.is_cancelled() {
            cut_phase = Some("bound");
        }

        let cost = schedule.cost(inst);
        // a zero bound is only vacuously optimal when the cost is zero
        // too (empty / all-zero-length instances); a positive cost over a
        // zero bound must not claim gap 1.0 (it serializes as JSON null)
        let gap = if lower_bound > 0 {
            cost as f64 / lower_bound as f64
        } else if cost == 0 {
            1.0
        } else {
            f64::INFINITY
        };

        // validate — skipped once the soft budget or the hard deadline has
        // expired (a cut record should leave the pipeline promptly; callers
        // that need certainty re-validate the incumbent themselves)
        if options.validation != ValidationLevel::Skip && !budget_exhausted && cut_phase.is_none() {
            let t = Instant::now();
            schedule.validate(inst).map_err(SolveError::Validation)?;
            if options.validation == ValidationLevel::Strict && cost < lower_bound {
                return Err(SolveError::CostBelowBound { cost, lower_bound });
            }
            phases.push(PhaseStat {
                name: "validate",
                duration: t.elapsed(),
                detail: format!("{:?}", options.validation),
            });
            if cut_phase.is_none() && token.is_cancelled() {
                cut_phase = Some("validate");
            }
        }

        let report = SolveReport {
            requested,
            solver: solver_name,
            auto_choice,
            machines: schedule.machine_count(),
            schedule,
            cost,
            lower_bound,
            gap,
            features,
            phases,
            total: started.elapsed(),
            budget_exhausted,
            deadline_hit: cut_phase.is_some(),
            cut_phase,
            cached: false,
            warm_started: options.warm_start.is_some(),
        };
        if let (Some(cache), Some((canon, fp))) = (&cache, &memo_key) {
            if cache_policy.write_enabled() {
                cache.insert(canon, fp, &report);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::FirstFit;

    fn inst() -> Instance {
        Instance::from_pairs([(0, 4), (1, 5), (6, 9), (100, 104)], 2)
    }

    #[test]
    fn default_request_runs_auto() {
        let inst = inst();
        let report = SolveRequest::new(&inst).solve().unwrap();
        assert_eq!(report.requested, "auto");
        assert!(report.auto_choice.is_some());
        assert!(report.gap >= 1.0);
        assert!(report.cost >= report.lower_bound);
        report.schedule.validate(&inst).unwrap();
        assert!(report.phases.iter().any(|p| p.name == "schedule"));
    }

    #[test]
    fn named_solver_resolves() {
        let inst = inst();
        let report = SolveRequest::new(&inst)
            .solver("first-fit")
            .solve()
            .unwrap();
        assert_eq!(report.requested, "first-fit");
        assert!(report.solver.starts_with("FirstFit"));
        assert!(report.auto_choice.is_none());
    }

    #[test]
    fn alias_resolves() {
        let inst = inst();
        let report = SolveRequest::new(&inst).solver("firstfit").solve().unwrap();
        assert!(report.solver.starts_with("FirstFit"));
    }

    #[test]
    fn unknown_solver_errors() {
        let inst = inst();
        let err = SolveRequest::new(&inst).solver("nope").solve().unwrap_err();
        assert!(matches!(err, SolveError::UnknownSolver { .. }));
    }

    #[test]
    fn custom_scheduler_is_accepted() {
        let inst = inst();
        let report = SolveRequest::new(&inst)
            .scheduler(Box::new(FirstFit::paper()))
            .solve()
            .unwrap();
        assert!(report.solver.starts_with("FirstFit"));
    }

    #[test]
    fn decompose_toggle_preserves_cost_for_first_fit() {
        let inst = inst();
        let on = SolveRequest::new(&inst)
            .solver("first-fit")
            .solve()
            .unwrap();
        let off = SolveRequest::new(&inst)
            .solver("first-fit")
            .decompose(false)
            .solve()
            .unwrap();
        assert_eq!(on.cost, off.cost);
    }

    #[test]
    fn max_jobs_budget_refuses() {
        let inst = inst();
        let err = SolveRequest::new(&inst).max_jobs(2).solve().unwrap_err();
        assert!(matches!(
            err,
            SolveError::BudgetExceeded {
                jobs: 4,
                max_jobs: 2
            }
        ));
    }

    #[test]
    fn zero_time_budget_flags_report_and_skips_validation() {
        let inst = inst();
        let report = SolveRequest::new(&inst)
            .time_budget(Duration::ZERO)
            .solve()
            .unwrap();
        assert!(report.budget_exhausted);
        assert!(!report.phases.iter().any(|p| p.name == "validate"));
        // the schedule is still returned and is in fact valid
        report.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn strict_validation_passes_on_honest_solvers() {
        let inst = inst();
        let report = SolveRequest::new(&inst)
            .validation(ValidationLevel::Strict)
            .solve()
            .unwrap();
        assert!(report.phases.iter().any(|p| p.name == "validate"));
    }

    #[test]
    fn empty_instance_reports_gap_one() {
        let empty = Instance::new(vec![], 3);
        let report = SolveRequest::new(&empty).solve().unwrap();
        assert_eq!(report.cost, 0);
        assert_eq!(report.lower_bound, 0);
        assert_eq!(report.gap, 1.0);
        assert_eq!(report.machines, 0);
    }

    #[test]
    fn report_renders_text_and_json() {
        let inst = inst();
        let report = SolveRequest::new(&inst).solve().unwrap();
        let text = report.to_string();
        assert!(text.contains("lower bound"));
        assert!(report.summary().contains("cost"));
        let json = report.to_json();
        assert!(json.contains("\"solver\""));
        assert!(json.contains("\"assignment\""));
        assert!(json.contains("\"auto_choice\""));
    }

    #[test]
    fn non_finite_gap_serializes_as_json_null() {
        // a positive cost over a zero certified bound must not serialize
        // as a finite (optimality-claiming) gap — and `inf` is not a JSON
        // token, so the wire form is null
        let inst = inst();
        let mut report = SolveRequest::new(&inst).solve().unwrap();
        assert!(report
            .to_json_line()
            .contains(&format!("\"gap\": {:.6}", report.gap)));
        report.gap = f64::INFINITY;
        let line = report.to_json_line();
        assert!(line.contains("\"gap\": null"), "{line}");
        assert!(!line.contains("inf"), "{line}");
    }

    #[test]
    fn json_line_is_single_line_with_schema_version() {
        let inst = inst();
        let report = SolveRequest::new(&inst).solve().unwrap();
        let line = report.to_json_line();
        assert!(!line.contains('\n'), "NDJSON line embeds a newline: {line}");
        assert!(line.starts_with(&format!("{{\"schema_version\": {REPORT_SCHEMA_VERSION}")));
        // the pretty document carries the same stamp
        assert!(report
            .to_json()
            .contains(&format!("\"schema_version\": {REPORT_SCHEMA_VERSION}")));
    }

    #[test]
    fn precomputed_features_skip_detection() {
        let inst = inst();
        let features = InstanceFeatures::detect(&inst);
        let report = SolveRequest::new(&inst)
            .features(features.clone())
            .solve()
            .unwrap();
        assert_eq!(report.features, features);
        let detect = report
            .phases
            .iter()
            .find(|p| p.name == "detect")
            .expect("detect phase recorded");
        assert!(detect.detail.starts_with("cached; "), "{}", detect.detail);
        // dispatch still works off the injected features
        assert!(report.auto_choice.is_some());
        report.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn expired_deadline_flags_report_with_cut_phase() {
        let inst = inst();
        let report = SolveRequest::new(&inst)
            .deadline(Duration::ZERO)
            .solve()
            .unwrap();
        assert!(report.deadline_hit);
        assert_eq!(report.cut_phase, Some("detect"));
        // validation is skipped on cut solves, but the incumbent is valid
        assert!(!report.phases.iter().any(|p| p.name == "validate"));
        report.schedule.validate(&inst).unwrap();
        let json = report.to_json_line();
        assert!(json.contains("\"deadline_hit\": true"), "{json}");
        assert!(json.contains("\"cut_phase\": \"detect\""), "{json}");
    }

    #[test]
    fn generous_deadline_leaves_report_unflagged() {
        let inst = inst();
        let report = SolveRequest::new(&inst)
            .deadline(Duration::from_secs(3600))
            .solve()
            .unwrap();
        assert!(!report.deadline_hit);
        assert_eq!(report.cut_phase, None);
        assert!(report.to_json().contains("\"cut_phase\": null"));
    }

    #[test]
    fn external_cancel_token_cuts_the_solve() {
        let inst = inst();
        let token = CancelToken::never();
        token.cancel();
        let report = SolveRequest::new(&inst).cancel(token).solve().unwrap();
        assert!(report.deadline_hit);
        report.schedule.validate(&inst).unwrap();
    }

    #[test]
    fn caller_token_is_tightened_not_replaced_by_deadline() {
        let inst = inst();
        let outer = CancelToken::never();
        let report = SolveRequest::new(&inst)
            .cancel(outer.clone())
            .deadline(Duration::from_secs(3600))
            .solve()
            .unwrap();
        assert!(!report.deadline_hit);
        // cancelling the outer token after the solve must not have been
        // visible during it — and the request's child never poisons it
        assert!(!outer.is_cancelled());
    }

    #[test]
    fn seed_reaches_seeded_solvers() {
        let inst = inst();
        let report = SolveRequest::new(&inst)
            .solver("random-fit")
            .seed(7)
            .solve()
            .unwrap();
        assert_eq!(report.solver, "RandomFit[seed7]");
    }
}
