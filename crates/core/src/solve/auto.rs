//! The `Auto` portfolio scheduler: structure-conditional dispatch.
//!
//! Related work (Chang–Khuller–Mukherjee, *LP Rounding and Combinatorial
//! Algorithms for Minimizing Active and Busy Time*) frames the paper's
//! algorithms as a portfolio of structure-conditional solvers; `Auto` makes
//! that operational. It detects the instance's class
//! ([`InstanceFeatures`]), races the specialist with the best guarantee for
//! that class against the [`FirstFit::paper`] general-purpose fallback and
//! returns whichever schedule is cheaper. The arms are raced under child
//! [`CancelToken`]s: a specialist finishing with a certified-optimal
//! schedule cancels the fallback arm (no wasted FirstFit run), and a
//! portfolio-level deadline cuts both arms. The result is never worse than
//! FirstFit — the fallback is only skipped when the specialist is provably
//! optimal — while inheriting the specialist's 2- or (2+ε)-approximation
//! whenever the structure allows one.

use std::borrow::Cow;

use crate::algo::{
    BoundedLength, CliqueScheduler, FirstFit, NextFitProper, Scheduler, SchedulerError,
};
use crate::bounds;
use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::solve::InstanceFeatures;

/// Which specialist [`Auto`] dispatches to for an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AutoChoice {
    /// Pairwise-overlapping family → [`CliqueScheduler`] (2-approx,
    /// Thm A.1).
    Clique,
    /// Proper family → [`NextFitProper`] (2-approx, Thm 3.1).
    Proper,
    /// Lengths in `[1, d]` for small `d` → [`BoundedLength`] ((2+ε)-approx,
    /// Thm 3.2).
    BoundedLength,
    /// No special structure → [`FirstFit`] alone (4-approx, Thm 2.1).
    General,
}

impl AutoChoice {
    /// The registry key of the chosen specialist.
    pub fn solver_key(self) -> &'static str {
        match self {
            AutoChoice::Clique => "clique",
            AutoChoice::Proper => "next-fit-proper",
            AutoChoice::BoundedLength => "bounded-length",
            AutoChoice::General => "first-fit",
        }
    }
}

impl std::fmt::Display for AutoChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.solver_key())
    }
}

/// Portfolio scheduler dispatching on detected instance structure, with a
/// [`FirstFit`] safety net.
///
/// ```
/// use busytime_core::{Instance, solve::Auto, algo::Scheduler};
/// // a proper family: Auto dispatches to NextFitProper
/// let inst = Instance::from_pairs([(0, 3), (1, 4), (2, 5), (9, 12)], 2);
/// let sched = Auto::new().schedule(&inst).unwrap();
/// sched.validate(&inst).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Auto {
    /// Maximum normalized length width `d` (see
    /// [`InstanceFeatures::length_width`]) up to which
    /// [`BoundedLength`] is preferred over plain [`FirstFit`]. The
    /// (2+ε) guarantee holds for any finite `d`, but the segmentation
    /// machinery only pays off while `d` is small.
    pub max_bounded_width: i64,
}

impl Default for Auto {
    fn default() -> Self {
        Auto::new()
    }
}

impl Auto {
    /// The default portfolio (bounded-length dispatch up to `d = 8`).
    pub fn new() -> Self {
        Auto {
            max_bounded_width: 8,
        }
    }

    /// Overrides the bounded-length dispatch cutoff.
    pub fn with_max_bounded_width(mut self, d: i64) -> Self {
        self.max_bounded_width = d;
        self
    }

    /// The dispatch decision for an instance with the given features —
    /// pure, cheap, and unit-testable without running any scheduler.
    ///
    /// Priority order mirrors guarantee strength on each class: cliques
    /// (2-approx with the δ-bound certificate), proper families (2-approx),
    /// bounded lengths ((2+ε)-approx), then the general 4-approx.
    pub fn decide(&self, features: &InstanceFeatures) -> AutoChoice {
        if features.jobs == 0 {
            return AutoChoice::General;
        }
        if features.clique {
            AutoChoice::Clique
        } else if features.proper {
            AutoChoice::Proper
        } else if matches!(features.length_width(), Some(d) if d <= self.max_bounded_width) {
            AutoChoice::BoundedLength
        } else {
            AutoChoice::General
        }
    }

    fn specialist(&self, choice: AutoChoice) -> Option<Box<dyn Scheduler>> {
        match choice {
            AutoChoice::Clique => Some(Box::new(CliqueScheduler::new())),
            AutoChoice::Proper => Some(Box::new(NextFitProper::new())),
            AutoChoice::BoundedLength => Some(Box::new(BoundedLength::first_fit())),
            AutoChoice::General => None,
        }
    }
}

impl Scheduler for Auto {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Auto")
    }

    /// Detects structure, races the matching specialist against the
    /// FirstFit fallback and returns the cheaper schedule (the specialist
    /// wins ties). The arms share the portfolio's [`CancelToken`] through
    /// per-arm children: a specialist that finishes with a *provably
    /// optimal* schedule (cost equal to the certified lower bound) cancels
    /// the fallback arm instead of letting it run to completion, and an
    /// expired portfolio token makes the specialist's incumbent the final
    /// answer without starting the fallback. Never fails on a valid
    /// instance: a specialist error — class disagreement, or a cut
    /// exhaustive segment with no incumbent — falls back to FirstFit
    /// instead of surfacing.
    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        self.race(inst, cancel).map(|(sched, _)| sched)
    }
}

impl Auto {
    /// The portfolio race behind [`Scheduler::schedule_with`]; also reports
    /// whether the fallback arm was skipped (decided race or expired
    /// portfolio token), which the short-circuit tests assert on.
    fn race(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<(Schedule, bool), SchedulerError> {
        let features = InstanceFeatures::detect(inst);
        let choice = self.decide(&features);
        let Some(specialist) = self.specialist(choice) else {
            return Ok((FirstFit::paper().schedule_with(inst, cancel)?, false));
        };
        let fallback_arm = cancel.child();
        match specialist.schedule_with(inst, &cancel.child()) {
            Ok(spec) => {
                if fallback_arm.is_cancelled() {
                    // the portfolio deadline expired while the specialist
                    // ran — its result is the incumbent; no bound needed
                    return Ok((spec, true));
                }
                let spec_cost = spec.cost(inst);
                // Certification uses the same bound as the report's gap
                // (`gap == 1.0` ⇔ cost == best_lower_bound), so the two
                // never disagree. The sweep it costs is repaid whenever it
                // fires: the cancelled FirstFit arm is strictly more work.
                if spec_cost <= bounds::best_lower_bound(inst) {
                    // certified optimal: the race is decided, cancel the
                    // losing arm rather than running FirstFit to completion
                    fallback_arm.cancel();
                    return Ok((spec, true));
                }
                let fallback = FirstFit::paper().schedule_with(inst, &fallback_arm)?;
                if spec_cost <= fallback.cost(inst) {
                    Ok((spec, false))
                } else {
                    Ok((fallback, false))
                }
            }
            Err(_) => Ok((FirstFit::paper().schedule_with(inst, cancel)?, false)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(pairs: &[(i64, i64)], g: u32) -> InstanceFeatures {
        InstanceFeatures::detect(&Instance::from_pairs(pairs.iter().copied(), g))
    }

    #[test]
    fn decides_clique_before_proper() {
        // pairwise overlapping AND proper: the clique algorithm's δ-bound
        // certificate wins the tie
        let f = features(&[(0, 3), (1, 4), (2, 5)], 2);
        assert!(f.clique && f.proper);
        assert_eq!(Auto::new().decide(&f), AutoChoice::Clique);
    }

    #[test]
    fn decides_proper_on_proper_non_clique() {
        let f = features(&[(0, 3), (2, 5), (4, 7), (6, 9)], 2);
        assert!(!f.clique && f.proper);
        assert_eq!(Auto::new().decide(&f), AutoChoice::Proper);
    }

    #[test]
    fn decides_bounded_on_short_jobs_with_containment() {
        // containment breaks properness; disjoint far pair breaks clique;
        // lengths in [1, 2] keep the bounded class
        let f = features(&[(0, 2), (1, 2), (100, 101)], 2);
        assert!(!f.clique && !f.proper);
        assert_eq!(Auto::new().decide(&f), AutoChoice::BoundedLength);
    }

    #[test]
    fn decides_general_on_wide_lengths() {
        let f = features(&[(0, 1), (0, 100), (200, 201)], 2);
        assert_eq!(Auto::new().decide(&f), AutoChoice::General);
        // and on point jobs (outside the bounded class)
        let f = features(&[(0, 0), (0, 9), (20, 21)], 2);
        assert_eq!(Auto::new().decide(&f), AutoChoice::General);
    }

    #[test]
    fn cutoff_is_configurable() {
        let f = features(&[(0, 1), (0, 100), (200, 201)], 2);
        let generous = Auto::new().with_max_bounded_width(1_000);
        assert_eq!(generous.decide(&f), AutoChoice::BoundedLength);
    }

    #[test]
    fn schedules_empty_instance() {
        let inst = Instance::new(vec![], 3);
        let sched = Auto::new().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 0);
    }

    #[test]
    fn never_costlier_than_first_fit_on_specialist_classes() {
        for pairs in [
            vec![(0i64, 4i64), (1, 5), (2, 6), (3, 7)],    // clique
            vec![(0, 3), (2, 5), (4, 7), (6, 9), (8, 11)], // proper
            vec![(0, 2), (1, 2), (10, 12), (11, 12), (20, 22)], // bounded
        ] {
            let inst = Instance::from_pairs(pairs, 2);
            let auto = Auto::new().schedule(&inst).unwrap();
            let ff = FirstFit::paper().schedule(&inst).unwrap();
            auto.validate(&inst).unwrap();
            assert!(auto.cost(&inst) <= ff.cost(&inst));
        }
    }

    #[test]
    fn optimal_specialist_short_circuits_the_fallback_arm() {
        // 4 identical jobs, g = 2: the clique specialist hits the δ-bound
        // exactly (cost 20 = lower bound), so the FirstFit arm is cancelled
        let inst = Instance::from_pairs([(0, 10); 4], 2);
        let (sched, skipped) = Auto::new().race(&inst, &CancelToken::never()).unwrap();
        assert!(skipped, "provably optimal specialist must cancel the race");
        assert_eq!(sched.cost(&inst), 20);
    }

    #[test]
    fn undecided_race_still_runs_both_arms() {
        // no specialist certificate here: bounded-length dispatch with a
        // strictly positive gap keeps the fallback arm alive
        let inst = Instance::from_pairs([(0, 2), (1, 2), (100, 101)], 2);
        let (sched, skipped) = Auto::new().race(&inst, &CancelToken::never()).unwrap();
        sched.validate(&inst).unwrap();
        if sched.cost(&inst) > crate::bounds::best_lower_bound(&inst) {
            assert!(!skipped, "an undecided race must not skip the fallback");
        }
    }

    #[test]
    fn expired_token_returns_valid_schedule_from_every_dispatch() {
        let expired = CancelToken::after(std::time::Duration::ZERO);
        for pairs in [
            vec![(0i64, 4i64), (1, 5), (2, 6), (3, 7)],    // clique
            vec![(0, 3), (2, 5), (4, 7), (6, 9), (8, 11)], // proper
            vec![(0, 2), (1, 2), (10, 12), (11, 12)],      // bounded
            vec![(0, 1), (0, 100), (200, 201)],            // general
        ] {
            let inst = Instance::from_pairs(pairs, 2);
            let sched = Auto::new().schedule_with(&inst, &expired).unwrap();
            sched.validate(&inst).unwrap();
        }
    }

    #[test]
    fn choice_keys_match_registry() {
        assert_eq!(AutoChoice::Clique.solver_key(), "clique");
        assert_eq!(AutoChoice::Proper.solver_key(), "next-fit-proper");
        assert_eq!(AutoChoice::BoundedLength.solver_key(), "bounded-length");
        assert_eq!(AutoChoice::General.solver_key(), "first-fit");
    }
}
