//! The `Auto` portfolio scheduler: structure-conditional dispatch.
//!
//! Related work (Chang–Khuller–Mukherjee, *LP Rounding and Combinatorial
//! Algorithms for Minimizing Active and Busy Time*) frames the paper's
//! algorithms as a portfolio of structure-conditional solvers; `Auto` makes
//! that operational. It detects the instance's class
//! ([`InstanceFeatures`]), runs the specialist with the best guarantee for
//! that class, *and* always runs [`FirstFit::paper`] as the general-purpose
//! fallback — returning whichever schedule is cheaper. The result is
//! therefore never worse than FirstFit while inheriting the specialist's
//! 2- or (2+ε)-approximation whenever the structure allows one.

use std::borrow::Cow;

use crate::algo::{
    BoundedLength, CliqueScheduler, FirstFit, NextFitProper, Scheduler, SchedulerError,
};
use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::solve::InstanceFeatures;

/// Which specialist [`Auto`] dispatches to for an instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AutoChoice {
    /// Pairwise-overlapping family → [`CliqueScheduler`] (2-approx,
    /// Thm A.1).
    Clique,
    /// Proper family → [`NextFitProper`] (2-approx, Thm 3.1).
    Proper,
    /// Lengths in `[1, d]` for small `d` → [`BoundedLength`] ((2+ε)-approx,
    /// Thm 3.2).
    BoundedLength,
    /// No special structure → [`FirstFit`] alone (4-approx, Thm 2.1).
    General,
}

impl AutoChoice {
    /// The registry key of the chosen specialist.
    pub fn solver_key(self) -> &'static str {
        match self {
            AutoChoice::Clique => "clique",
            AutoChoice::Proper => "next-fit-proper",
            AutoChoice::BoundedLength => "bounded-length",
            AutoChoice::General => "first-fit",
        }
    }
}

impl std::fmt::Display for AutoChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.solver_key())
    }
}

/// Portfolio scheduler dispatching on detected instance structure, with a
/// [`FirstFit`] safety net.
///
/// ```
/// use busytime_core::{Instance, solve::Auto, algo::Scheduler};
/// // a proper family: Auto dispatches to NextFitProper
/// let inst = Instance::from_pairs([(0, 3), (1, 4), (2, 5), (9, 12)], 2);
/// let sched = Auto::new().schedule(&inst).unwrap();
/// sched.validate(&inst).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Auto {
    /// Maximum normalized length width `d` (see
    /// [`InstanceFeatures::length_width`]) up to which
    /// [`BoundedLength`] is preferred over plain [`FirstFit`]. The
    /// (2+ε) guarantee holds for any finite `d`, but the segmentation
    /// machinery only pays off while `d` is small.
    pub max_bounded_width: i64,
}

impl Default for Auto {
    fn default() -> Self {
        Auto::new()
    }
}

impl Auto {
    /// The default portfolio (bounded-length dispatch up to `d = 8`).
    pub fn new() -> Self {
        Auto {
            max_bounded_width: 8,
        }
    }

    /// Overrides the bounded-length dispatch cutoff.
    pub fn with_max_bounded_width(mut self, d: i64) -> Self {
        self.max_bounded_width = d;
        self
    }

    /// The dispatch decision for an instance with the given features —
    /// pure, cheap, and unit-testable without running any scheduler.
    ///
    /// Priority order mirrors guarantee strength on each class: cliques
    /// (2-approx with the δ-bound certificate), proper families (2-approx),
    /// bounded lengths ((2+ε)-approx), then the general 4-approx.
    pub fn decide(&self, features: &InstanceFeatures) -> AutoChoice {
        if features.jobs == 0 {
            return AutoChoice::General;
        }
        if features.clique {
            AutoChoice::Clique
        } else if features.proper {
            AutoChoice::Proper
        } else if matches!(features.length_width(), Some(d) if d <= self.max_bounded_width) {
            AutoChoice::BoundedLength
        } else {
            AutoChoice::General
        }
    }

    fn specialist(&self, choice: AutoChoice) -> Option<Box<dyn Scheduler>> {
        match choice {
            AutoChoice::Clique => Some(Box::new(CliqueScheduler::new())),
            AutoChoice::Proper => Some(Box::new(NextFitProper::new())),
            AutoChoice::BoundedLength => Some(Box::new(BoundedLength::first_fit())),
            AutoChoice::General => None,
        }
    }
}

impl Scheduler for Auto {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Auto")
    }

    /// Detects structure, runs the matching specialist plus the FirstFit
    /// fallback, and returns the cheaper schedule (the specialist wins
    /// ties). Never fails on a valid instance: a specialist error — which
    /// would indicate a feature-detection/specialist disagreement — falls
    /// back to FirstFit instead of surfacing.
    fn schedule(&self, inst: &Instance) -> Result<Schedule, SchedulerError> {
        let features = InstanceFeatures::detect(inst);
        let choice = self.decide(&features);
        let fallback = FirstFit::paper().schedule(inst)?;
        let Some(specialist) = self.specialist(choice) else {
            return Ok(fallback);
        };
        match specialist.schedule(inst) {
            Ok(sched) if sched.cost(inst) <= fallback.cost(inst) => Ok(sched),
            Ok(_) | Err(_) => Ok(fallback),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn features(pairs: &[(i64, i64)], g: u32) -> InstanceFeatures {
        InstanceFeatures::detect(&Instance::from_pairs(pairs.iter().copied(), g))
    }

    #[test]
    fn decides_clique_before_proper() {
        // pairwise overlapping AND proper: the clique algorithm's δ-bound
        // certificate wins the tie
        let f = features(&[(0, 3), (1, 4), (2, 5)], 2);
        assert!(f.clique && f.proper);
        assert_eq!(Auto::new().decide(&f), AutoChoice::Clique);
    }

    #[test]
    fn decides_proper_on_proper_non_clique() {
        let f = features(&[(0, 3), (2, 5), (4, 7), (6, 9)], 2);
        assert!(!f.clique && f.proper);
        assert_eq!(Auto::new().decide(&f), AutoChoice::Proper);
    }

    #[test]
    fn decides_bounded_on_short_jobs_with_containment() {
        // containment breaks properness; disjoint far pair breaks clique;
        // lengths in [1, 2] keep the bounded class
        let f = features(&[(0, 2), (1, 2), (100, 101)], 2);
        assert!(!f.clique && !f.proper);
        assert_eq!(Auto::new().decide(&f), AutoChoice::BoundedLength);
    }

    #[test]
    fn decides_general_on_wide_lengths() {
        let f = features(&[(0, 1), (0, 100), (200, 201)], 2);
        assert_eq!(Auto::new().decide(&f), AutoChoice::General);
        // and on point jobs (outside the bounded class)
        let f = features(&[(0, 0), (0, 9), (20, 21)], 2);
        assert_eq!(Auto::new().decide(&f), AutoChoice::General);
    }

    #[test]
    fn cutoff_is_configurable() {
        let f = features(&[(0, 1), (0, 100), (200, 201)], 2);
        let generous = Auto::new().with_max_bounded_width(1_000);
        assert_eq!(generous.decide(&f), AutoChoice::BoundedLength);
    }

    #[test]
    fn schedules_empty_instance() {
        let inst = Instance::new(vec![], 3);
        let sched = Auto::new().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 0);
    }

    #[test]
    fn never_costlier_than_first_fit_on_specialist_classes() {
        for pairs in [
            vec![(0i64, 4i64), (1, 5), (2, 6), (3, 7)],    // clique
            vec![(0, 3), (2, 5), (4, 7), (6, 9), (8, 11)], // proper
            vec![(0, 2), (1, 2), (10, 12), (11, 12), (20, 22)], // bounded
        ] {
            let inst = Instance::from_pairs(pairs, 2);
            let auto = Auto::new().schedule(&inst).unwrap();
            let ff = FirstFit::paper().schedule(&inst).unwrap();
            auto.validate(&inst).unwrap();
            assert!(auto.cost(&inst) <= ff.cost(&inst));
        }
    }

    #[test]
    fn choice_keys_match_registry() {
        assert_eq!(AutoChoice::Clique.solver_key(), "clique");
        assert_eq!(AutoChoice::Proper.solver_key(), "next-fit-proper");
        assert_eq!(AutoChoice::BoundedLength.solver_key(), "bounded-length");
        assert_eq!(AutoChoice::General.solver_key(), "first-fit");
    }
}
