//! [`MachineLoad`]: the incremental per-machine state used by schedulers.

use busytime_interval::{Interval, IntervalSet, OverlapProfile};

use crate::instance::JobId;

/// The running state of one machine while a scheduler assigns jobs: which
/// jobs it holds, its count profile (for the capacity gate) and its busy set
/// (for cost accounting).
///
/// The paper's feasibility rule (Section 2.1): job `J` fits machine `M_i`
/// under parallelism `g` iff at every `t ∈ J`, `M_i` currently processes at
/// most `g − 1` jobs — exactly [`MachineLoad::can_fit`].
#[derive(Clone, Debug, Default)]
pub struct MachineLoad {
    jobs: Vec<JobId>,
    profile: OverlapProfile,
    busy: IntervalSet,
}

impl MachineLoad {
    /// An empty machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Job ids assigned so far, in assignment order.
    pub fn jobs(&self) -> &[JobId] {
        &self.jobs
    }

    /// Number of jobs assigned.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// True iff no job is assigned.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// True iff `iv` can be added without exceeding parallelism `g`
    /// anywhere on `iv`.
    pub fn can_fit(&self, iv: &Interval, g: u32) -> bool {
        self.profile.can_add(iv, g)
    }

    /// Assigns a job (unchecked against `g`; callers gate with
    /// [`MachineLoad::can_fit`] first — some baselines deliberately skip it).
    pub fn push(&mut self, id: JobId, iv: &Interval) {
        self.jobs.push(id);
        self.profile.add(iv);
        self.busy.insert(*iv);
    }

    /// Current busy time (measure of the union of assigned jobs — the
    /// machine's `span(J_i)`, its cost in the objective).
    pub fn busy_time(&self) -> i64 {
        self.busy.measure()
    }

    /// The busy period as a set of maximal intervals.
    pub fn busy_set(&self) -> &IntervalSet {
        &self.busy
    }

    /// How much the busy time would grow if `iv` were added (the BestFit
    /// baseline's scoring function).
    pub fn busy_increase(&self, iv: &Interval) -> i64 {
        let mut grown = self.busy.clone();
        grown.insert(*iv);
        grown.measure() - self.busy.measure()
    }

    /// Number of assigned jobs active at time `t`.
    pub fn active_at(&self, t: i64) -> u32 {
        self.profile.count_at(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: i64, c: i64) -> Interval {
        Interval::new(s, c)
    }

    #[test]
    fn capacity_gate() {
        let mut m = MachineLoad::new();
        assert!(m.can_fit(&iv(0, 10), 1));
        m.push(0, &iv(0, 10));
        assert!(!m.can_fit(&iv(5, 15), 1));
        assert!(m.can_fit(&iv(5, 15), 2));
        m.push(1, &iv(5, 15));
        assert!(!m.can_fit(&iv(7, 8), 2));
        assert!(m.can_fit(&iv(11, 20), 2)); // only one job active on [11,15]
    }

    #[test]
    fn busy_time_union() {
        let mut m = MachineLoad::new();
        m.push(0, &iv(0, 4));
        m.push(1, &iv(2, 6));
        assert_eq!(m.busy_time(), 6);
        m.push(2, &iv(10, 11));
        assert_eq!(m.busy_time(), 7); // gap (6,10) costs nothing
        assert_eq!(m.busy_set().component_count(), 2);
    }

    #[test]
    fn busy_increase_scoring() {
        let mut m = MachineLoad::new();
        m.push(0, &iv(0, 4));
        assert_eq!(m.busy_increase(&iv(2, 6)), 2);
        assert_eq!(m.busy_increase(&iv(1, 3)), 0);
        assert_eq!(m.busy_increase(&iv(10, 13)), 3);
        // scoring must not mutate
        assert_eq!(m.busy_time(), 4);
    }

    #[test]
    fn active_counts() {
        let mut m = MachineLoad::new();
        m.push(0, &iv(0, 2));
        m.push(1, &iv(1, 3));
        assert_eq!(m.active_at(0), 1);
        assert_eq!(m.active_at(1), 2);
        assert_eq!(m.active_at(3), 1);
        assert_eq!(m.active_at(4), 0);
    }

    #[test]
    fn endpoint_touch_blocks_at_g1() {
        let mut m = MachineLoad::new();
        m.push(0, &iv(0, 5));
        // [5,9] touches at t=5: with g = 1 it must not fit
        assert!(!m.can_fit(&iv(5, 9), 1));
        assert!(m.can_fit(&iv(6, 9), 1));
    }
}
