//! Cooperative cancellation: a shared deadline plus a poison flag.
//!
//! The serving layer fans records over a fixed worker pool, so one
//! pathological record (an exact solve near its size guard, a wide
//! segmented sweep) must not pin a worker for seconds. [`CancelToken`] is
//! the contract that prevents that: every [`Scheduler`] receives one
//! through [`Scheduler::schedule_with`] and polls [`is_cancelled`] at the
//! granularity of its inner loop — per branch in branch-and-bound, per DP
//! row, per segment of a sweep. On expiry the solver stops *cooperatively*:
//! it returns its best incumbent schedule if it holds one, or
//! [`SchedulerError::Infeasible`] when it has nothing feasible yet.
//!
//! Tokens form a tree. [`CancelToken::child`] creates a token with its own
//! poison flag that also observes every ancestor, so a portfolio can cancel
//! one raced arm (the loser) without poisoning its siblings, while a
//! pool-level deadline still cuts all arms at once. Checks are cheap — one
//! relaxed atomic load per tree level plus a single monotonic clock read —
//! so polling every few hundred loop iterations is free compared to any
//! scheduling work.
//!
//! ```
//! use busytime_core::cancel::CancelToken;
//! use std::time::Duration;
//!
//! let pool = CancelToken::after(Duration::from_millis(50));
//! let arm = pool.child();
//! assert!(!arm.is_cancelled());
//! arm.cancel(); // the losing arm stops...
//! assert!(arm.is_cancelled());
//! assert!(!pool.is_cancelled()); // ...without poisoning the pool token
//! ```
//!
//! [`Scheduler`]: crate::algo::Scheduler
//! [`Scheduler::schedule_with`]: crate::algo::Scheduler::schedule_with
//! [`SchedulerError::Infeasible`]: crate::algo::SchedulerError::Infeasible
//! [`is_cancelled`]: CancelToken::is_cancelled

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug, Default)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<Arc<Inner>>,
}

impl Inner {
    fn cancelled_at(&self, now: Instant) -> bool {
        self.cancelled.load(Ordering::Relaxed)
            || self.deadline.is_some_and(|d| now >= d)
            || self.parent.as_ref().is_some_and(|p| p.cancelled_at(now))
    }

    fn effective_deadline(&self) -> Option<Instant> {
        let inherited = self.parent.as_ref().and_then(|p| p.effective_deadline());
        match (self.deadline, inherited) {
            (Some(own), Some(up)) => Some(own.min(up)),
            (own, up) => own.or(up),
        }
    }
}

/// A cheap, clonable cancellation handle: an optional hard deadline plus an
/// explicit poison flag, observed cooperatively by solver loops.
///
/// Clones share state — cancelling any clone cancels them all. Children
/// created with [`CancelToken::child`] observe their ancestors but carry
/// their own flag, so cancelling a child never affects the parent.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never expires and is only cancelled explicitly — the
    /// default for direct [`Scheduler::schedule`] calls.
    ///
    /// [`Scheduler::schedule`]: crate::algo::Scheduler::schedule
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// A token that expires at `deadline`.
    pub fn at(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: Some(deadline),
                ..Inner::default()
            }),
        }
    }

    /// A token that expires `budget` from now. A zero budget is already
    /// expired — solvers receiving it must return their cheapest feasible
    /// answer (or refuse) without doing speculative work.
    ///
    /// A `budget` too large to represent saturates to [`CancelToken::never`].
    pub fn after(budget: Duration) -> Self {
        match Instant::now().checked_add(budget) {
            Some(deadline) => CancelToken::at(deadline),
            None => CancelToken::never(),
        }
    }

    /// A child token: its own poison flag, plus visibility of every
    /// ancestor's flag and deadline. Cancelling the child leaves the parent
    /// (and any sibling) untouched; cancelling the parent cuts all
    /// children.
    pub fn child(&self) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                parent: Some(Arc::clone(&self.inner)),
                ..Inner::default()
            }),
        }
    }

    /// A child token that additionally expires at `deadline` (the effective
    /// deadline is the minimum over the chain).
    pub fn child_until(&self, deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: Some(deadline),
                parent: Some(Arc::clone(&self.inner)),
                ..Inner::default()
            }),
        }
    }

    /// A child token that additionally expires `budget` from now.
    pub fn child_after(&self, budget: Duration) -> Self {
        match Instant::now().checked_add(budget) {
            Some(deadline) => self.child_until(deadline),
            None => self.child(),
        }
    }

    /// Sets the poison flag on this token (and every clone sharing it).
    /// Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// True once this token should stop work: its flag (or any ancestor's)
    /// is set, or any deadline on the chain has passed. The poll solver
    /// loops issue at their checkpoint granularity.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled_at(Instant::now())
    }

    /// The effective deadline — the earliest along the ancestor chain —
    /// or `None` when the token can only be cancelled explicitly.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.effective_deadline()
    }

    /// Time left until the effective deadline (`None` = unbounded,
    /// `Some(ZERO)` = already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline()
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_is_not_cancelled_until_poisoned() {
        let t = CancelToken::never();
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
        assert_eq!(t.remaining(), None);
        t.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_budget_is_expired_immediately() {
        let t = CancelToken::after(Duration::ZERO);
        assert!(t.is_cancelled());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_budget_is_live() {
        let t = CancelToken::after(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::never();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn child_cancel_does_not_poison_parent_or_sibling() {
        let parent = CancelToken::never();
        let loser = parent.child();
        let winner = parent.child();
        loser.cancel();
        assert!(loser.is_cancelled());
        assert!(!parent.is_cancelled());
        assert!(!winner.is_cancelled());
    }

    #[test]
    fn parent_cancel_cuts_all_children() {
        let parent = CancelToken::never();
        let a = parent.child();
        let b = a.child(); // grandchild
        parent.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
    }

    #[test]
    fn expiry_ordering_earliest_deadline_wins() {
        // a child may only tighten the chain's deadline, never loosen it
        let soon = Instant::now() + Duration::from_millis(5);
        let late = Instant::now() + Duration::from_secs(3600);
        let parent = CancelToken::at(soon);
        let child = parent.child_until(late);
        assert_eq!(child.deadline(), Some(soon));
        let tight = CancelToken::at(late).child_until(soon);
        assert_eq!(tight.deadline(), Some(soon));
        // the earlier deadline expires first on both chains
        std::thread::sleep(Duration::from_millis(10));
        assert!(child.is_cancelled());
        assert!(tight.is_cancelled());
    }

    #[test]
    fn expired_parent_cuts_live_child() {
        let parent = CancelToken::after(Duration::ZERO);
        let child = parent.child_after(Duration::from_secs(3600));
        assert!(child.is_cancelled(), "child must observe the parent expiry");
    }

    #[test]
    fn saturating_budget_never_expires() {
        let t = CancelToken::after(Duration::MAX);
        assert!(!t.is_cancelled());
        let child = CancelToken::never().child_after(Duration::MAX);
        assert!(!child.is_cancelled());
    }
}
