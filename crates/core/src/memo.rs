//! Canonical instance hashing and the process-wide solution memo.
//!
//! Production traffic is heavily repetitive: the same request instance —
//! possibly with its jobs listed in a different order — arrives again and
//! again. Since machines are interchangeable and jobs carry no identity
//! beyond their interval, the busy-time problem is fully determined by the
//! *multiset* of job intervals plus the parallelism parameter `g`. This
//! module exploits that in three layers:
//!
//! * [`CanonicalInstance`] — an order/ID-invariant normal form (jobs sorted
//!   by `(start, end)`, plus the permutation back to the caller's order)
//!   with a stable 64-bit [`CanonicalInstance::hash`]. Two instances get the
//!   same canonical form iff they are the same multiset of intervals with
//!   the same `g`.
//! * [`SolutionCache`] — a shared (clone-and-send) true-LRU memo from
//!   canonical instance + solver-relevant options ([`SolveFingerprint`]) to
//!   a validated [`SolveReport`]. Repeat records are served at lookup
//!   speed; the stored assignment is kept in canonical order and remapped
//!   to each caller's job order on the way out, so permuted-identical
//!   instances all hit the same entry.
//! * near-match warm starts — [`SolutionCache::warm_hint`] finds a cached
//!   entry whose job multiset differs from the query by at most a small
//!   edit budget and packages its machine grouping as a [`WarmStart`] hint.
//!   `exact-bb` seeds its incumbent from the hint, so the cache accelerates
//!   even misses.
//!
//! Invalidation is LRU-only: entries are never invalidated by content
//! (solves are deterministic for a given fingerprint), only evicted when
//! the cache is full. Reports that were cut by a deadline or budget are
//! never inserted, and every insert re-validates the schedule against the
//! canonical instance — a cache hit is always a feasible, clean solve.
//!
//! # Caveats
//!
//! The canonical hash deliberately ignores job *order* and *ids*: callers
//! that attach meaning to job order beyond the interval itself (none in
//! this workspace) must not share a cache. The hash is a full 64-bit
//! content hash but collisions are still resolved by comparing the job
//! vectors, never trusted blindly.

use std::collections::{BTreeMap, HashMap};
use std::str::FromStr;
use std::sync::{Arc, Mutex, MutexGuard};

use busytime_interval::Interval;

use crate::instance::Instance;
use crate::schedule::{MachineId, Schedule};
use crate::solve::SolveReport;

/// Per-record cache participation, carried on the wire as
/// `"cache": "off" | "read" | "write" | "readwrite"`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CachePolicy {
    /// Bypass the cache entirely: no lookup, no insert, no warm start.
    Off,
    /// Serve from the cache when possible but never insert.
    Read,
    /// Insert the solve result but never serve a cached one.
    Write,
    /// Full participation (the default).
    #[default]
    ReadWrite,
}

impl CachePolicy {
    /// True when lookups (and warm-start hints) are allowed.
    pub fn read_enabled(self) -> bool {
        matches!(self, CachePolicy::Read | CachePolicy::ReadWrite)
    }

    /// True when the solve result may be inserted.
    pub fn write_enabled(self) -> bool {
        matches!(self, CachePolicy::Write | CachePolicy::ReadWrite)
    }

    /// The wire spelling (`off`/`read`/`write`/`readwrite`).
    pub fn as_str(self) -> &'static str {
        match self {
            CachePolicy::Off => "off",
            CachePolicy::Read => "read",
            CachePolicy::Write => "write",
            CachePolicy::ReadWrite => "readwrite",
        }
    }
}

impl FromStr for CachePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(CachePolicy::Off),
            "read" => Ok(CachePolicy::Read),
            "write" => Ok(CachePolicy::Write),
            "readwrite" => Ok(CachePolicy::ReadWrite),
            other => Err(format!(
                "unknown cache policy `{other}` (expected off, read, write or readwrite)"
            )),
        }
    }
}

/// The order/ID-invariant normal form of an [`Instance`]: jobs sorted by
/// `(start, end)`, plus the permutation mapping canonical positions back to
/// the original job ids.
#[derive(Clone, Debug)]
pub struct CanonicalInstance {
    jobs: Vec<Interval>,
    g: u32,
    /// `perm[k]` = original job id of the k-th canonical job.
    perm: Vec<usize>,
    hash: u64,
}

/// Two canonical forms are equal when they describe the same job multiset
/// under the same `g` — the permutation back to the *caller's* job order is
/// a view, not part of the identity (that is the whole point of the normal
/// form: permuted-identical instances compare equal here).
impl PartialEq for CanonicalInstance {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.g == other.g && self.jobs == other.jobs
    }
}

impl Eq for CanonicalInstance {}

impl CanonicalInstance {
    /// Normalizes `inst`: a stable sort of job ids by `(start, end)`.
    pub fn of(inst: &Instance) -> Self {
        // (start, end, original id) triples with distinct ascending ids:
        // an unstable sort of the triples reproduces the stable order
        // exactly, as a plain `Ord + Copy` sort the intra context's
        // parallel sort can serve on large instances
        let mut keyed: Vec<(i64, i64, usize)> = inst
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, iv)| (iv.start, iv.end, i))
            .collect();
        crate::pool::intra::sort_unstable(&mut keyed);
        let perm: Vec<usize> = keyed.iter().map(|&(_, _, i)| i).collect();
        let jobs: Vec<Interval> = perm.iter().map(|&i| inst.job(i)).collect();
        let hash = hash_content(&jobs, inst.g());
        CanonicalInstance {
            jobs,
            g: inst.g(),
            perm,
            hash,
        }
    }

    /// The sorted job multiset.
    pub fn jobs(&self) -> &[Interval] {
        &self.jobs
    }

    /// The parallelism parameter.
    pub fn g(&self) -> u32 {
        self.g
    }

    /// Jobs in the instance.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when the instance has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The stable 64-bit content hash of `(jobs, g)`. Equal for any two
    /// permutations of the same instance; process- and platform-stable
    /// (FNV-1a over the sorted coordinates, no randomized hasher state).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// Rebuilds the canonical instance (jobs in canonical order) — the
    /// instance cache entries are validated against.
    pub fn to_instance(&self) -> Instance {
        Instance::new(self.jobs.clone(), self.g)
    }

    /// Maps an assignment over canonical positions back to the original
    /// job order: `out[original_id] = canonical_assign[k]` where `k` is the
    /// canonical position of that job.
    pub fn assignment_to_original(&self, canonical_assign: &[MachineId]) -> Vec<MachineId> {
        debug_assert_eq!(canonical_assign.len(), self.perm.len());
        let mut out = vec![0; canonical_assign.len()];
        for (k, &orig) in self.perm.iter().enumerate() {
            out[orig] = canonical_assign[k];
        }
        out
    }

    /// Maps an assignment over original job ids into canonical order.
    pub fn assignment_to_canonical(&self, original_assign: &[MachineId]) -> Vec<MachineId> {
        debug_assert_eq!(original_assign.len(), self.perm.len());
        self.perm
            .iter()
            .map(|&orig| original_assign[orig])
            .collect()
    }
}

/// The order-invariant content hash of an instance without building the
/// full [`CanonicalInstance`] (used by feature caches that only need the
/// key, not the permutation).
pub fn canonical_hash(inst: &Instance) -> u64 {
    crate::pool::scratch::with(|arena| {
        let pairs = &mut arena.pairs;
        pairs.clear();
        pairs.extend(inst.jobs().iter().map(|iv| (iv.start, iv.end)));
        crate::pool::intra::sort_unstable(pairs);
        let mut h = Fnv::new();
        h.write_u64(pairs.len() as u64);
        h.write_u64(u64::from(inst.g()));
        for &(s, e) in pairs.iter() {
            h.write_u64(s as u64);
            h.write_u64(e as u64);
        }
        h.finish()
    })
}

/// FNV-1a over the sorted job coordinates and `g` — deterministic across
/// processes and platforms, unlike `DefaultHasher`.
fn hash_content(sorted_jobs: &[Interval], g: u32) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(sorted_jobs.len() as u64);
    h.write_u64(u64::from(g));
    for iv in sorted_jobs {
        h.write_u64(iv.start as u64);
        h.write_u64(iv.end as u64);
    }
    h.finish()
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

/// The solver-relevant slice of the solve options: two cached solves are
/// interchangeable only when these match. Deadlines, time budgets and
/// validation levels are deliberately excluded — entries are validated at
/// insert time and never store cut solves, so any caller-side checking
/// level is satisfied by a hit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SolveFingerprint {
    /// The canonical registry key of the requested solver (aliases
    /// resolved), or the custom scheduler's name.
    pub solver: String,
    /// The seed consumed by randomized solvers.
    pub seed: u64,
    /// Whether component decomposition was on.
    pub decompose: bool,
}

impl SolveFingerprint {
    fn hash_into(&self, h: &mut Fnv) {
        h.write_u64(self.solver.len() as u64);
        for byte in self.solver.as_bytes() {
            h.write_u64(u64::from(*byte));
        }
        h.write_u64(self.seed);
        h.write_u64(u64::from(self.decompose));
    }
}

/// A machine-grouping hint extracted from a cached near-match solution:
/// for each distinct interval, the cached machine labels of its
/// occurrences (in canonical occurrence order). Cheap to clone (shared).
///
/// Consumers (currently `exact-bb`) rebuild a candidate schedule by
/// grouping hinted jobs that carry the same label onto one machine and
/// first-fitting everything else, then adopt it as the starting incumbent
/// when it beats the approximation warm starts. Equal intervals always
/// overlap, hence always share a connected component — so a hint built
/// from the whole instance stays coherent under component decomposition.
#[derive(Clone, Debug, Default)]
pub struct WarmStart {
    hints: Arc<HashMap<Interval, Vec<usize>>>,
}

impl WarmStart {
    /// The cached machine labels for occurrences of `iv`, if any.
    pub fn labels(&self, iv: &Interval) -> Option<&[usize]> {
        self.hints.get(iv).map(Vec::as_slice)
    }

    /// Distinct intervals carrying hints.
    pub fn len(&self) -> usize {
        self.hints.len()
    }

    /// True when the hint carries no information.
    pub fn is_empty(&self) -> bool {
        self.hints.is_empty()
    }
}

/// Point-in-time counters for `/healthz` and logs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Live entries.
    pub entries: usize,
    /// Configured capacity (0 = disabled).
    pub capacity: usize,
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Near-match warm-start hints handed out.
    pub warm_starts: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when no lookups have happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry {
    id: u64,
    hash: u64,
    jobs: Vec<Interval>,
    g: u32,
    fingerprint: SolveFingerprint,
    /// Assignment in canonical order; everything else verbatim.
    report: SolveReport,
    tick: u64,
}

struct Inner {
    capacity: usize,
    tick: u64,
    next_id: u64,
    entries: HashMap<u64, Entry>,
    /// content hash → entry ids (collisions resolved by equality scan)
    buckets: HashMap<u64, Vec<u64>>,
    /// LRU order: tick → entry id (oldest first)
    order: BTreeMap<u64, u64>,
    hits: u64,
    misses: u64,
    warm_starts: u64,
}

/// How many (most recently used) entries [`SolutionCache::warm_hint`]
/// examines before giving up — keeps the near-match scan O(1)-ish on a
/// full cache.
const WARM_SCAN_LIMIT: usize = 256;

/// A process-wide LRU memo of validated [`SolveReport`]s keyed by
/// [`CanonicalInstance`] + [`SolveFingerprint`]. Clones share one cache
/// (`Arc<Mutex<…>>`), mirroring the PR 5 `SharedFeatureCache`; a capacity
/// of 0 disables it entirely (every operation is a no-op).
///
/// ```
/// use busytime_core::memo::{CanonicalInstance, SolutionCache, SolveFingerprint};
/// use busytime_core::{Instance, SolveRequest};
///
/// let cache = SolutionCache::new(16);
/// let inst = Instance::from_pairs([(0, 4), (1, 5)], 2);
/// let fp = SolveFingerprint { solver: "first-fit".into(), seed: 0, decompose: true };
/// let canon = CanonicalInstance::of(&inst);
/// assert!(cache.lookup(&canon, &fp).is_none());
/// let report = SolveRequest::new(&inst).solver("first-fit").solve().unwrap();
/// cache.insert(&canon, &fp, &report);
/// // a permuted copy of the instance hits the same entry
/// let permuted = Instance::from_pairs([(1, 5), (0, 4)], 2);
/// let hit = cache
///     .lookup(&CanonicalInstance::of(&permuted), &fp)
///     .expect("permuted instance hits");
/// assert!(hit.cached);
/// hit.schedule.validate(&permuted).unwrap();
/// ```
#[derive(Clone)]
pub struct SolutionCache {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for SolutionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("SolutionCache")
            .field("entries", &stats.entries)
            .field("capacity", &stats.capacity)
            .field("hits", &stats.hits)
            .field("misses", &stats.misses)
            .field("warm_starts", &stats.warm_starts)
            .finish()
    }
}

impl SolutionCache {
    /// A cache holding at most `capacity` reports (LRU eviction); 0
    /// disables the cache.
    pub fn new(capacity: usize) -> Self {
        SolutionCache {
            inner: Arc::new(Mutex::new(Inner {
                capacity,
                tick: 0,
                next_id: 0,
                entries: HashMap::new(),
                buckets: HashMap::new(),
                order: BTreeMap::new(),
                hits: 0,
                misses: 0,
                warm_starts: 0,
            })),
        }
    }

    /// True when the capacity is 0 and every operation is a no-op.
    pub fn is_disabled(&self) -> bool {
        self.lock().capacity == 0
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // a poisoned cache only means another thread panicked mid-update;
        // the structure itself is still coherent (no partial states span
        // an unwind point)
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Looks up a solve for this exact canonical instance + fingerprint.
    /// On a hit, returns the stored report with the assignment remapped to
    /// the caller's job order and `cached: true`; counts a miss otherwise.
    pub fn lookup(&self, canon: &CanonicalInstance, fp: &SolveFingerprint) -> Option<SolveReport> {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return None;
        }
        let key = entry_key(canon, fp);
        match inner.find_and_touch(key, canon, fp) {
            Some(mut report) => {
                inner.hits += 1;
                drop(inner);
                let assign = canon.assignment_to_original(report.schedule.assignment());
                report.schedule = Schedule::from_assignment(assign);
                report.cached = true;
                Some(report)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a finished solve. Only clean reports are accepted: not
    /// deadline-cut, not budget-cut, and the schedule (remapped to
    /// canonical order) must validate against the canonical instance —
    /// so a later hit can skip validation at any level.
    pub fn insert(&self, canon: &CanonicalInstance, fp: &SolveFingerprint, report: &SolveReport) {
        if report.deadline_hit
            || report.budget_exhausted
            || report.schedule.assignment().len() != canon.len()
        {
            return;
        }
        let canonical_assign = canon.assignment_to_canonical(report.schedule.assignment());
        let schedule = Schedule::from_assignment(canonical_assign);
        if schedule.validate(&canon.to_instance()).is_err() {
            return;
        }
        let mut stored = report.clone();
        stored.schedule = schedule;
        stored.cached = false;

        let mut inner = self.lock();
        if inner.capacity == 0 {
            return;
        }
        let key = entry_key(canon, fp);
        inner.insert(key, canon, fp, stored);
    }

    /// Finds a cached entry whose job multiset is within `edit_budget`
    /// insertions/deletions of `canon` (same `g`) and packages its machine
    /// grouping as a [`WarmStart`]. Scans at most 256 of the most recently
    /// used entries. Counts toward [`CacheStats::warm_starts`] when a hint
    /// is produced.
    pub fn warm_hint(&self, canon: &CanonicalInstance, edit_budget: usize) -> Option<WarmStart> {
        let mut inner = self.lock();
        if inner.capacity == 0 {
            return None;
        }
        let mut best: Option<(usize, u64)> = None;
        for (_, &id) in inner.order.iter().rev().take(WARM_SCAN_LIMIT) {
            let entry = &inner.entries[&id];
            if entry.g != canon.g() {
                continue;
            }
            let n_diff = entry.jobs.len().abs_diff(canon.len());
            if n_diff > edit_budget {
                continue;
            }
            if let Some(dist) = multiset_distance(&entry.jobs, canon.jobs(), edit_budget) {
                if best.is_none_or(|(d, _)| dist < d) {
                    best = Some((dist, id));
                    if dist == 0 {
                        break;
                    }
                }
            }
        }
        let (_, id) = best?;
        let entry = &inner.entries[&id];
        let mut hints: HashMap<Interval, Vec<usize>> = HashMap::new();
        for (iv, &machine) in entry.jobs.iter().zip(entry.report.schedule.assignment()) {
            hints.entry(*iv).or_default().push(machine);
        }
        inner.warm_starts += 1;
        Some(WarmStart {
            hints: Arc::new(hints),
        })
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            entries: inner.entries.len(),
            capacity: inner.capacity,
            hits: inner.hits,
            misses: inner.misses,
            warm_starts: inner.warm_starts,
        }
    }
}

/// The combined hash an entry is bucketed under: canonical content hash
/// mixed with the fingerprint.
fn entry_key(canon: &CanonicalInstance, fp: &SolveFingerprint) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(canon.hash());
    fp.hash_into(&mut h);
    h.finish()
}

/// Symmetric difference of two sorted interval multisets, or `None` when
/// it exceeds `budget` (early exit — a merge walk, no allocation).
fn multiset_distance(a: &[Interval], b: &[Interval], budget: usize) -> Option<usize> {
    let (mut i, mut j, mut dist) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        match (a[i].start, a[i].end).cmp(&(b[j].start, b[j].end)) {
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => {
                i += 1;
                dist += 1;
            }
            std::cmp::Ordering::Greater => {
                j += 1;
                dist += 1;
            }
        }
        if dist > budget {
            return None;
        }
    }
    dist += (a.len() - i) + (b.len() - j);
    (dist <= budget).then_some(dist)
}

impl Inner {
    fn find_and_touch(
        &mut self,
        key: u64,
        canon: &CanonicalInstance,
        fp: &SolveFingerprint,
    ) -> Option<SolveReport> {
        let ids = self.buckets.get(&key)?;
        let id = *ids.iter().find(|id| {
            let e = &self.entries[id];
            e.g == canon.g() && e.jobs == canon.jobs() && &e.fingerprint == fp
        })?;
        self.touch(id);
        Some(self.entries[&id].report.clone())
    }

    fn touch(&mut self, id: u64) {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.entries.get_mut(&id).expect("touched entry exists");
        self.order.remove(&entry.tick);
        entry.tick = tick;
        self.order.insert(tick, id);
    }

    fn insert(
        &mut self,
        key: u64,
        canon: &CanonicalInstance,
        fp: &SolveFingerprint,
        report: SolveReport,
    ) {
        // a duplicate insert refreshes the existing entry instead of
        // storing a twin
        if let Some(ids) = self.buckets.get(&key) {
            if let Some(&id) = ids.iter().find(|id| {
                let e = &self.entries[id];
                e.g == canon.g() && e.jobs == canon.jobs() && &e.fingerprint == fp
            }) {
                self.touch(id);
                self.entries.get_mut(&id).expect("entry exists").report = report;
                return;
            }
        }
        while self.entries.len() >= self.capacity {
            let (&oldest_tick, &oldest_id) = self
                .order
                .iter()
                .next()
                .expect("non-empty cache has an order entry");
            self.order.remove(&oldest_tick);
            let evicted = self
                .entries
                .remove(&oldest_id)
                .expect("evicted entry exists");
            if let Some(ids) = self.buckets.get_mut(&evicted.hash) {
                ids.retain(|&id| id != oldest_id);
                if ids.is_empty() {
                    self.buckets.remove(&evicted.hash);
                }
            }
        }
        self.tick += 1;
        self.next_id += 1;
        let id = self.next_id;
        self.buckets.entry(key).or_default().push(id);
        self.order.insert(self.tick, id);
        self.entries.insert(
            id,
            Entry {
                id,
                hash: key,
                jobs: canon.jobs().to_vec(),
                g: canon.g(),
                fingerprint: fp.clone(),
                report,
                tick: self.tick,
            },
        );
        debug_assert!(self.entries.len() <= self.capacity);
        debug_assert!(self.entries.values().all(|e| e.id <= self.next_id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::SolveRequest;

    fn report_for(inst: &Instance, solver: &str) -> SolveReport {
        SolveRequest::new(inst).solver(solver).solve().unwrap()
    }

    fn fp(solver: &str) -> SolveFingerprint {
        SolveFingerprint {
            solver: solver.to_string(),
            seed: 0,
            decompose: true,
        }
    }

    #[test]
    fn canonical_hash_is_permutation_invariant() {
        let a = Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 2);
        let b = Instance::from_pairs([(6, 9), (0, 4), (1, 5)], 2);
        assert_eq!(canonical_hash(&a), canonical_hash(&b));
        // equality ignores the per-caller permutation: permuted-identical
        // instances share one canonical form
        assert_eq!(CanonicalInstance::of(&a), CanonicalInstance::of(&b));
        assert_ne!(
            CanonicalInstance::of(&a),
            CanonicalInstance::of(&Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 3))
        );
    }

    #[test]
    fn canonical_hash_distinguishes_g_and_jobs() {
        let a = Instance::from_pairs([(0, 4), (1, 5)], 2);
        let g3 = Instance::from_pairs([(0, 4), (1, 5)], 3);
        let other = Instance::from_pairs([(0, 4), (1, 6)], 2);
        assert_ne!(canonical_hash(&a), canonical_hash(&g3));
        assert_ne!(canonical_hash(&a), canonical_hash(&other));
    }

    #[test]
    fn assignment_remap_round_trips() {
        let inst = Instance::from_pairs([(6, 9), (0, 4), (1, 5)], 2);
        let canon = CanonicalInstance::of(&inst);
        let original = vec![2usize, 0, 1];
        let canonical = canon.assignment_to_canonical(&original);
        // canonical order is (0,4), (1,5), (6,9) = original ids 1, 2, 0
        assert_eq!(canonical, vec![0, 1, 2]);
        assert_eq!(canon.assignment_to_original(&canonical), original);
    }

    #[test]
    fn hit_returns_valid_remapped_schedule() {
        let cache = SolutionCache::new(8);
        let inst = Instance::from_pairs([(0, 4), (1, 5), (6, 9), (6, 9)], 2);
        let report = report_for(&inst, "first-fit");
        cache.insert(&CanonicalInstance::of(&inst), &fp("first-fit"), &report);
        let permuted = Instance::from_pairs([(6, 9), (1, 5), (6, 9), (0, 4)], 2);
        let hit = cache
            .lookup(&CanonicalInstance::of(&permuted), &fp("first-fit"))
            .expect("permutation hits");
        assert!(hit.cached);
        assert_eq!(hit.cost, report.cost);
        hit.schedule.validate(&permuted).unwrap();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
    }

    #[test]
    fn fingerprint_separates_solvers_and_seeds() {
        let cache = SolutionCache::new(8);
        let inst = Instance::from_pairs([(0, 4), (1, 5)], 2);
        let canon = CanonicalInstance::of(&inst);
        cache.insert(&canon, &fp("first-fit"), &report_for(&inst, "first-fit"));
        assert!(cache.lookup(&canon, &fp("best-fit")).is_none());
        let seeded = SolveFingerprint {
            seed: 7,
            ..fp("first-fit")
        };
        assert!(cache.lookup(&canon, &seeded).is_none());
        assert!(cache.lookup(&canon, &fp("first-fit")).is_some());
    }

    #[test]
    fn cut_reports_are_refused() {
        let cache = SolutionCache::new(8);
        let inst = Instance::from_pairs([(0, 4), (1, 5)], 2);
        let canon = CanonicalInstance::of(&inst);
        let mut report = report_for(&inst, "first-fit");
        report.deadline_hit = true;
        cache.insert(&canon, &fp("first-fit"), &report);
        assert_eq!(cache.stats().entries, 0);
        report.deadline_hit = false;
        report.budget_exhausted = true;
        cache.insert(&canon, &fp("first-fit"), &report);
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = SolutionCache::new(2);
        let instances: Vec<Instance> = (0..3)
            .map(|i| Instance::from_pairs([(i, i + 4), (i + 1, i + 5)], 2))
            .collect();
        for inst in &instances {
            cache.insert(
                &CanonicalInstance::of(inst),
                &fp("first-fit"),
                &report_for(inst, "first-fit"),
            );
        }
        assert_eq!(cache.stats().entries, 2);
        // 0 was evicted; 1 and 2 remain
        assert!(cache
            .lookup(&CanonicalInstance::of(&instances[0]), &fp("first-fit"))
            .is_none());
        assert!(cache
            .lookup(&CanonicalInstance::of(&instances[1]), &fp("first-fit"))
            .is_some());
        // touching 1 makes 2 the eviction candidate
        cache.insert(
            &CanonicalInstance::of(&instances[0]),
            &fp("first-fit"),
            &report_for(&instances[0], "first-fit"),
        );
        assert!(cache
            .lookup(&CanonicalInstance::of(&instances[2]), &fp("first-fit"))
            .is_none());
        assert!(cache
            .lookup(&CanonicalInstance::of(&instances[1]), &fp("first-fit"))
            .is_some());
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = SolutionCache::new(0);
        assert!(cache.is_disabled());
        let inst = Instance::from_pairs([(0, 4)], 2);
        let canon = CanonicalInstance::of(&inst);
        cache.insert(&canon, &fp("first-fit"), &report_for(&inst, "first-fit"));
        assert!(cache.lookup(&canon, &fp("first-fit")).is_none());
        assert!(cache.warm_hint(&canon, 2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.entries, stats.hits, stats.misses), (0, 0, 0));
    }

    #[test]
    fn warm_hint_matches_within_edit_budget() {
        let cache = SolutionCache::new(8);
        let inst = Instance::from_pairs([(0, 4), (0, 4), (10, 14), (10, 14)], 2);
        cache.insert(
            &CanonicalInstance::of(&inst),
            &fp("first-fit"),
            &report_for(&inst, "first-fit"),
        );
        // one job added: within budget 1
        let neighbor = Instance::from_pairs([(0, 4), (0, 4), (10, 14), (10, 14), (20, 24)], 2);
        let warm = cache
            .warm_hint(&CanonicalInstance::of(&neighbor), 1)
            .expect("±1 job neighbor warm-starts");
        assert_eq!(
            warm.labels(&Interval::new(0, 4)).map(<[usize]>::len),
            Some(2)
        );
        assert!(warm.labels(&Interval::new(20, 24)).is_none());
        // three jobs away: outside budget 1
        let far = Instance::from_pairs([(50, 54)], 2);
        assert!(cache.warm_hint(&CanonicalInstance::of(&far), 1).is_none());
        assert_eq!(cache.stats().warm_starts, 1);
    }

    #[test]
    fn multiset_distance_walk() {
        let a = [Interval::new(0, 4), Interval::new(1, 5)];
        let b = [Interval::new(0, 4), Interval::new(2, 6)];
        assert_eq!(multiset_distance(&a, &a, 0), Some(0));
        assert_eq!(multiset_distance(&a, &b, 2), Some(2));
        assert_eq!(multiset_distance(&a, &b, 1), None);
        assert_eq!(multiset_distance(&a, &[], 2), Some(2));
    }
}
