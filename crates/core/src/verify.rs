//! Structural verification: checks that concrete schedules exhibit the
//! combinatorial structure the paper's proofs rely on.
//!
//! Apart from [`check_schedule`] — the named feasibility gate of the
//! deadline contract — these are *not* feasibility checks (see
//! [`Schedule::validate`]); they verify the internal invariants of the
//! analysis itself on real runs:
//!
//! * [`observation_2_2`] — the blocking witnesses of FirstFit: a job placed
//!   on machine `M_i` was rejected by every earlier machine `M_k` because
//!   some time in the job saw `g` no-shorter jobs there (Fig. 1).
//! * [`lemma_2_3`] — `len(J_i) ≥ (g/3)·span(J_{i+1})` for consecutive
//!   FirstFit machines (Fig. 2/3), the engine of the 4-approximation.
//! * [`theorem_3_1_claims`] — `N_t ≥ (M_t − 2)·g + 2` at every time for the
//!   Greedy schedule on proper instances (Claim 1), which yields
//!   `M^O_t ≥ M^A_t − 1` (Claim 2) and `ALG ≤ OPT + span`.
//!
//! The lab experiments and property tests run these on every random
//! FirstFit/Greedy execution — a reproduction of the *proofs*, not only of
//! the end-to-end ratios.

use busytime_interval::{span, sweep, Interval};

use crate::instance::Instance;
use crate::schedule::{Schedule, ScheduleViolation};

/// Full feasibility check of a schedule against its instance: every job
/// assigned, machine ids dense, and no machine ever running more than `g`
/// jobs at once. Delegates to [`Schedule::validate`]; it exists here so the
/// deadline contract has one named check — an incumbent returned by a
/// deadline-cut solver must still pass `check_schedule`, no matter how
/// early the cut came.
pub fn check_schedule(inst: &Instance, sched: &Schedule) -> Result<(), ScheduleViolation> {
    sched.validate(inst)
}

/// Checks Observation 2.2 on a FirstFit schedule produced with the given
/// processing order (`order[r]` = the job placed r-th).
///
/// For every job `J` on machine `M_i` (i ≥ 1, 0-based) and every earlier
/// machine `M_k` (k < i), there must be a time `t ∈ J` at which `M_k` runs
/// `g` jobs, all processed before `J` (hence no shorter). Returns the first
/// violation as `(job, earlier_machine)`.
pub fn observation_2_2(
    inst: &Instance,
    sched: &Schedule,
    order: &[usize],
) -> Result<(), (usize, usize)> {
    let g = inst.g() as usize;
    let mut rank = vec![0usize; inst.len()];
    for (r, &id) in order.iter().enumerate() {
        rank[id] = r;
    }
    let machines = sched.machine_jobs();
    for (i, jobs) in machines.iter().enumerate().skip(1) {
        for &j in jobs {
            let iv = inst.job(j);
            for (k, earlier) in machines.iter().enumerate().take(i) {
                // jobs on M_k processed before J, clipped to J
                let clipped: Vec<Interval> = earlier
                    .iter()
                    .filter(|&&j2| rank[j2] < rank[j])
                    .filter_map(|&j2| inst.job(j2).intersection(&iv))
                    .collect();
                if sweep::max_overlap(&clipped) < g {
                    return Err((j, k));
                }
            }
        }
    }
    Ok(())
}

/// Checks Lemma 2.3 on a FirstFit schedule: for every consecutive machine
/// pair, `3·len(J_i) ≥ g·span(J_{i+1})` (integer form of
/// `len(J_i) ≥ (g/3)·span(J_{i+1})`). Returns the first violating machine
/// index `i`.
pub fn lemma_2_3(inst: &Instance, sched: &Schedule) -> Result<(), usize> {
    let machines = sched.machine_jobs();
    let g = i64::from(inst.g());
    for i in 0..machines.len().saturating_sub(1) {
        let len_i: i64 = machines[i].iter().map(|&j| inst.job(j).len()).sum();
        let next: Vec<Interval> = machines[i + 1].iter().map(|&j| inst.job(j)).collect();
        if 3 * len_i < g * span(&next) {
            return Err(i);
        }
    }
    Ok(())
}

/// Checks Claim 1 inside Theorem 3.1 on a Greedy (NextFit) schedule of a
/// proper instance: at every time `t`, with `M_t` = number of busy machines
/// and `N_t` = number of active jobs, `N_t ≥ (M_t − 2)·g + 2`. Returns a
/// violating doubled coordinate if any.
pub fn theorem_3_1_claims(inst: &Instance, sched: &Schedule) -> Result<(), i64> {
    let g = i64::from(inst.g());
    // event coordinates: all job endpoints (doubled)
    let mut keys: Vec<i64> = Vec::with_capacity(2 * inst.len());
    for iv in inst.jobs() {
        keys.push(iv.dkey_lo());
        keys.push(iv.dkey_hi() - 1);
    }
    keys.sort_unstable();
    keys.dedup();
    let machines = sched.machine_jobs();
    for &key in &keys {
        let active_jobs = inst
            .jobs()
            .iter()
            .filter(|iv| iv.dkey_lo() <= key && key < iv.dkey_hi())
            .count() as i64;
        let busy_machines = machines
            .iter()
            .filter(|jobs| {
                jobs.iter().any(|&j| {
                    let iv = inst.job(j);
                    iv.dkey_lo() <= key && key < iv.dkey_hi()
                })
            })
            .count() as i64;
        if active_jobs < (busy_machines - 2) * g + 2 {
            return Err(key);
        }
    }
    Ok(())
}

/// Checks Claim 2 inside Theorem 3.1 against a *reference* schedule
/// (typically an optimum): at every time `t`, the reference uses at least
/// `M^A_t − 1` busy machines, where `M^A_t` counts the checked schedule's
/// busy machines. Returns a violating doubled coordinate if any.
///
/// For proper instances and Greedy schedules the claim is a theorem; for
/// anything else it is a diagnostic.
pub fn claim_2_vs_reference(
    inst: &Instance,
    checked: &Schedule,
    reference: &Schedule,
) -> Result<(), i64> {
    let mut keys: Vec<i64> = Vec::with_capacity(2 * inst.len());
    for iv in inst.jobs() {
        keys.push(iv.dkey_lo());
        keys.push(iv.dkey_hi() - 1);
    }
    keys.sort_unstable();
    keys.dedup();
    let busy_at = |sched: &Schedule, key: i64| -> i64 {
        sched
            .machine_jobs()
            .iter()
            .filter(|jobs| {
                jobs.iter().any(|&j| {
                    let iv = inst.job(j);
                    iv.dkey_lo() <= key && key < iv.dkey_hi()
                })
            })
            .count() as i64
    };
    for &key in &keys {
        if busy_at(reference, key) < busy_at(checked, key) - 1 {
            return Err(key);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{FirstFit, NextFitProper, Scheduler};

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_instance(seed: u64, n: usize, horizon: i64, max_len: i64, g: u32) -> Instance {
        let mut state = seed;
        let jobs: Vec<Interval> = (0..n)
            .map(|_| {
                let s = (splitmix(&mut state) % horizon as u64) as i64;
                let l = 1 + (splitmix(&mut state) % max_len as u64) as i64;
                Interval::new(s, s + l)
            })
            .collect();
        Instance::new(jobs, g)
    }

    #[test]
    fn observation_2_2_holds_on_first_fit_runs() {
        for seed in 0..20 {
            let inst = random_instance(seed, 40, 50, 20, 3);
            let ff = FirstFit::paper();
            let sched = ff.schedule(&inst).unwrap();
            let order = ff.job_order(&inst);
            assert_eq!(
                observation_2_2(&inst, &sched, &order),
                Ok(()),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn lemma_2_3_holds_on_first_fit_runs() {
        for seed in 0..20 {
            let inst = random_instance(seed, 50, 60, 25, 4);
            let sched = FirstFit::paper().schedule(&inst).unwrap();
            assert_eq!(lemma_2_3(&inst, &sched), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn claim_1_holds_on_greedy_proper_runs() {
        for seed in 0..20 {
            // proper family: staggered fixed-length jobs with jitter in start
            let mut state = seed;
            let mut start = 0i64;
            let jobs: Vec<Interval> = (0..40)
                .map(|_| {
                    start += (splitmix(&mut state) % 3) as i64;
                    Interval::new(start, start + 10)
                })
                .collect();
            let inst = Instance::new(jobs, 3);
            assert!(inst.is_proper());
            let sched = NextFitProper::new().schedule(&inst).unwrap();
            assert_eq!(theorem_3_1_claims(&inst, &sched), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn claim_2_accepts_identical_schedules() {
        let inst = Instance::from_pairs([(0, 4), (1, 5), (2, 6)], 2);
        let sched = NextFitProper::new().schedule(&inst).unwrap();
        assert_eq!(claim_2_vs_reference(&inst, &sched, &sched), Ok(()));
    }

    #[test]
    fn claim_2_detects_machine_blowup() {
        // checked spreads 4 compatible jobs over 4 machines; reference packs
        // them on 1 → difference of 3 > 1 at any active time
        let inst = Instance::from_pairs([(0, 10), (0, 10), (0, 10), (0, 10)], 4);
        let wasteful = Schedule::from_assignment(vec![0, 1, 2, 3]);
        let packed = Schedule::from_assignment(vec![0, 0, 0, 0]);
        assert!(claim_2_vs_reference(&inst, &wasteful, &packed).is_err());
        assert_eq!(claim_2_vs_reference(&inst, &packed, &wasteful), Ok(()));
    }

    #[test]
    fn observation_2_2_detects_corruption() {
        // force a bogus schedule: everything on separate machines although
        // machine 0 never blocks anything → witness must fail
        let inst = Instance::from_pairs([(0, 10), (20, 30)], 2);
        let sched = Schedule::from_assignment(vec![0, 1]);
        let order = vec![0, 1];
        assert_eq!(observation_2_2(&inst, &sched, &order), Err((1, 0)));
    }

    #[test]
    fn lemma_2_3_detects_corruption() {
        // machine 0 short job, machine 1 long job: 3·2 < 2·20
        let inst = Instance::from_pairs([(0, 2), (0, 20)], 2);
        let sched = Schedule::from_assignment(vec![0, 1]);
        assert_eq!(lemma_2_3(&inst, &sched), Err(0));
    }
}
