//! Schedules: assignments of jobs to machines, their cost and validation.

use busytime_interval::{span, sweep, Interval, IntervalSet};

use crate::instance::{Instance, JobId};

/// Index of a machine within a [`Schedule`]. Machine ids are dense:
/// `0..machine_count`.
pub type MachineId = usize;

/// An assignment of every job of an [`Instance`] to a machine.
///
/// Stored as `assignment[job] = machine`. The cost of a schedule is
/// `Σ_i span(J_i)` — each machine pays the measure of the union of its jobs'
/// intervals (its busy time; Section 1.1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    assignment: Vec<MachineId>,
    machine_count: usize,
}

/// A way in which a purported schedule fails validation; produced by
/// [`Schedule::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// The assignment vector length differs from the instance's job count.
    WrongJobCount {
        /// Number of entries in the assignment.
        got: usize,
        /// Number of jobs in the instance.
        expected: usize,
    },
    /// A machine id is out of the dense range `0..machine_count`.
    MachineOutOfRange {
        /// The offending job.
        job: JobId,
        /// Its machine id.
        machine: MachineId,
    },
    /// A machine id in `0..machine_count` has no jobs (ids must be dense).
    EmptyMachine {
        /// The unused machine id.
        machine: MachineId,
    },
    /// Some machine processes more than `g` jobs simultaneously.
    CapacityExceeded {
        /// The overloaded machine.
        machine: MachineId,
        /// The overlap reached.
        overlap: usize,
        /// The allowed parallelism.
        g: u32,
    },
}

impl std::fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleViolation::WrongJobCount { got, expected } => {
                write!(f, "assignment covers {got} jobs, instance has {expected}")
            }
            ScheduleViolation::MachineOutOfRange { job, machine } => {
                write!(f, "job {job} assigned to out-of-range machine {machine}")
            }
            ScheduleViolation::EmptyMachine { machine } => {
                write!(f, "machine {machine} has no jobs (ids must be dense)")
            }
            ScheduleViolation::CapacityExceeded {
                machine,
                overlap,
                g,
            } => {
                write!(f, "machine {machine} runs {overlap} jobs at once (g = {g})")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

impl Schedule {
    /// Builds a schedule from an assignment vector, compacting machine ids
    /// to `0..machine_count` while preserving their relative numeric order.
    ///
    /// Order preservation matters: schedulers number machines in opening
    /// order, and the paper's analysis (Observation 2.2, Lemma 2.3) is
    /// stated over that order — [`crate::verify`] relies on it surviving
    /// construction.
    pub fn from_assignment(raw: Vec<MachineId>) -> Self {
        let mut ids: Vec<MachineId> = raw.clone();
        ids.sort_unstable();
        ids.dedup();
        let assignment = raw
            .into_iter()
            .map(|m| ids.binary_search(&m).expect("id present"))
            .collect();
        Schedule {
            machine_count: ids.len(),
            assignment,
        }
    }

    /// The machine of each job.
    pub fn assignment(&self) -> &[MachineId] {
        &self.assignment
    }

    /// The machine of job `id`.
    pub fn machine_of(&self, id: JobId) -> MachineId {
        self.assignment[id]
    }

    /// Number of machines used.
    pub fn machine_count(&self) -> usize {
        self.machine_count
    }

    /// Job ids grouped by machine.
    pub fn machine_jobs(&self) -> Vec<Vec<JobId>> {
        let mut groups = vec![Vec::new(); self.machine_count];
        for (job, &m) in self.assignment.iter().enumerate() {
            groups[m].push(job);
        }
        groups
    }

    /// Busy set (union of job intervals) of each machine.
    pub fn machine_busy_sets(&self, inst: &Instance) -> Vec<IntervalSet> {
        let mut sets = vec![IntervalSet::new(); self.machine_count];
        for (job, &m) in self.assignment.iter().enumerate() {
            sets[m].insert(inst.job(job));
        }
        sets
    }

    /// Busy time of one machine: `span(J_i)`.
    pub fn machine_cost(&self, inst: &Instance, machine: MachineId) -> i64 {
        let jobs: Vec<Interval> = self
            .assignment
            .iter()
            .enumerate()
            .filter(|&(_, &m)| m == machine)
            .map(|(j, _)| inst.job(j))
            .collect();
        span(&jobs)
    }

    /// Total busy time — the objective `Σ_i span(J_i)`.
    ///
    /// ```
    /// use busytime_core::{Instance, Schedule};
    /// let inst = Instance::from_pairs([(0, 4), (2, 6), (10, 12)], 2);
    /// // all three on one machine: union [0,6] ∪ [10,12] → 6 + 2
    /// let sched = Schedule::from_assignment(vec![0, 0, 0]);
    /// assert_eq!(sched.cost(&inst), 8);
    /// ```
    pub fn cost(&self, inst: &Instance) -> i64 {
        self.machine_busy_sets(inst)
            .iter()
            .map(|s| s.measure())
            .sum()
    }

    /// Total *hull* cost `Σ_i (max c − min s)`: what the schedule would cost
    /// if machines could not idle inside their busy interval. Diagnostic —
    /// equals [`Schedule::cost`] after [`Schedule::normalize_contiguous`].
    pub fn hull_cost(&self, inst: &Instance) -> i64 {
        self.machine_busy_sets(inst)
            .iter()
            .filter_map(|s| s.hull())
            .map(|h| h.len())
            .sum()
    }

    /// Splits every machine whose busy period is disconnected into one
    /// machine per maximal busy interval. Cost-preserving (the paper's
    /// "w.l.o.g. each machine is busy along a contiguous interval",
    /// Section 1.1); the result satisfies `hull_cost == cost`.
    pub fn normalize_contiguous(&self, inst: &Instance) -> Schedule {
        let mut raw = vec![0usize; self.assignment.len()];
        let mut next = 0usize;
        for jobs in self.machine_jobs() {
            let intervals: Vec<Interval> = jobs.iter().map(|&j| inst.job(j)).collect();
            let comps = sweep::connected_components(&intervals);
            for comp in comps {
                for local in comp {
                    raw[jobs[local]] = next;
                }
                next += 1;
            }
        }
        Schedule::from_assignment(raw)
    }

    /// Checks that the schedule is feasible for `inst`: complete assignment,
    /// dense machine ids, and no machine ever exceeding parallelism `g`.
    pub fn validate(&self, inst: &Instance) -> Result<(), ScheduleViolation> {
        if self.assignment.len() != inst.len() {
            return Err(ScheduleViolation::WrongJobCount {
                got: self.assignment.len(),
                expected: inst.len(),
            });
        }
        for (job, &m) in self.assignment.iter().enumerate() {
            if m >= self.machine_count {
                return Err(ScheduleViolation::MachineOutOfRange { job, machine: m });
            }
        }
        for (machine, jobs) in self.machine_jobs().into_iter().enumerate() {
            if jobs.is_empty() {
                return Err(ScheduleViolation::EmptyMachine { machine });
            }
            let intervals: Vec<Interval> = jobs.iter().map(|&j| inst.job(j)).collect();
            let overlap = sweep::max_overlap(&intervals);
            if overlap > inst.g() as usize {
                return Err(ScheduleViolation::CapacityExceeded {
                    machine,
                    overlap,
                    g: inst.g(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst() -> Instance {
        Instance::from_pairs([(0, 4), (2, 6), (8, 10), (9, 12)], 2)
    }

    #[test]
    fn dense_renumbering_preserves_order() {
        let s = Schedule::from_assignment(vec![7, 7, 3, 9]);
        // ids compact to ranks: 3 → 0, 7 → 1, 9 → 2
        assert_eq!(s.assignment(), &[1, 1, 0, 2]);
        assert_eq!(s.machine_count(), 3);
        assert_eq!(s.machine_of(3), 2);
    }

    #[test]
    fn cost_union_per_machine() {
        let s = Schedule::from_assignment(vec![0, 0, 1, 1]);
        // machine 0: [0,4] ∪ [2,6] = [0,6] → 6; machine 1: [8,10] ∪ [9,12] = [8,12] → 4
        assert_eq!(s.cost(&inst()), 10);
        assert_eq!(s.machine_cost(&inst(), 0), 6);
        assert_eq!(s.machine_cost(&inst(), 1), 4);
    }

    #[test]
    fn gap_on_machine_costs_nothing() {
        let s = Schedule::from_assignment(vec![0, 0, 0, 0]);
        // all on one machine: union = [0,6] ∪ [8,12] → 6 + 4 = 10, hull = 12
        assert_eq!(s.cost(&inst()), 10);
        assert_eq!(s.hull_cost(&inst()), 12);
    }

    #[test]
    fn normalize_splits_disconnected_machines() {
        let s = Schedule::from_assignment(vec![0, 0, 0, 0]);
        let norm = s.normalize_contiguous(&inst());
        assert_eq!(norm.machine_count(), 2);
        assert_eq!(norm.cost(&inst()), s.cost(&inst()));
        assert_eq!(norm.hull_cost(&inst()), norm.cost(&inst()));
        norm.validate(&inst()).unwrap();
    }

    #[test]
    fn validate_accepts_feasible() {
        let s = Schedule::from_assignment(vec![0, 0, 1, 1]);
        assert_eq!(s.validate(&inst()), Ok(()));
    }

    #[test]
    fn validate_rejects_capacity() {
        // g = 1 forbids co-scheduling overlapping jobs
        let tight = Instance::from_pairs([(0, 4), (2, 6)], 1);
        let s = Schedule::from_assignment(vec![0, 0]);
        match s.validate(&tight) {
            Err(ScheduleViolation::CapacityExceeded {
                machine: 0,
                overlap: 2,
                g: 1,
            }) => {}
            other => panic!("expected capacity violation, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_wrong_length() {
        let s = Schedule::from_assignment(vec![0, 0]);
        assert!(matches!(
            s.validate(&inst()),
            Err(ScheduleViolation::WrongJobCount {
                got: 2,
                expected: 4
            })
        ));
    }

    #[test]
    fn capacity_check_counts_endpoint_touch() {
        let touch = Instance::from_pairs([(0, 5), (5, 9)], 1);
        let together = Schedule::from_assignment(vec![0, 0]);
        assert!(together.validate(&touch).is_err());
        let apart = Schedule::from_assignment(vec![0, 1]);
        assert!(apart.validate(&touch).is_ok());
    }

    #[test]
    fn violation_messages_render() {
        let v = ScheduleViolation::CapacityExceeded {
            machine: 3,
            overlap: 5,
            g: 2,
        };
        assert!(v.to_string().contains("machine 3"));
        let v = ScheduleViolation::EmptyMachine { machine: 1 };
        assert!(v.to_string().contains("machine 1"));
    }

    #[test]
    fn machine_jobs_groups() {
        let s = Schedule::from_assignment(vec![0, 1, 0, 1]);
        assert_eq!(s.machine_jobs(), vec![vec![0, 2], vec![1, 3]]);
    }
}
