//! The shared parallel executor: scoped-thread worker pools.
//!
//! Both the experiment harness (`busytime-lab`) and the batch solve server
//! (`busytime-server`) fan independent solves out over cores; this module
//! is the one executor they share. [`par_map_with`] runs a fixed number of
//! workers over a shared atomic cursor (simple work stealing that balances
//! heavily skewed item costs, e.g. exact solving next to first-fit), and
//! writes results into pre-allocated slots so the output order matches the
//! input order regardless of scheduling. [`par_map`] is the
//! all-available-cores convenience wrapper.
//!
//! [`par_map_deadline_with`] is the deadline-enforcing variant the batch
//! server uses: each item gets a per-item [`CancelToken`] armed when a
//! worker picks the item up, and the pool stamps every completion with its
//! elapsed time and an `over_deadline` verdict. The verdict is the pool's
//! *own* clock comparison, independent of the item's cooperation — a solver
//! that misses (or lacks) its cooperative check is still reported as
//! over-deadline, so batch summaries never undercount pinned workers.
//! [`par_map_deadline_under`] additionally parents every per-item token to
//! a caller-owned [`CancelToken`], which is how a long-lived listener
//! drains in-flight solves on shutdown without waiting out their budgets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;

/// The number of workers [`par_map`] uses: every available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Applies `f` to every item on all available cores; results are returned
/// in input order. Deterministic as long as `f` is.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(default_workers(), items, f)
}

/// Applies `f` to every item on a pool of exactly `workers` scoped threads
/// (clamped to the item count; `0` means [`default_workers`]); results are
/// returned in input order. Deterministic as long as `f` is.
///
/// A panic in any invocation of `f` is re-raised as a `"worker panicked"`
/// panic on the calling thread once all workers have stopped.
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    run_pool(workers, items.len(), |i| f(&items[i]))
}

/// One completed item of [`par_map_deadline_with`]: the result plus the
/// pool's own timing verdict.
#[derive(Clone, Debug)]
pub struct DeadlineOutcome<R> {
    /// What `f` returned.
    pub result: R,
    /// Wall-clock time from worker pickup to completion.
    pub elapsed: Duration,
    /// True iff the item had a budget and `elapsed` exceeded it — measured
    /// by the pool, so it holds even when the item never polled its token.
    pub over_deadline: bool,
}

/// Deadline-enforcing [`par_map_with`]: `budget_of` names each item's time
/// budget (`None` = unbounded), a fresh [`CancelToken`] armed with that
/// budget is handed to `f` when a worker picks the item up, and every
/// completion is stamped with its elapsed time and the pool's
/// `over_deadline` verdict. Results are returned in input order; the panic
/// contract matches [`par_map_with`].
pub fn par_map_deadline_with<T, R, B, F>(
    workers: usize,
    items: &[T],
    budget_of: B,
    f: F,
) -> Vec<DeadlineOutcome<R>>
where
    T: Sync,
    R: Send,
    B: Fn(&T) -> Option<Duration> + Sync,
    F: Fn(&T, &CancelToken) -> R + Sync,
{
    par_map_deadline_under(workers, &CancelToken::never(), items, budget_of, f)
}

/// [`par_map_deadline_with`] under a caller-owned `parent` token: every
/// per-item token is a child of `parent`, so cancelling `parent` (a
/// listener draining on SIGINT, a session torn down mid-batch) cuts every
/// in-flight solve at its next cooperative checkpoint while each item's
/// own budget still expires independently. The `over_deadline` verdict
/// stays a pure budget comparison — a parent cancellation does not flag
/// items as over their deadline.
pub fn par_map_deadline_under<T, R, B, F>(
    workers: usize,
    parent: &CancelToken,
    items: &[T],
    budget_of: B,
    f: F,
) -> Vec<DeadlineOutcome<R>>
where
    T: Sync,
    R: Send,
    B: Fn(&T) -> Option<Duration> + Sync,
    F: Fn(&T, &CancelToken) -> R + Sync,
{
    run_pool(workers, items.len(), |i| {
        let item = &items[i];
        let budget = budget_of(item);
        let token = match budget {
            Some(b) => parent.child_after(b),
            None => parent.child(),
        };
        let started = Instant::now();
        let result = f(item, &token);
        let elapsed = started.elapsed();
        DeadlineOutcome {
            result,
            elapsed,
            over_deadline: budget.is_some_and(|b| elapsed > b),
        }
    })
}

/// The shared worker loop: `job(i)` for every `i < n` over a fixed pool,
/// results in index order.
fn run_pool<R, F>(workers: usize, n: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = if workers == 0 {
        default_workers()
    } else {
        workers
    }
    .min(n.max(1));
    if workers <= 1 || n <= 1 {
        // Same panic contract as the threaded path: a panicking item
        // surfaces as "worker panicked" regardless of pool size.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| (0..n).map(&job).collect()));
        return result.unwrap_or_else(|_| panic!("worker panicked"));
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = job(i);
                    *slots[i].lock().unwrap() = Some(r);
                })
            })
            .collect();
        let panicked_workers = handles
            .into_iter()
            .map(|handle| handle.join())
            .filter(Result::is_err)
            .count();
        if panicked_workers > 0 {
            panic!("worker panicked");
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("slot lock poisoned")
                .expect("all slots filled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn fixed_worker_counts_agree() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        for workers in [0, 1, 2, 4, 8, 200] {
            assert_eq!(par_map_with(workers, &items, |&x| x + 1), expect);
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // items with wildly different costs still all complete
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_with(4, &items, |&i| {
            let mut acc = 0u64;
            for k in 0..(i * 1000) as u64 {
                acc = acc.wrapping_add(k.wrapping_mul(2654435761));
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }

    #[test]
    fn deadline_outcomes_keep_order_and_stamp_budgets() {
        let items: Vec<u64> = (0..40).collect();
        let out = par_map_deadline_with(
            4,
            &items,
            |&x| (x % 2 == 0).then_some(Duration::from_secs(3600)),
            |&x, token| {
                assert_eq!(token.deadline().is_some(), x % 2 == 0);
                x * 3
            },
        );
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.result, i as u64 * 3);
            assert!(!o.over_deadline, "generous budget flagged on item {i}");
        }
    }

    #[test]
    fn uncooperative_item_is_still_flagged_over_deadline() {
        // the closure ignores its token entirely and sleeps past the
        // budget: the pool's own clock must catch it
        let items = vec![0u32, 1];
        let out = par_map_deadline_with(
            2,
            &items,
            |&x| (x == 1).then_some(Duration::from_millis(1)),
            |&x, _token| {
                if x == 1 {
                    std::thread::sleep(Duration::from_millis(15));
                }
                x
            },
        );
        assert!(!out[0].over_deadline);
        assert!(out[1].over_deadline);
        assert!(out[1].elapsed >= Duration::from_millis(15));
    }

    #[test]
    fn cancelled_parent_cuts_every_item_token() {
        // listener shutdown drain: per-item tokens are children of the
        // session token, so a poisoned parent is visible at pickup even
        // when the item carries a generous (or no) budget — and the
        // poison alone never counts as over_deadline
        let parent = CancelToken::never();
        parent.cancel();
        let items = vec![0u32, 1];
        let out = par_map_deadline_under(
            2,
            &parent,
            &items,
            |&x| (x == 1).then_some(Duration::from_secs(3600)),
            |_, token| token.is_cancelled(),
        );
        assert!(out[0].result && out[1].result);
        assert!(!out[0].over_deadline && !out[1].over_deadline);
    }

    #[test]
    fn zero_budget_token_arrives_expired() {
        let items = vec![()];
        let out = par_map_deadline_with(
            1,
            &items,
            |_| Some(Duration::ZERO),
            |_, token| token.is_cancelled(),
        );
        assert!(out[0].result, "token must already be expired at pickup");
        assert!(out[0].over_deadline);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn propagates_panics() {
        let items = vec![1u32, 2, 3, 4];
        let _ = par_map(&items, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn propagates_panics_single_worker() {
        let items = vec![1u32, 2, 3];
        let _ = par_map_with(1, &items, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }
}
