//! The shared parallel executor: one persistent, process-wide worker pool.
//!
//! Every layer that fans independent work over cores — the experiment
//! harness (`busytime-lab`), the batch solve server (`busytime-server`) and
//! its socket listener — submits to the same [`Executor`]: a long-lived
//! pool of exactly [`Executor::workers`] OS threads fed by an MPMC
//! injection queue of boxed jobs. The process therefore has *one* worker
//! budget: a listener serving many connections multiplexes all of their
//! solve chunks over the same `W` threads instead of spawning `W` threads
//! per call, so total solver parallelism is bounded by `W` regardless of
//! how many batches are in flight.
//!
//! [`Executor::global`] is the lazy process-wide instance (sized by the
//! `BUSYTIME_WORKERS` environment variable, or every available core);
//! [`Executor::configure_global`] lets a CLI size it from `--workers`
//! before first use. Constructed instances ([`Executor::new`]) carry their
//! own threads and shut them down on drop — tests use those to pin exact
//! budgets. The module-level [`par_map`] family forwards to the global
//! executor and keeps the historical calling convention.
//!
//! Batches preserve the scoped-thread contract they replaced: work is
//! distributed over a shared atomic cursor (balancing heavily skewed item
//! costs, e.g. exact solving next to first-fit), results are written into
//! pre-allocated slots so output order matches input order, and a panic in
//! any item re-raises as a `"worker panicked"` panic on the submitting
//! thread once the batch has settled. Between items a batch task yields
//! its worker whenever other submissions are queued, so concurrent batches
//! (coflow-style arrivals on different connections) share the budget at
//! item granularity instead of head-of-line blocking. A batch submitted
//! *from* one of the same pool's workers (nested parallelism) runs inline
//! on that worker — the thread is already part of the budget, and queuing
//! would deadlock a saturated pool; submitting to a *different* pool
//! queues normally, since that pool's budget is independent.
//!
//! Not every caller can park a thread on a batch. [`Executor::spawn`] is
//! the nonblocking submission path: it queues one fire-and-forget job and
//! returns immediately, which is how the readiness-loop socket front-end
//! stays event-driven — a reactor thread hands each parsed record's solve
//! to the pool and goes straight back to `epoll_wait`, and the job's last
//! act is to post its completion to the owning reactor's wakeable queue.
//! Spawned jobs draw on the same `W`-thread budget and fairness queue as
//! batch items, so a connection flood cannot out-schedule the batch
//! paths.
//!
//! # Fork–join over one instance
//!
//! [`Executor::par_chunks`] / [`Executor::par_reduce`] split *one* slice
//! into consecutive chunks and fan the chunks over the same worker budget
//! — the data-parallel layer large single instances run on (parallel
//! decomposition, parallel sorts, chunked bound sweeps). The contract:
//!
//! * **Determinism** — chunk results come back in chunk order and
//!   [`Executor::par_reduce`] folds them strictly left-to-right, so any
//!   associative reduction (sums, maxes, merges of sorted runs) is
//!   bit-identical to the sequential computation. Chunk boundaries depend
//!   only on the slice length, the requested width and `min_chunk`, never
//!   on scheduling.
//! * **Nesting** — a fork–join call from one of the pool's own workers
//!   runs inline on that worker (the `WORKER_OF` path), so solvers that
//!   already run *on* the pool (a saturated batch) degrade to sequential
//!   instead of deadlocking or thrashing the budget.
//! * **Sequential-below-threshold** — fewer than two chunks of `min_chunk`
//!   items never touch the queue: the closure runs on the calling thread
//!   and small instances pay nothing for the capability.
//! * **Cancellation** — [`Executor::par_chunks_under`] hands every chunk a
//!   fresh child of the caller's [`CancelToken`]: cancelling the parent
//!   cuts every chunk at its next cooperative check, while one chunk
//!   cancelling (or poisoning) its own token never affects siblings.
//! * **Panic containment** — a panic in any chunk is caught by the batch
//!   protocol and re-raised as a single `"worker panicked"` panic on the
//!   submitting thread once the whole fork has settled; pool threads never
//!   die.
//!
//! The [`intra`] module carries the per-solve activation: a thread-local
//! `(executor, width)` context the solve pipeline enters when a request's
//! parallel policy resolves to on, consulted by the sort/bound/decompose
//! kernels (and, through installed [`busytime_interval::parsort`] hooks,
//! by the interval substrate below this crate).
//!
//! [`Executor::par_map_deadline_with`] is the deadline-enforcing variant
//! the batch server uses: each item gets a per-item [`CancelToken`] armed
//! when a worker picks the item up (so queue time never counts against a
//! record's budget), and the pool stamps every completion with its elapsed
//! time and an `over_deadline` verdict. The verdict is the pool's *own*
//! clock comparison, independent of the item's cooperation — a solver that
//! misses (or lacks) its cooperative check is still reported as
//! over-deadline, so batch summaries never undercount pinned workers.
//! [`Executor::par_map_deadline_under`] additionally parents every
//! per-item token to a caller-owned [`CancelToken`], which is how a
//! long-lived listener drains on shutdown: cancelling the parent poisons
//! the tokens of queued, not-yet-picked-up items, so they cut at pickup
//! instead of waiting out their budgets.
//!
//! ```
//! use busytime_core::pool::Executor;
//!
//! let executor = Executor::new(2); // its own 2-thread budget
//! let squares = executor.par_map(&[1u64, 2, 3], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9]);
//! assert_eq!(executor.workers(), 2);
//! ```

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::cancel::CancelToken;

/// The worker count a sizing of `0` resolves to: every available core.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// A queued unit of work. Batch tasks catch their own panics, so jobs never
/// unwind into the worker loop.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// The identity (its `ExecInner` address) of the pool this thread
    /// works for, `0` on non-worker threads. A nested batch submission to
    /// the *same* pool detects it and runs inline instead of deadlocking a
    /// saturated queue; a submission to a *different* pool queues normally
    /// — that pool's workers are independent, so its budget and width
    /// still apply.
    static WORKER_OF: Cell<usize> = const { Cell::new(0) };
}

/// Lock tolerating poisoning: queue and completion state stay structurally
/// valid across a panic (batch tasks catch item panics anyway), and one
/// poisoned batch must not wedge the process-wide pool.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Shared pool state: the injection queue plus the stats counters the
/// serving layer reports.
struct ExecInner {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    workers: usize,
    /// Workers currently running a job.
    busy: AtomicUsize,
    /// Jobs pushed but not yet picked up (the queue depth, maintained as an
    /// atomic so batch tasks can poll it without taking the queue lock).
    pending: AtomicUsize,
    shutdown: AtomicBool,
}

impl ExecInner {
    fn push(&self, job: Job) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        lock(&self.queue).push_back(job);
        self.available.notify_one();
    }
}

fn worker_loop(inner: Arc<ExecInner>) {
    WORKER_OF.set(Arc::as_ptr(&inner) as usize);
    loop {
        let job = {
            let mut queue = lock(&inner.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    inner.pending.fetch_sub(1, Ordering::SeqCst);
                    break job;
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = inner
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        inner.busy.fetch_add(1, Ordering::SeqCst);
        // batch tasks catch item panics themselves; this outer catch is the
        // last line of defense so a stray unwind can never kill a worker
        // and silently shrink the process budget
        let _ = catch_unwind(AssertUnwindSafe(job));
        inner.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Owns the worker threads on behalf of every [`Executor`] clone: when the
/// last handle drops, the workers are told to stop and joined. Workers
/// themselves hold only [`ExecInner`], so they never keep the pool alive.
struct ShutdownGuard {
    inner: Arc<ExecInner>,
    /// Written once at construction, drained only in `Drop` (which has
    /// exclusive access) — no lock needed.
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Drop for ShutdownGuard {
    fn drop(&mut self) {
        // the store must happen under the queue mutex: a worker checks the
        // flag and parks on the condvar atomically while holding that
        // mutex, so a store outside it could land between a worker's check
        // and its park — the notify would target no waiter, and the join
        // below would hang on a worker that never wakes
        {
            let _queue = lock(&self.inner.queue);
            self.inner.shutdown.store(true, Ordering::Release);
        }
        self.inner.available.notify_all();
        // every batch blocks its submitter until completion, so at this
        // point no batch is in flight and the queue is empty — the join is
        // prompt
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide executor (see the [module docs](self)): a fixed worker
/// budget, an injection queue, and order-preserving batch submission.
///
/// Clones are cheap handles onto the same pool; the worker threads stop
/// when the last handle drops. [`Executor::global`] hands out handles to
/// the one lazy process-wide instance.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<ExecInner>,
    _guard: Arc<ShutdownGuard>,
}

static GLOBAL: OnceLock<Executor> = OnceLock::new();

impl Executor {
    /// A pool of exactly `workers` threads (`0` = [`default_workers`],
    /// clamped to at least one).
    pub fn new(workers: usize) -> Executor {
        let workers = if workers == 0 {
            default_workers()
        } else {
            workers
        }
        .max(1);
        let inner = Arc::new(ExecInner {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            workers,
            busy: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("busytime-worker-{i}"))
                    .spawn(move || worker_loop(inner))
                    .expect("spawn executor worker")
            })
            .collect();
        Executor {
            _guard: Arc::new(ShutdownGuard {
                inner: Arc::clone(&inner),
                handles,
            }),
            inner,
        }
    }

    /// A handle onto the process-wide executor, created on first use. Its
    /// size is [`Executor::configure_global`]'s, if called first; else the
    /// `BUSYTIME_WORKERS` environment variable (when set to a positive
    /// integer); else [`default_workers`]. The global pool lives for the
    /// rest of the process.
    pub fn global() -> Executor {
        GLOBAL
            .get_or_init(|| {
                let workers = std::env::var("BUSYTIME_WORKERS")
                    .ok()
                    .and_then(|raw| raw.trim().parse::<usize>().ok())
                    .unwrap_or(0);
                Executor::new(workers)
            })
            .clone()
    }

    /// Sizes the global executor before first use (`busytime-cli` calls
    /// this from `--workers`, making the flag a true process cap). Returns
    /// `false` when the global pool already exists — the existing size
    /// stays, because live batches may already depend on it.
    pub fn configure_global(workers: usize) -> bool {
        if GLOBAL.get().is_some() {
            return false;
        }
        GLOBAL.set(Executor::new(workers)).is_ok()
    }

    /// The pool's worker budget: the number of threads it owns, which
    /// bounds process-wide parallelism over all concurrent batches.
    pub fn workers(&self) -> usize {
        self.inner.workers
    }

    /// Workers currently running a job (`0..=workers`).
    pub fn busy_workers(&self) -> usize {
        self.inner
            .busy
            .load(Ordering::SeqCst)
            .min(self.inner.workers)
    }

    /// Jobs queued but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        self.inner.pending.load(Ordering::SeqCst)
    }

    /// One coherent stats snapshot for `/healthz` and logs. The counters
    /// are sampled together and `busy` is clamped to the worker budget, so
    /// a reader never observes the impossible `busy > workers` even while
    /// fork–join bursts are moving the counters between loads.
    pub fn stats(&self) -> PoolStats {
        let workers = self.inner.workers;
        PoolStats {
            workers,
            busy: self.inner.busy.load(Ordering::SeqCst).min(workers),
            queued: self.inner.pending.load(Ordering::SeqCst),
        }
    }

    /// Workers not currently running a job — the idle budget the auto
    /// parallel policy checks before forking one instance's work.
    pub fn idle_workers(&self) -> usize {
        let stats = self.stats();
        stats.workers - stats.busy
    }

    /// Queues one fire-and-forget job and returns immediately.
    ///
    /// This is the submission path for callers that must never block —
    /// the event-driven listener's I/O threads hand each record's solve
    /// to the pool this way and learn of completion through their own
    /// wakeable queues, unlike the [`Executor::par_map`] family, which
    /// parks the submitting thread until the whole batch settles. The
    /// job shares the same worker budget, fairness queue, and stats
    /// counters as batch items; a panic inside it is caught by the
    /// worker (the pool never shrinks) but is otherwise unobservable,
    /// so jobs that can fail should report through their own channel.
    ///
    /// Called from one of the pool's own workers, the job is queued (not
    /// run inline): `spawn` never executes `job` on the calling thread.
    /// Unlike a nested batch, a queued fire-and-forget job cannot
    /// deadlock its submitter — nothing blocks on it.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        self.inner.push(Box::new(job));
    }

    /// Applies `f` to every item over the full worker budget; results are
    /// returned in input order. Deterministic as long as `f` is.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.par_map_with(0, items, f)
    }

    /// [`Executor::par_map`] with a width cap: at most `width` of the
    /// pool's workers serve this batch at any moment (`0` = the full
    /// budget; always clamped to the budget and the item count). The cap
    /// bounds one batch's *share*; the pool's thread count never changes.
    ///
    /// A panic in any invocation of `f` is re-raised as a
    /// `"worker panicked"` panic on the calling thread once the batch has
    /// settled.
    pub fn par_map_with<T, R, F>(&self, width: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        self.run_batch(width, items.len(), |i| f(&items[i]))
    }

    /// Deadline-enforcing [`Executor::par_map_with`]: `budget_of` names
    /// each item's time budget (`None` = unbounded), a fresh
    /// [`CancelToken`] armed with that budget is handed to `f` when a
    /// worker picks the item up, and every completion is stamped with its
    /// elapsed time and the pool's `over_deadline` verdict. Results are
    /// returned in input order; the panic contract matches
    /// [`Executor::par_map_with`].
    pub fn par_map_deadline_with<T, R, B, F>(
        &self,
        width: usize,
        items: &[T],
        budget_of: B,
        f: F,
    ) -> Vec<DeadlineOutcome<R>>
    where
        T: Sync,
        R: Send,
        B: Fn(&T) -> Option<Duration> + Sync,
        F: Fn(&T, &CancelToken) -> R + Sync,
    {
        self.par_map_deadline_under(width, &CancelToken::never(), items, budget_of, f)
    }

    /// [`Executor::par_map_deadline_with`] under a caller-owned `parent`
    /// token: every per-item token is a child of `parent`, so cancelling
    /// `parent` (a listener draining on SIGINT, a session torn down
    /// mid-batch) cuts every in-flight solve at its next cooperative
    /// checkpoint — and every *queued* item at pickup — while each item's
    /// own budget still expires independently. The `over_deadline` verdict
    /// stays a pure budget comparison — a parent cancellation does not
    /// flag items as over their deadline.
    pub fn par_map_deadline_under<T, R, B, F>(
        &self,
        width: usize,
        parent: &CancelToken,
        items: &[T],
        budget_of: B,
        f: F,
    ) -> Vec<DeadlineOutcome<R>>
    where
        T: Sync,
        R: Send,
        B: Fn(&T) -> Option<Duration> + Sync,
        F: Fn(&T, &CancelToken) -> R + Sync,
    {
        self.run_batch(width, items.len(), |i| {
            let item = &items[i];
            let budget = budget_of(item);
            let token = match budget {
                Some(b) => parent.child_after(b),
                None => parent.child(),
            };
            let started = Instant::now();
            let result = f(item, &token);
            let elapsed = started.elapsed();
            DeadlineOutcome {
                result,
                elapsed,
                over_deadline: budget.is_some_and(|b| elapsed > b),
            }
        })
    }

    /// Fork–join over one slice: splits `items` into consecutive chunks
    /// (a few per worker, never smaller than `min_chunk`) and runs `f` on
    /// each chunk over at most `width` workers (`0` = the full budget).
    /// Per-chunk results come back in chunk order.
    ///
    /// Chunk boundaries are a pure function of `items.len()`, the clamped
    /// width and `min_chunk` — never of scheduling — so for a given width
    /// the output is deterministic. When the slice is too small for two
    /// chunks, `f` runs once over the whole slice on the *calling* thread:
    /// small inputs never touch the queue. A call from one of this pool's
    /// own workers runs every chunk inline on that worker (see
    /// [`Executor::par_map`]'s nesting contract). Panics in `f` follow the
    /// pool-wide containment contract: re-raised once as `worker panicked`
    /// after the fork settles.
    pub fn par_chunks<T, R, F>(&self, width: usize, items: &[T], min_chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T]) -> R + Sync,
    {
        self.par_chunks_under(
            width,
            &CancelToken::never(),
            items,
            min_chunk,
            |chunk, _| f(chunk),
        )
    }

    /// [`Executor::par_chunks`] under a caller-owned `parent` token: every
    /// chunk's closure receives a fresh *child* of `parent`, so cancelling
    /// the parent cuts every chunk at its next cooperative check while one
    /// chunk cancelling its own token never affects its siblings.
    pub fn par_chunks_under<T, R, F>(
        &self,
        width: usize,
        parent: &CancelToken,
        items: &[T],
        min_chunk: usize,
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&[T], &CancelToken) -> R + Sync,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let ranges = chunk_ranges(items.len(), self.effective_width(width), min_chunk);
        if ranges.len() <= 1 {
            return vec![f(items, &parent.child())];
        }
        self.run_batch(width, ranges.len(), |i| {
            let (lo, hi) = ranges[i];
            f(&items[lo..hi], &parent.child())
        })
    }

    /// Chunked map-reduce: maps each chunk with `map` (in parallel, as
    /// [`Executor::par_chunks`]) and folds the per-chunk results strictly
    /// left-to-right with `fold` on the calling thread. `None` iff `items`
    /// is empty. When `fold` is associative with the sequential
    /// computation's operator (integer sums, maxes, merges), the result is
    /// bit-identical to the sequential pass at every width.
    pub fn par_reduce<T, R, M, F>(
        &self,
        width: usize,
        items: &[T],
        min_chunk: usize,
        map: M,
        fold: F,
    ) -> Option<R>
    where
        T: Sync,
        R: Send,
        M: Fn(&[T]) -> R + Sync,
        F: FnMut(R, R) -> R,
    {
        let mut parts = self.par_chunks(width, items, min_chunk, map).into_iter();
        let first = parts.next()?;
        Some(parts.fold(first, fold))
    }

    /// Parallel unstable sort: sorts chunks in parallel, then merges the
    /// sorted runs pairwise (also in parallel) back into `data`. Requires
    /// `Copy` so runs can be staged out-of-place, and the combination of
    /// `Ord + Copy` makes equal elements indistinguishable — the sorted
    /// result is bit-identical to [`slice::sort_unstable`] at every width.
    /// Below two `min_chunk`-sized chunks (or on a nested call from one of
    /// this pool's workers) it is exactly `sort_unstable`.
    pub fn par_sort_unstable<T>(&self, width: usize, data: &mut [T], min_chunk: usize)
    where
        T: Ord + Copy + Send + Sync,
    {
        if self.effective_width(width) <= 1
            || data.len() < min_chunk.max(1).saturating_mul(2)
            || WORKER_OF.get() == Arc::as_ptr(&self.inner) as usize
        {
            data.sort_unstable();
            return;
        }
        let mut runs: Vec<Vec<T>> = self.par_chunks(width, data, min_chunk, |chunk| {
            let mut run = chunk.to_vec();
            run.sort_unstable();
            run
        });
        while runs.len() > 1 {
            let mut pairs: Vec<(Vec<T>, Vec<T>)> = Vec::with_capacity(runs.len() / 2);
            let mut carry: Option<Vec<T>> = None;
            let mut iter = runs.into_iter();
            while let Some(a) = iter.next() {
                match iter.next() {
                    Some(b) => pairs.push((a, b)),
                    None => carry = Some(a),
                }
            }
            runs = self.par_map_with(width, &pairs, |(a, b)| merge_sorted(a, b));
            if let Some(run) = carry {
                runs.push(run);
            }
        }
        data.copy_from_slice(&runs[0]);
    }

    /// `width` clamped the way the batch engine will clamp it (`0` = full
    /// budget, never more than the pool has, at least one).
    fn effective_width(&self, width: usize) -> usize {
        if width == 0 {
            self.inner.workers
        } else {
            width
        }
        .min(self.inner.workers)
        .max(1)
    }

    /// The batch engine: `job(i)` for every `i < n`, at most `width`
    /// workers at a time, results in index order.
    fn run_batch<R, F>(&self, width: usize, n: usize, job: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        if WORKER_OF.get() == Arc::as_ptr(&self.inner) as usize {
            // nested submission from one of this pool's own workers: the
            // thread is already part of the budget, so run inline —
            // queuing and blocking here would deadlock a saturated pool.
            // (A worker of a *different* pool falls through and queues:
            // that pool's budget is independent and its workers are free
            // to serve this batch.)
            return run_sequential(n, &job);
        }
        let width = if width == 0 {
            self.inner.workers
        } else {
            width
        }
        .min(self.inner.workers)
        .min(n)
        .max(1);
        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let state = BatchState {
            cursor: AtomicUsize::new(0),
            n,
            job,
            slots: &slots,
        };
        let completion = Arc::new(Completion {
            status: Mutex::new(Status {
                live_tasks: width,
                panicked: false,
            }),
            done: Condvar::new(),
        });
        for _ in 0..width {
            // SAFETY: see `make_task` — this call blocks below until every
            // task (and every continuation it spawned) has finished, so
            // `state` and `slots` outlive all uses of the erased pointer.
            let task = unsafe { make_task(&self.inner, &state, &completion) };
            self.inner.push(task);
        }
        let panicked = {
            let mut status = lock(&completion.status);
            while status.live_tasks > 0 {
                status = completion
                    .done
                    .wait(status)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            status.panicked
        };
        if panicked {
            panic!("worker panicked");
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .expect("all slots filled")
            })
            .collect()
    }
}

/// The inline path shared by tiny pools and nested submissions; same panic
/// contract as the queued path.
fn run_sequential<R, F>(n: usize, job: &F) -> Vec<R>
where
    F: Fn(usize) -> R,
{
    catch_unwind(AssertUnwindSafe(|| (0..n).map(job).collect()))
        .unwrap_or_else(|_| panic!("worker panicked"))
}

/// A coherent snapshot of a pool's load, from [`Executor::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Workers currently running a job; always `≤ workers`.
    pub busy: usize,
    /// Jobs queued but not yet picked up by a worker.
    pub queued: usize,
}

/// Target chunks per worker for [`Executor::par_chunks`]: a few chunks per
/// lane so uneven per-chunk costs still balance without condvar churn.
const CHUNKS_PER_WORKER: usize = 4;

/// Deterministic chunk boundaries: a pure function of `(n, width,
/// min_chunk)`. Chunks are consecutive, cover `0..n`, and all but the last
/// have the same size (at least `min_chunk`).
fn chunk_ranges(n: usize, width: usize, min_chunk: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let chunk = n
        .div_ceil(width.max(1) * CHUNKS_PER_WORKER)
        .max(min_chunk.max(1));
    (0..n.div_ceil(chunk))
        .map(|i| (i * chunk, ((i + 1) * chunk).min(n)))
        .collect()
}

/// Two-pointer merge of sorted runs, left-biased on ties.
fn merge_sorted<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if b[j] < a[i] {
            out.push(b[j]);
            j += 1;
        } else {
            out.push(a[i]);
            i += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// One batch's shared state, allocated on the submitting thread's stack
/// and reached from tasks through a lifetime-erased pointer.
struct BatchState<'a, R, F> {
    cursor: AtomicUsize,
    n: usize,
    job: F,
    slots: &'a [Mutex<Option<R>>],
}

struct Status {
    /// Tasks (or their queued continuations) still outstanding; the
    /// submitting thread wakes when this reaches zero.
    live_tasks: usize,
    panicked: bool,
}

/// Completion channel between batch tasks and the submitting thread. Held
/// in an `Arc` so the final notify races nothing: the stack-allocated
/// [`BatchState`] is last touched *before* the final decrement, and the
/// `Arc` keeps this signaling state alive past the caller's return.
struct Completion {
    status: Mutex<Status>,
    done: Condvar,
}

/// A raw pointer that may cross threads; the batch protocol (submitter
/// blocks until all tasks finish) guarantees the pointee outlives it.
struct SendPtr<T>(*const T);
unsafe impl<T: Sync> Send for SendPtr<T> {}

/// Boxes one batch task for the injection queue.
///
/// # Safety
///
/// The returned job captures a pointer to `state`, which lives on the
/// submitting thread's stack. The caller must block until the batch's
/// `live_tasks` count reaches zero before `state` (or the slots it
/// references) is dropped; every task touches `state` only before its
/// final `finish_task` decrement, and a task that requeues a continuation
/// does not decrement, so the count cannot reach zero while any queued
/// continuation still holds the pointer.
unsafe fn make_task<R, F>(
    exec: &Arc<ExecInner>,
    state: &BatchState<'_, R, F>,
    completion: &Arc<Completion>,
) -> Job
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let exec = Arc::clone(exec);
    let completion = Arc::clone(completion);
    let state = SendPtr(state as *const BatchState<'_, R, F>);
    let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        // move the whole `SendPtr` (edition-2021 closures would otherwise
        // capture only the raw-pointer field, sidestepping its Send bound)
        let state = state;
        // SAFETY: the submitter is still blocked on `completion` (this
        // task has not decremented `live_tasks` yet), so the pointee is
        // alive.
        let state = unsafe { &*state.0 };
        run_task(&exec, state, &completion);
    });
    // SAFETY: lifetime erasure only — layout is identical, and the batch
    // protocol above guarantees the borrows outlive the job.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(task) }
}

fn run_task<R, F>(exec: &Arc<ExecInner>, state: &BatchState<'_, R, F>, completion: &Arc<Completion>)
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    loop {
        let i = state.cursor.fetch_add(1, Ordering::Relaxed);
        if i >= state.n {
            return finish_task(completion, false);
        }
        match catch_unwind(AssertUnwindSafe(|| (state.job)(i))) {
            Ok(result) => *lock(&state.slots[i]) = Some(result),
            // the scoped-thread contract, preserved: the panicking
            // "worker" stops, sibling tasks finish the cursor, and the
            // submitter re-raises "worker panicked" once the batch settles
            Err(_) => return finish_task(completion, true),
        }
        // cooperative yield: when other submissions are waiting and this
        // batch still has items, requeue a continuation at the back of the
        // line so concurrent batches share the budget at item granularity
        // the depth read is heuristic — Relaxed keeps it free on the hot path
        if state.cursor.load(Ordering::Relaxed) < state.n
            && exec.pending.load(Ordering::Relaxed) > 0
        {
            // SAFETY: same protocol as `make_task` — `live_tasks` is not
            // decremented on this path, so the submitter keeps waiting
            // while the continuation holds the pointer.
            let continuation = unsafe { make_task(exec, state, completion) };
            exec.push(continuation);
            return;
        }
    }
}

fn finish_task(completion: &Completion, panicked: bool) {
    let mut status = lock(&completion.status);
    status.live_tasks -= 1;
    if panicked {
        status.panicked = true;
    }
    if status.live_tasks == 0 {
        completion.done.notify_all();
    }
}

/// Applies `f` to every item on the [global](Executor::global) executor;
/// results are returned in input order. Deterministic as long as `f` is.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Executor::global().par_map(items, f)
}

/// [`par_map`] with a width cap of `workers` (`0` = the global executor's
/// full budget); see [`Executor::par_map_with`] for the contract.
pub fn par_map_with<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    Executor::global().par_map_with(workers, items, f)
}

/// One completed item of [`Executor::par_map_deadline_with`]: the result
/// plus the pool's own timing verdict.
#[derive(Clone, Debug)]
pub struct DeadlineOutcome<R> {
    /// What `f` returned.
    pub result: R,
    /// Wall-clock time from worker pickup to completion.
    pub elapsed: Duration,
    /// True iff the item had a budget and `elapsed` exceeded it — measured
    /// by the pool, so it holds even when the item never polled its token.
    pub over_deadline: bool,
}

/// [`Executor::par_map_deadline_with`] on the global executor.
pub fn par_map_deadline_with<T, R, B, F>(
    workers: usize,
    items: &[T],
    budget_of: B,
    f: F,
) -> Vec<DeadlineOutcome<R>>
where
    T: Sync,
    R: Send,
    B: Fn(&T) -> Option<Duration> + Sync,
    F: Fn(&T, &CancelToken) -> R + Sync,
{
    Executor::global().par_map_deadline_with(workers, items, budget_of, f)
}

/// [`Executor::par_map_deadline_under`] on the global executor.
pub fn par_map_deadline_under<T, R, B, F>(
    workers: usize,
    parent: &CancelToken,
    items: &[T],
    budget_of: B,
    f: F,
) -> Vec<DeadlineOutcome<R>>
where
    T: Sync,
    R: Send,
    B: Fn(&T) -> Option<Duration> + Sync,
    F: Fn(&T, &CancelToken) -> R + Sync,
{
    Executor::global().par_map_deadline_under(workers, parent, items, budget_of, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..500).collect();
        let out = par_map(&items, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |&x| x).is_empty());
        assert_eq!(par_map(&[7], |&x| x + 1), vec![8]);
    }

    #[test]
    fn fixed_width_caps_agree() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x + 1).collect();
        for workers in [0, 1, 2, 4, 8, 200] {
            assert_eq!(par_map_with(workers, &items, |&x| x + 1), expect);
        }
    }

    #[test]
    fn uneven_work_is_balanced() {
        // items with wildly different costs still all complete
        let items: Vec<usize> = (0..64).collect();
        let out = par_map_with(4, &items, |&i| {
            let mut acc = 0u64;
            for k in 0..(i * 1000) as u64 {
                acc = acc.wrapping_add(k.wrapping_mul(2654435761));
            }
            (i, acc)
        });
        for (i, (j, _)) in out.iter().enumerate() {
            assert_eq!(i, *j);
        }
    }

    #[test]
    fn instance_executor_bounds_concurrency_across_batches() {
        // three submitters race batches onto a 2-worker pool: at no moment
        // may more than 2 items run — the process-budget contract the
        // listener relies on
        let executor = Executor::new(2);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let submitters: Vec<_> = (0..3)
            .map(|_| {
                let executor = executor.clone();
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    let items: Vec<u32> = (0..8).collect();
                    executor.par_map(&items, |&x| {
                        let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::sleep(Duration::from_millis(3));
                        live.fetch_sub(1, Ordering::SeqCst);
                        x
                    })
                })
            })
            .collect();
        for submitter in submitters {
            let out = submitter.join().unwrap();
            assert_eq!(out, (0..8).collect::<Vec<u32>>());
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "2-worker pool ran {} items at once",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn nested_par_map_on_a_worker_runs_inline() {
        // a batch item submitting its own batch must not deadlock even on
        // a single-worker pool: the nested call runs inline on the worker
        let executor = Executor::new(1);
        let items = vec![1u32, 2, 3];
        let out = executor.par_map(&items, |&x| {
            let inner = executor.par_map(&[x], |&y| y * 2);
            inner[0]
        });
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn spawn_runs_without_blocking_the_submitter() {
        let executor = Executor::new(1);
        let (send, recv) = std::sync::mpsc::channel::<u32>();
        // a spawned job may itself spawn (completion-callback style)
        // without deadlocking the single worker
        let nested_exec = executor.clone();
        let nested_send = send.clone();
        executor.spawn(move || {
            nested_exec.spawn(move || {
                let _ = nested_send.send(2);
            });
            let _ = send.send(1);
        });
        let mut got: Vec<u32> = (0..2)
            .map(|_| recv.recv_timeout(Duration::from_secs(5)).unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn spawn_shares_the_batch_worker_budget() {
        // spawned jobs and batch items drain through the same two
        // workers: at no point may three run concurrently
        let executor = Executor::new(2);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (send, recv) = std::sync::mpsc::channel::<()>();
        for _ in 0..8 {
            let live = Arc::clone(&live);
            let peak = Arc::clone(&peak);
            let send = send.clone();
            executor.spawn(move || {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(3));
                live.fetch_sub(1, Ordering::SeqCst);
                let _ = send.send(());
            });
        }
        let items: Vec<u32> = (0..8).collect();
        let out = executor.par_map(&items, |&x| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(Duration::from_millis(3));
            live.fetch_sub(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out, items);
        for _ in 0..8 {
            recv.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "2-worker pool ran {} jobs at once",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn stats_settle_to_idle() {
        let executor = Executor::new(2);
        assert_eq!(executor.workers(), 2);
        let items: Vec<u32> = (0..32).collect();
        let _ = executor.par_map(&items, |&x| x);
        assert_eq!(executor.queue_depth(), 0);
        // the last worker decrements `busy` just after releasing the
        // batch, so allow it a moment
        let started = Instant::now();
        while executor.busy_workers() != 0 && started.elapsed() < Duration::from_secs(5) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(executor.busy_workers(), 0);
    }

    #[test]
    fn nested_submission_to_a_different_pool_uses_that_pool() {
        // a job on pool A submitting to pool B must run on B's workers
        // (width 2 here), not inline-sequential on A's worker — verified
        // by both items observing each other running concurrently
        let a = Executor::new(1);
        let b = Executor::new(2);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let out = a.par_map(&[()], |_| {
            b.par_map(&[0u32, 1], |&x| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                // stay live (bounded) until the sibling item overlaps;
                // only B's two workers can make that happen — the inline
                // path would run the items one after the other and peak
                // would stay 1
                let waited = Instant::now();
                while peak.load(Ordering::SeqCst) < 2 && waited.elapsed() < Duration::from_secs(5) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                live.fetch_sub(1, Ordering::SeqCst);
                x
            })
        });
        assert_eq!(out, vec![vec![0, 1]]);
        assert_eq!(
            peak.load(Ordering::SeqCst),
            2,
            "cross-pool nested batch must run on the target pool's workers"
        );
    }

    #[test]
    fn dropping_an_executor_joins_its_workers_promptly() {
        // regression for a lost shutdown wakeup: the drop-time flag store
        // must be ordered with the workers' check-then-park (both under
        // the queue mutex), or a worker can park right past the only
        // notify and the drop hangs in join
        for _ in 0..50 {
            let executor = Executor::new(2);
            let _ = executor.par_map(&[1u32, 2, 3], |&x| x);
            drop(executor);
        }
    }

    #[test]
    fn pool_survives_a_panicking_batch() {
        // a panic fails its batch but must not kill pool threads — the
        // process budget cannot silently shrink
        let executor = Executor::new(1);
        let exec = executor.clone();
        let result = catch_unwind(AssertUnwindSafe(move || {
            exec.par_map(&[1u32], |_| -> u32 { panic!("boom") })
        }));
        assert!(result.is_err());
        assert_eq!(executor.par_map(&[2u32], |&x| x + 1), vec![3]);
    }

    #[test]
    fn deadline_outcomes_keep_order_and_stamp_budgets() {
        let items: Vec<u64> = (0..40).collect();
        let out = par_map_deadline_with(
            4,
            &items,
            |&x| (x % 2 == 0).then_some(Duration::from_secs(3600)),
            |&x, token| {
                assert_eq!(token.deadline().is_some(), x % 2 == 0);
                x * 3
            },
        );
        for (i, o) in out.iter().enumerate() {
            assert_eq!(o.result, i as u64 * 3);
            assert!(!o.over_deadline, "generous budget flagged on item {i}");
        }
    }

    #[test]
    fn uncooperative_item_is_still_flagged_over_deadline() {
        // the closure ignores its token entirely and sleeps past the
        // budget: the pool's own clock must catch it
        let items = vec![0u32, 1];
        let out = par_map_deadline_with(
            2,
            &items,
            |&x| (x == 1).then_some(Duration::from_millis(1)),
            |&x, _token| {
                if x == 1 {
                    std::thread::sleep(Duration::from_millis(15));
                }
                x
            },
        );
        assert!(!out[0].over_deadline);
        assert!(out[1].over_deadline);
        assert!(out[1].elapsed >= Duration::from_millis(15));
    }

    #[test]
    fn cancelled_parent_cuts_every_item_token() {
        // listener shutdown drain: per-item tokens are children of the
        // session token, so a poisoned parent is visible at pickup even
        // when the item carries a generous (or no) budget — and the
        // poison alone never counts as over_deadline
        let parent = CancelToken::never();
        parent.cancel();
        let items = vec![0u32, 1];
        let out = par_map_deadline_under(
            2,
            &parent,
            &items,
            |&x| (x == 1).then_some(Duration::from_secs(3600)),
            |_, token| token.is_cancelled(),
        );
        assert!(out[0].result && out[1].result);
        assert!(!out[0].over_deadline && !out[1].over_deadline);
    }

    #[test]
    fn zero_budget_token_arrives_expired() {
        let items = vec![()];
        let out = par_map_deadline_with(
            1,
            &items,
            |_| Some(Duration::ZERO),
            |_, token| token.is_cancelled(),
        );
        assert!(out[0].result, "token must already be expired at pickup");
        assert!(out[0].over_deadline);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn propagates_panics() {
        let items = vec![1u32, 2, 3, 4];
        let _ = par_map(&items, |&x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn propagates_panics_single_width() {
        let items = vec![1u32, 2, 3];
        let _ = par_map_with(1, &items, |&x| {
            if x == 2 {
                panic!("boom");
            }
            x
        });
    }

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn par_chunks_concatenates_to_the_sequential_map() {
        let executor = Executor::new(4);
        let items: Vec<u64> = (0..10_000).collect();
        for width in [1, 2, 4] {
            let sums: Vec<Vec<u64>> = executor.par_chunks(width, &items, 16, |chunk| {
                chunk.iter().map(|&x| x * 2).collect()
            });
            let flat: Vec<u64> = sums.into_iter().flatten().collect();
            assert_eq!(flat, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_chunks_small_input_runs_on_the_calling_thread() {
        let executor = Executor::new(4);
        let caller = std::thread::current().id();
        let items: Vec<u32> = (0..10).collect();
        // far below two chunks of min_chunk=1000: must not touch the queue
        let ran_on = executor.par_chunks(4, &items, 1000, |_| std::thread::current().id());
        assert_eq!(ran_on, vec![caller]);
        let empty: Vec<u32> = Vec::new();
        assert!(executor.par_chunks(4, &empty, 1000, |_| 0u8).is_empty());
    }

    #[test]
    fn par_reduce_is_bit_identical_to_sequential_fold() {
        let executor = Executor::new(4);
        let mut state = 7u64;
        let items: Vec<i64> = (0..50_000)
            .map(|_| (splitmix(&mut state) % 1000) as i64 - 500)
            .collect();
        let expect: i64 = items.iter().sum();
        for width in [1, 2, 4] {
            let got = executor
                .par_reduce(
                    width,
                    &items,
                    64,
                    |chunk| chunk.iter().sum::<i64>(),
                    |a, b| a + b,
                )
                .unwrap();
            assert_eq!(got, expect, "width {width}");
        }
        let empty: Vec<i64> = Vec::new();
        assert_eq!(
            executor.par_reduce(4, &empty, 64, |c| c.len(), |a, b| a + b),
            None
        );
    }

    #[test]
    fn par_chunks_under_cancelled_parent_reaches_every_chunk() {
        let executor = Executor::new(4);
        let parent = CancelToken::never();
        parent.cancel();
        let items: Vec<u32> = (0..4096).collect();
        let seen =
            executor.par_chunks_under(4, &parent, &items, 64, |_, token| token.is_cancelled());
        assert!(seen.len() > 1, "want a real fork for this test");
        assert!(seen.iter().all(|&cancelled| cancelled));
    }

    #[test]
    fn par_chunks_under_chunk_cancel_does_not_poison_parent_or_siblings() {
        let executor = Executor::new(4);
        let parent = CancelToken::never();
        let items: Vec<u32> = (0..4096).collect();
        let seen = executor.par_chunks_under(4, &parent, &items, 64, |chunk, token| {
            if chunk[0] == 0 {
                token.cancel(); // first chunk poisons only itself
            }
            (chunk[0], token.is_cancelled())
        });
        assert!(seen.len() > 1);
        assert!(!parent.is_cancelled());
        for &(first, cancelled) in &seen {
            assert_eq!(cancelled, first == 0, "chunk starting at {first}");
        }
    }

    #[test]
    fn par_sort_is_bit_identical_to_sort_unstable() {
        let executor = Executor::new(4);
        let mut state = 42u64;
        for n in [0usize, 1, 100, 4095, 4096, 30_000] {
            let data: Vec<i64> = (0..n).map(|_| (splitmix(&mut state) % 97) as i64).collect();
            let mut expect = data.clone();
            expect.sort_unstable();
            for width in [1, 2, 4] {
                let mut got = data.clone();
                executor.par_sort_unstable(width, &mut got, 64);
                assert_eq!(got, expect, "n={n} width={width}");
            }
        }
    }

    #[test]
    fn nested_fork_join_on_a_worker_runs_inline() {
        // a solve running *on* the pool (saturated batch) that forks again
        // must degrade to sequential, not deadlock the single worker
        let executor = Executor::new(1);
        let out = executor.par_map(&[()], |_| {
            let items: Vec<u64> = (0..5000).collect();
            executor
                .par_reduce(0, &items, 64, |c| c.iter().sum::<u64>(), |a, b| a + b)
                .unwrap()
        });
        assert_eq!(out, vec![(0..5000u64).sum()]);
    }

    #[test]
    fn chunk_ranges_cover_and_respect_the_floor() {
        for (n, width, min_chunk) in [(1usize, 4, 64), (4096, 4, 64), (100_000, 3, 4096)] {
            let ranges = chunk_ranges(n, width, min_chunk);
            assert_eq!(ranges.first().unwrap().0, 0);
            assert_eq!(ranges.last().unwrap().1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "chunks must be consecutive");
            }
            for &(lo, hi) in &ranges[..ranges.len() - 1] {
                assert!(hi - lo >= min_chunk, "chunk below floor");
            }
        }
        assert!(chunk_ranges(0, 4, 64).is_empty());
    }

    #[test]
    fn stats_snapshot_is_clamped_and_coherent() {
        let executor = Executor::new(2);
        let stats = executor.stats();
        assert_eq!(
            stats,
            PoolStats {
                workers: 2,
                busy: 0,
                queued: 0
            }
        );
        let items: Vec<u32> = (0..64).collect();
        let _ = executor.par_map(&items, |&x| {
            let snap = executor.stats();
            assert!(snap.busy <= snap.workers, "busy {snap:?} over budget");
            x
        });
        assert!(executor.idle_workers() <= 2);
    }

    #[test]
    fn intra_context_stacks_and_restores() {
        assert_eq!(intra::width(), 1);
        assert!(intra::active().is_none());
        let outer = Executor::new(4);
        {
            let _outer_guard = intra::enter(&outer, 4);
            assert_eq!(intra::width(), 4);
            {
                let _inner_guard = intra::enter(&outer, 2);
                assert_eq!(intra::width(), 2);
            }
            assert_eq!(intra::width(), 4);
            // width below 2 (or clamped below 2) is inert
            let _inert = intra::enter(&outer, 1);
            assert_eq!(intra::width(), 4);
            let one = Executor::new(1);
            let _clamped = intra::enter(&one, 8);
            assert_eq!(intra::width(), 4);
        }
        assert_eq!(intra::width(), 1);
    }

    #[test]
    fn intra_sort_matches_sequential_inside_and_outside_a_context() {
        let executor = Executor::new(4);
        let mut state = 3u64;
        let data: Vec<(i64, i64)> = (0..20_000)
            .map(|_| {
                (
                    (splitmix(&mut state) % 512) as i64,
                    (splitmix(&mut state) % 512) as i64,
                )
            })
            .collect();
        let mut expect = data.clone();
        expect.sort_unstable();
        let mut outside = data.clone();
        intra::sort_unstable(&mut outside);
        assert_eq!(outside, expect);
        let _guard = intra::enter(&executor, 4);
        let mut inside = data.clone();
        intra::sort_unstable(&mut inside);
        assert_eq!(inside, expect);
    }

    #[test]
    fn intra_context_accelerates_interval_crate_sorts() {
        // entering a context installs the parsort hooks; a sort routed
        // through the interval crate's seam must stay correct under it
        let executor = Executor::new(4);
        let _guard = intra::enter(&executor, 4);
        let mut state = 11u64;
        let mut pairs: Vec<(i64, i64)> = (0..20_000)
            .map(|_| {
                (
                    (splitmix(&mut state) % 256) as i64,
                    (splitmix(&mut state) % 256) as i64,
                )
            })
            .collect();
        let mut expect = pairs.clone();
        expect.sort_unstable();
        busytime_interval::parsort::sort_pairs(&mut pairs);
        assert_eq!(pairs, expect);
    }
}

pub mod intra {
    //! Per-solve activation of intra-instance parallelism.
    //!
    //! The solve pipeline [`enter`]s a thread-local `(executor, width)`
    //! context when a request's parallel policy resolves to on; the sort,
    //! bound and decomposition kernels consult [`active`] and fork over
    //! that executor when the context is live and the data is large
    //! enough. Entering also installs the
    //! [`busytime_interval::parsort`] hooks (once per process), so the
    //! interval substrate's scratch-buffer sorts accelerate without that
    //! crate depending on this one.
    //!
    //! The context is a per-thread stack: nested [`enter`]s shadow the
    //! outer context, the [`IntraGuard`] restores it on drop (including
    //! during unwinding), and worker threads of the pool itself never see
    //! the submitter's context — a forked kernel that re-enters another
    //! kernel therefore degrades to sequential instead of over-forking.

    use std::cell::RefCell;
    use std::sync::Once;

    use super::Executor;

    /// Instances below this job count never trigger the `auto` parallel
    /// policy — fork–join overhead would dominate.
    pub const JOB_THRESHOLD: usize = 8192;

    /// Kernels leave buffers shorter than twice this to sequential code;
    /// also the chunk floor handed to [`Executor::par_chunks`].
    pub const MIN_CHUNK: usize = 4096;

    struct Ctx {
        exec: Executor,
        width: usize,
    }

    thread_local! {
        static CTX: RefCell<Vec<Ctx>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII guard from [`enter`]: restores the previous context on drop.
    #[must_use = "the context ends when the guard drops"]
    pub struct IntraGuard {
        pushed: bool,
    }

    impl Drop for IntraGuard {
        fn drop(&mut self) {
            if self.pushed {
                CTX.with(|ctx| {
                    ctx.borrow_mut().pop();
                });
            }
        }
    }

    /// Enters a `width`-lane intra-parallelism context on `exec` for the
    /// current thread. A width below 2 (after clamping to the pool's
    /// worker budget) yields an inert guard and kernels stay sequential,
    /// so callers can pass their resolved policy width unconditionally.
    pub fn enter(exec: &Executor, width: usize) -> IntraGuard {
        let width = width.min(exec.workers());
        if width < 2 {
            return IntraGuard { pushed: false };
        }
        install_hooks();
        CTX.with(|ctx| {
            ctx.borrow_mut().push(Ctx {
                exec: exec.clone(),
                width,
            });
        });
        IntraGuard { pushed: true }
    }

    /// The innermost live context, if any: `(executor, width)` with
    /// `width ≥ 2`.
    pub fn active() -> Option<(Executor, usize)> {
        CTX.with(|ctx| ctx.borrow().last().map(|c| (c.exec.clone(), c.width)))
    }

    /// The innermost context's width, or 1 when no context is live.
    pub fn width() -> usize {
        CTX.with(|ctx| ctx.borrow().last().map_or(1, |c| c.width))
    }

    /// Context-aware unstable sort: forks over the live context when the
    /// buffer is long enough, plain [`slice::sort_unstable`] otherwise.
    /// `Ord + Copy` makes equal elements indistinguishable, so the result
    /// is bit-identical either way.
    pub fn sort_unstable<T: Ord + Copy + Send + Sync>(data: &mut [T]) {
        match active() {
            Some((exec, width)) if data.len() >= MIN_CHUNK * 2 => {
                exec.par_sort_unstable(width, data, MIN_CHUNK);
            }
            _ => data.sort_unstable(),
        }
    }

    fn sort_pairs_hook(buf: &mut [(i64, i64)]) -> bool {
        match active() {
            Some((exec, width)) if buf.len() >= MIN_CHUNK * 2 => {
                exec.par_sort_unstable(width, buf, MIN_CHUNK);
                true
            }
            _ => false,
        }
    }

    fn sort_keys_hook(buf: &mut [i64]) -> bool {
        match active() {
            Some((exec, width)) if buf.len() >= MIN_CHUNK * 2 => {
                exec.par_sort_unstable(width, buf, MIN_CHUNK);
                true
            }
            _ => false,
        }
    }

    fn install_hooks() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            busytime_interval::parsort::install(sort_pairs_hook, sort_keys_hook);
        });
    }
}

pub mod scratch {
    //! Per-thread scratch arenas: reset-not-freed buffers reused across
    //! records by executor workers and batch sessions.
    //!
    //! The serving hot path repeats the same small allocations for every
    //! record: a line buffer per read, an id permutation per greedy solve,
    //! a delta vector per clique bound, a pair vector per canonical hash.
    //! Each executor worker (and each session thread) instead holds one
    //! [`Arena`] in a `thread_local`, cleared between uses but never
    //! shrunk, so steady-state batch traffic runs these paths
    //! allocation-free. Sibling scratch for the interval sweeps lives in
    //! `busytime_interval::family` (this crate sits above it in the
    //! dependency order).
    //!
    //! Access is always through [`with`], which tolerates reentrancy (a
    //! nested call sees a fresh arena instead of a borrow panic), so
    //! holding the arena across a callback is safe, just wasteful.

    use std::cell::RefCell;

    /// The per-thread buffer set. All buffers start empty; users must
    /// `clear()` before use (contents of a previous user are otherwise
    /// still present) and leave whatever capacity they grew for the next
    /// record.
    #[derive(Default)]
    pub struct Arena {
        /// Raw byte staging (line reads, serialization).
        pub bytes: Vec<u8>,
        /// Job-id staging (scheduler orderings, permutations).
        pub ids: Vec<usize>,
        /// Coordinate staging (sorted deltas, keys).
        pub keys: Vec<i64>,
        /// Interval-pair staging (canonical hashing).
        pub pairs: Vec<(i64, i64)>,
    }

    thread_local! {
        static ARENA: RefCell<Arena> = RefCell::new(Arena::default());
    }

    /// Runs `f` with the calling thread's arena. Reentrant calls get a
    /// fresh (empty, unpooled) arena rather than panicking.
    pub fn with<R>(f: impl FnOnce(&mut Arena) -> R) -> R {
        ARENA.with(|arena| match arena.try_borrow_mut() {
            Ok(mut arena) => f(&mut arena),
            Err(_) => f(&mut Arena::default()),
        })
    }

    /// Detaches the thread's byte buffer (cleared, capacity kept) for uses
    /// that must own the buffer across await-like boundaries — e.g. a batch
    /// session's line carry. Pair with [`recycle_bytes`].
    pub fn take_bytes() -> Vec<u8> {
        with(|arena| {
            let mut buf = std::mem::take(&mut arena.bytes);
            buf.clear();
            buf
        })
    }

    /// Returns a buffer taken by [`take_bytes`] (or any buffer worth
    /// pooling) to the thread's arena. Keeps the larger of the two
    /// capacities.
    pub fn recycle_bytes(buf: Vec<u8>) {
        with(|arena| {
            if buf.capacity() > arena.bytes.capacity() {
                arena.bytes = buf;
            }
        });
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn arena_keeps_capacity_across_uses() {
            with(|arena| {
                arena.ids.clear();
                arena.ids.extend(0..128);
            });
            let cap = with(|arena| arena.ids.capacity());
            assert!(cap >= 128);
            with(|arena| {
                arena.ids.clear();
                assert!(arena.ids.capacity() >= 128);
            });
        }

        #[test]
        fn reentrant_with_gets_fresh_arena() {
            with(|outer| {
                outer.keys.push(7);
                with(|inner| {
                    assert!(inner.keys.is_empty());
                    inner.keys.push(9);
                });
                assert_eq!(outer.keys, vec![7]);
            });
        }

        #[test]
        fn byte_buffer_round_trips_capacity() {
            let mut buf = take_bytes();
            buf.extend_from_slice(&[0u8; 4096]);
            recycle_bytes(buf);
            let again = take_bytes();
            assert!(again.is_empty());
            assert!(again.capacity() >= 4096);
            recycle_bytes(again);
        }
    }
}
