//! Lower bounds on the optimum (Observation 1.1).
//!
//! For any instance `J` with parallelism `g`:
//!
//! * **parallelism bound** — `OPT(J) ≥ len(J) / g`: no machine can achieve
//!   parallelism above `g`;
//! * **span bound** — `OPT(J) ≥ span(J)`: whenever any job is active, at
//!   least one machine is busy.
//!
//! With integral tick coordinates every schedule cost is an integer, so the
//! parallelism bound tightens to `⌈len(J) / g⌉`. Applying both bounds per
//! connected component and summing ([`component_lower_bound`]) dominates
//! both global bounds and is what experiments report as "LB".
//!
//! The per-component bounds aggregate over sorted `(start, end)` slices
//! from one fused sweep ([`busytime_interval::family::for_each_component`])
//! instead of materializing a cloned sub-[`Instance`] per component, and
//! the δ-bound sorts its deltas in a per-thread scratch vector
//! ([`crate::pool::scratch`]) — on the serving hot path both run
//! allocation-free.

use busytime_interval::family;

use crate::instance::Instance;
use crate::pool::scratch;

/// `⌈len(J) / g⌉` — the parallelism bound of Observation 1.1, rounded up
/// (schedule costs are integral in the tick model).
pub fn parallelism_bound(inst: &Instance) -> i64 {
    let len = inst.total_len();
    let g = i64::from(inst.g());
    len.div_euclid(g) + i64::from(len.rem_euclid(g) != 0)
}

/// `span(J)` — the span bound of Observation 1.1.
pub fn span_bound(inst: &Instance) -> i64 {
    inst.span()
}

/// `max(parallelism bound, span bound)` on the whole instance.
///
/// ```
/// use busytime_core::{bounds, Instance};
/// // six copies of [0, 10] at g = 2: parallelism forces ≥ 30 busy ticks
/// let inst = Instance::from_pairs([(0, 10); 6], 2);
/// assert_eq!(bounds::lower_bound(&inst), 30);
/// ```
pub fn lower_bound(inst: &Instance) -> i64 {
    parallelism_bound(inst).max(span_bound(inst))
}

/// Per-component refinement: `Σ_components max(⌈len/g⌉, span)`.
///
/// Since machines never profitably span multiple components (an optimal
/// solution splits them at no cost), the optimum separates per component and
/// the bounds add up. Always ≥ [`lower_bound`].
pub fn component_lower_bound(inst: &Instance) -> i64 {
    let g = i64::from(inst.g());
    let mut sum = 0i64;
    family::for_each_component(inst.jobs(), |comp| sum += pair_lower_bound(comp, g));
    sum
}

/// `max(⌈len/g⌉, span)` over one component's sorted `(start, end)` slice.
///
/// On a huge component inside a live intra-parallelism context the sweep
/// is chunked over the executor and reduced associatively — integer sums
/// and maxes are exact, so the result is bit-identical to the sequential
/// pass.
fn pair_lower_bound(comp: &[(i64, i64)], g: i64) -> i64 {
    use crate::pool::intra;
    let (len, reach) = match intra::active() {
        Some((exec, width)) if comp.len() >= intra::MIN_CHUNK * 2 => exec
            .par_reduce(
                width,
                comp,
                intra::MIN_CHUNK,
                |chunk| {
                    let len: i64 = chunk.iter().map(|&(s, e)| e - s).sum();
                    let reach = chunk.iter().map(|&(_, e)| e).max().unwrap_or(0);
                    (len, reach)
                },
                |(len_a, reach_a), (len_b, reach_b)| (len_a + len_b, reach_a.max(reach_b)),
            )
            .unwrap_or((0, 0)),
        _ => (
            comp.iter().map(|&(s, e)| e - s).sum(),
            comp.iter().map(|&(_, e)| e).max().unwrap_or(0),
        ),
    };
    // one connected component: its span is reach − leftmost start
    let span = comp.first().map_or(0, |&(s, _)| reach - s);
    let parallelism = len.div_euclid(g) + i64::from(len.rem_euclid(g) != 0);
    parallelism.max(span)
}

/// The δ-bound for clique instances, extracted from the proof of
/// Theorem A.1 (Claim 4).
///
/// For a pairwise-overlapping family with common point `t`, let
/// `δ_j = max(t − s_j, c_j − t)` and sort `δ` non-increasingly. Any solution
/// uses machines `M_1, M_2, …` whose `i`-th largest per-machine maximum δ is
/// at least `δ_{(i−1)·g}` (the algorithm's δ-chunking minimizes those
/// maxima), and each machine's busy time is at least its maximum δ. Hence
///
/// `OPT(C) ≥ Σ_{i ≥ 0} δ_{i·g}`  (0-based indices into the sorted order).
///
/// Returns `None` when the instance is not a clique (the bound is only
/// valid there). On cliques this can strictly dominate both Observation 1.1
/// bounds — see the tests.
pub fn clique_delta_bound(inst: &Instance) -> Option<i64> {
    let t = busytime_interval::relations::common_point(inst.jobs())?;
    Some(scratch::with(|arena| {
        let deltas = &mut arena.keys;
        deltas.clear();
        deltas.extend(inst.jobs().iter().map(|iv| (t - iv.start).max(iv.end - t)));
        // ascending sort walked backwards ≡ the descending sort the proof
        // states; ascending lets the intra context's parallel sort serve it
        crate::pool::intra::sort_unstable(deltas);
        deltas.iter().rev().step_by(inst.g() as usize).sum()
    }))
}

/// The δ-bound over one component's sorted `(start, end)` slice, or `None`
/// when the component is not a clique. Sorted by `(start, end)`, the
/// latest start is the last pair's.
fn pair_delta_bound(comp: &[(i64, i64)], g: u32) -> Option<i64> {
    let t = comp.last()?.0;
    let earliest_end = comp.iter().map(|&(_, e)| e).min()?;
    if t > earliest_end {
        return None;
    }
    Some(scratch::with(|arena| {
        let deltas = &mut arena.keys;
        deltas.clear();
        deltas.extend(comp.iter().map(|&(s, e)| (t - s).max(e - t)));
        crate::pool::intra::sort_unstable(deltas);
        deltas.iter().rev().step_by(g as usize).sum()
    }))
}

/// The strongest bound this crate offers: the component bound, improved by
/// the δ-bound on components that are cliques.
pub fn best_lower_bound(inst: &Instance) -> i64 {
    let g = inst.g();
    let mut sum = 0i64;
    family::for_each_component(inst.jobs(), |comp| {
        let base = pair_lower_bound(comp, i64::from(g));
        sum += pair_delta_bound(comp, g).map_or(base, |d| base.max(d));
    });
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_bound_rounds_up() {
        // len = 7, g = 2 → ⌈3.5⌉ = 4
        let inst = Instance::from_pairs([(0, 3), (0, 4)], 2);
        assert_eq!(parallelism_bound(&inst), 4);
        // len = 8, g = 2 → 4 exactly
        let even = Instance::from_pairs([(0, 4), (0, 4)], 2);
        assert_eq!(parallelism_bound(&even), 4);
    }

    #[test]
    fn span_bound_is_union_measure() {
        let inst = Instance::from_pairs([(0, 3), (5, 9)], 4);
        assert_eq!(span_bound(&inst), 7);
    }

    #[test]
    fn lower_bound_takes_max() {
        // many parallel long jobs: parallelism bound dominates
        let stack = Instance::from_pairs([(0, 10); 6], 2);
        assert_eq!(span_bound(&stack), 10);
        assert_eq!(parallelism_bound(&stack), 30);
        assert_eq!(lower_bound(&stack), 30);
        // disjoint jobs with huge g: span bound dominates
        let chain = Instance::from_pairs([(0, 2), (3, 5), (6, 8)], 10);
        assert_eq!(lower_bound(&chain), 6);
    }

    #[test]
    fn component_bound_dominates_global() {
        // two far-apart dense components: per-component parallelism bounds
        // add up to more than either global bound
        let inst = Instance::from_pairs(
            [
                (0, 10),
                (0, 10),
                (0, 10),
                (100, 110),
                (100, 110),
                (100, 110),
            ],
            2,
        );
        assert_eq!(lower_bound(&inst), 30); // global parallelism: 60/2
        assert_eq!(component_lower_bound(&inst), 30); // 15 + 15
                                                      // mixed: one sparse + one dense component
        let mixed = Instance::from_pairs([(0, 10), (100, 110), (100, 110), (100, 110)], 3);
        // global: span 20, parallelism ⌈40/3⌉ = 14 → 20
        assert_eq!(lower_bound(&mixed), 20);
        // per component: max(10, ⌈10/3⌉) + max(10, 10) = 20
        assert_eq!(component_lower_bound(&mixed), 20);
        assert!(component_lower_bound(&mixed) >= lower_bound(&mixed));
    }

    #[test]
    fn empty_instance_bounds() {
        let inst = Instance::new(vec![], 3);
        assert_eq!(parallelism_bound(&inst), 0);
        assert_eq!(span_bound(&inst), 0);
        assert_eq!(component_lower_bound(&inst), 0);
    }

    #[test]
    fn delta_bound_only_on_cliques() {
        let not_clique = Instance::from_pairs([(0, 1), (5, 6)], 2);
        assert_eq!(clique_delta_bound(&not_clique), None);
        let clique = Instance::from_pairs([(0, 4), (2, 6)], 2);
        assert!(clique_delta_bound(&clique).is_some());
    }

    #[test]
    fn delta_bound_dominates_on_lopsided_cliques() {
        // three long jobs + one short, g = 2: δ-bound 20 > max(span 10, ⌈31/2⌉ 16)
        let inst = Instance::from_pairs([(0, 10), (0, 10), (0, 10), (0, 1)], 2);
        assert_eq!(clique_delta_bound(&inst), Some(20));
        assert_eq!(lower_bound(&inst), 16);
        assert_eq!(best_lower_bound(&inst), 20);
        // and 20 is attainable: {10,10} + {10,1} → 10 + 10
    }

    #[test]
    fn delta_bound_on_tight_family_matches_opt() {
        // g lefts [−L,0], g rights [0,L]: δ all equal L → δ-bound = 2L = OPT
        let inst =
            Instance::from_pairs([(-50, 0), (0, 50), (-50, 0), (0, 50), (-50, 0), (0, 50)], 3);
        assert_eq!(clique_delta_bound(&inst), Some(100));
        assert_eq!(best_lower_bound(&inst), 100);
    }

    #[test]
    fn best_bound_never_below_component_bound() {
        let inst = Instance::from_pairs([(0, 10), (2, 12), (100, 110)], 2);
        assert!(best_lower_bound(&inst) >= component_lower_bound(&inst));
    }

    #[test]
    fn sweep_bounds_match_materializing_route() {
        // per-component aggregation over sorted pair slices must agree with
        // the old route that cloned a sub-Instance per component
        let cases = [
            Instance::from_pairs([(0, 10), (2, 12), (100, 110)], 2),
            Instance::from_pairs([(0, 10), (0, 10), (0, 10), (0, 1)], 2),
            Instance::from_pairs([(0, 1), (1, 2), (3, 5), (4, 6), (50, 54)], 3),
            Instance::from_pairs([(-50, 0), (0, 50), (-50, 0), (0, 50)], 3),
            Instance::from_pairs([(0, 0), (0, 0), (5, 5)], 1),
            Instance::new(vec![], 4),
        ];
        for inst in &cases {
            let component_ref: i64 = inst
                .components()
                .iter()
                .map(|(sub, _)| lower_bound(sub))
                .sum();
            let best_ref: i64 = inst
                .components()
                .iter()
                .map(|(sub, _)| {
                    let base = lower_bound(sub);
                    clique_delta_bound(sub).map_or(base, |d| base.max(d))
                })
                .sum();
            assert_eq!(component_lower_bound(inst), component_ref, "{inst:?}");
            assert_eq!(best_lower_bound(inst), best_ref, "{inst:?}");
        }
    }

    #[test]
    fn g1_bounds_meet_at_len() {
        // at g = 1 every feasible schedule costs exactly len(J)
        let inst = Instance::from_pairs([(0, 5), (2, 8), (9, 12)], 1);
        assert_eq!(parallelism_bound(&inst), inst.total_len());
        assert!(lower_bound(&inst) >= inst.total_len());
    }
}
