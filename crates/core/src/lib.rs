#![warn(missing_docs)]

//! Busy-time scheduling: the core library of the `busytime` workspace.
//!
//! Implements the problem and every algorithm of Flammini, Monaco,
//! Moscardelli, Shachnai, Shalom, Tamir, Zaks — *Minimizing total busy time
//! in parallel scheduling with application to optical networks* (Theoretical
//! Computer Science 411 (2010) 3553–3562; preliminary version IPDPS 2009).
//!
//! # Problem
//!
//! Jobs are closed time intervals `[s_j, c_j]`; a machine may process at most
//! `g` jobs at any instant (the *parallelism parameter*). A machine is busy
//! whenever at least one of its jobs is active; its cost is the measure of
//! its busy period (`span` of its job set — idle gaps are free). Minimize the
//! total busy time over all machines; the number of machines is unbounded.
//! NP-hard already for `g = 2`.
//!
//! # Algorithms
//!
//! | Algorithm | Instances | Guarantee | Paper |
//! |---|---|---|---|
//! | [`algo::FirstFit`] | general | ≤ 4·OPT (Thm 2.1), worst case ≥ 3−ε (Thm 2.4) | §2 |
//! | [`algo::NextFitProper`] | proper interval families | ≤ 2·OPT (Thm 3.1) | §3.1 |
//! | [`algo::BoundedLength`] | lengths in `[1, d]`, integral starts | ≤ (2+ε)·OPT (Thm 3.2) | §3.2 |
//! | [`algo::CliqueScheduler`] | pairwise-overlapping families | ≤ 2·OPT (Thm A.1) | Appendix |
//! | [`algo::MinMachines`] | general (machine-count objective) | ⌈ω/g⌉ machines (optimal count) | §1.1 |
//!
//! Lower bounds of Observation 1.1 are in [`bounds`]; the structural facts
//! the analysis rests on (Observation 2.2, Lemma 2.3, the claims inside
//! Theorem 3.1) are checkable on concrete schedules via [`verify`].
//!
//! # Quick example
//!
//! The front door is the unified solve pipeline of [`solve`]: build a
//! [`SolveRequest`], pick a solver by registry name — or let the `auto`
//! portfolio detect the instance's structure and dispatch the
//! best-guaranteed algorithm — and read schedule, cost, lower bound, gap
//! and timings off the returned [`SolveReport`]:
//!
//! ```
//! use busytime_core::{Instance, SolveRequest};
//! use busytime_interval::Interval;
//!
//! let inst = Instance::new(
//!     vec![Interval::new(0, 4), Interval::new(1, 5), Interval::new(6, 9)],
//!     2,
//! );
//! let report = SolveRequest::new(&inst).solver("auto").solve().unwrap();
//! report.schedule.validate(&inst).unwrap();
//! assert!(report.gap >= 1.0);
//! assert!(report.cost <= 4 * report.lower_bound); // Thm 2.1, through any dispatch
//! ```
//!
//! The bare [`algo::Scheduler`] trait remains the low-level extension
//! point for calling a concrete algorithm directly:
//!
//! ```
//! use busytime_core::{Instance, algo::{FirstFit, Scheduler}};
//! let inst = Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 2);
//! let schedule = FirstFit::paper().schedule(&inst).unwrap();
//! assert!(schedule.cost(&inst) <= 4 * busytime_core::bounds::lower_bound(&inst));
//! ```

pub mod algo;
pub mod bounds;
pub mod cancel;
pub mod instance;
pub mod machine;
pub mod memo;
pub mod pool;
pub mod render;
pub mod schedule;
pub mod solve;
pub mod verify;

pub use cancel::CancelToken;
pub use instance::{Instance, JobId};
pub use machine::MachineLoad;
pub use memo::{CachePolicy, CanonicalInstance, SolutionCache, SolveFingerprint, WarmStart};
pub use schedule::{MachineId, Schedule, ScheduleViolation};
pub use solve::{Auto, InstanceFeatures, SolveError, SolveReport, SolveRequest, SolverRegistry};
