//! The Greedy (NextFit) algorithm for proper interval families
//! (Section 3.1): a 2-approximation when no job is properly contained in
//! another.
//!
//! 1. Sort the jobs by start time (for proper families this equals the order
//!    by completion time).
//! 2. Scan in order, assigning each job to the *currently filled* machine
//!    unless doing so would create a `(g+1)`-clique there, in which case a
//!    new machine is opened (and becomes the currently filled one).
//!
//! Theorem 3.1 proves `ALG ≤ OPT + span(J) ≤ 2·OPT` on proper families via
//! two claims checkable on any run (see [`crate::verify`]): at every time
//! `t`, `N_t ≥ (M^A_t − 2)g + 2` and hence `M^O_t ≥ M^A_t − 1`.
//!
//! On *non-proper* input the algorithm still emits a feasible schedule (the
//! capacity gate is exact, not clique-counting), but the 2-approximation
//! guarantee does not apply; [`NextFitProper::strict`] makes such input an
//! error instead.

use std::borrow::Cow;

use crate::algo::{Scheduler, SchedulerError};
use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::machine::MachineLoad;
use crate::schedule::Schedule;

/// The Greedy/NextFit scheduler of Section 3.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct NextFitProper {
    /// When true, refuse instances that are not proper interval families
    /// instead of scheduling them heuristically.
    pub require_proper: bool,
}

impl NextFitProper {
    /// Permissive configuration: schedules any instance (guarantee only on
    /// proper families).
    pub fn new() -> Self {
        NextFitProper {
            require_proper: false,
        }
    }

    /// Strict configuration: errors on non-proper instances.
    pub fn strict() -> Self {
        NextFitProper {
            require_proper: true,
        }
    }
}

impl Scheduler for NextFitProper {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("NextFitProper")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        _cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        if self.require_proper && !inst.is_proper() {
            return Err(SchedulerError::UnsupportedInstance {
                scheduler: self.name().into_owned(),
                reason: String::from("instance is not a proper interval family"),
            });
        }
        let g = inst.g();
        let mut order: Vec<usize> = (0..inst.len()).collect();
        order.sort_by_key(|&i| (inst.job(i).start, inst.job(i).end));
        let mut raw = vec![0usize; inst.len()];
        let mut current = MachineLoad::new();
        let mut machine = 0usize;
        let mut opened = false;
        for id in order {
            let iv = inst.job(id);
            if opened && !current.can_fit(&iv, g) {
                machine += 1;
                current = MachineLoad::new();
            }
            current.push(id, &iv);
            raw[id] = machine;
            opened = true;
        }
        if !opened {
            return Ok(Schedule::from_assignment(Vec::new()));
        }
        Ok(Schedule::from_assignment(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn staircase_fills_machines_in_waves() {
        // proper staircase, g = 2: jobs 0,1 on machine 0; job 2 overlaps both
        // at t=2 → new machine
        let inst = Instance::from_pairs([(0, 2), (1, 3), (2, 4)], 2);
        assert!(inst.is_proper());
        let sched = NextFitProper::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.machine_of(0), sched.machine_of(1));
        assert_ne!(sched.machine_of(0), sched.machine_of(2));
    }

    #[test]
    fn disjoint_jobs_stay_on_one_machine() {
        let inst = Instance::from_pairs([(0, 1), (2, 3), (4, 5)], 1);
        let sched = NextFitProper::new().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 1);
        assert_eq!(sched.cost(&inst), 3);
    }

    #[test]
    fn two_approx_against_lower_bound_on_dense_proper() {
        // 12 unit jobs sliding by 1, g = 3
        let inst = Instance::from_pairs((0..12).map(|i| (i, i + 4)), 3);
        assert!(inst.is_proper());
        let sched = NextFitProper::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert!(sched.cost(&inst) <= 2 * bounds::lower_bound(&inst));
    }

    #[test]
    fn strict_rejects_nested() {
        let inst = Instance::from_pairs([(0, 10), (2, 4)], 2);
        let err = NextFitProper::strict().schedule(&inst).unwrap_err();
        assert!(matches!(err, SchedulerError::UnsupportedInstance { .. }));
        // permissive still yields a feasible schedule
        let sched = NextFitProper::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2);
        let sched = NextFitProper::new().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 0);
    }

    #[test]
    fn never_looks_back_at_earlier_machines() {
        // NextFit semantics: once machine 0 is left, later fitting jobs do
        // NOT return to it (unlike FirstFit)
        let inst = Instance::from_pairs([(0, 2), (1, 3), (2, 4), (10, 12)], 2);
        let sched = NextFitProper::new().schedule(&inst).unwrap();
        // job 3 is far right and would fit machine 0, but lands on the
        // current machine (machine of job 2)
        assert_eq!(sched.machine_of(3), sched.machine_of(2));
    }

    #[test]
    fn feasible_on_non_proper_input() {
        let inst = Instance::from_pairs([(0, 20), (1, 2), (3, 4), (5, 6), (2, 18)], 2);
        let sched = NextFitProper::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
    }
}
