//! The Bounded_Length algorithm (Section 3.2): a (2+ε)-approximation for
//! instances whose job lengths lie in `[1, d]` with integral start times.
//!
//! The paper's algorithm:
//!
//! 1. Partition jobs into *segments*: job `J_j` belongs to segment `r` iff
//!    `s_j ∈ [d·(r−1), d·r)`.
//! 2. Solve each segment near-optimally (the paper guesses the machine
//!    busy-interval vector and the independent-set vector, then assigns ISs
//!    to machines by maximum b-matching — polynomial for constant `d`).
//! 3. Concatenate the per-segment schedules.
//!
//! Lemma 3.3 shows that forbidding machines from crossing segment borders
//! costs at most a factor 2; a (1+ε) per-segment solver therefore yields
//! (2+ε) overall.
//!
//! This implementation keeps step 1 and 3 verbatim and makes the *per-segment
//! solver pluggable* (any [`Scheduler`]): the paper's guessing enumeration
//! exists to be polynomial in theory, but an exact or (1+ε)-approximate
//! segment solver is itself a valid "correct guess" — substituting one
//! preserves the guarantee. `busytime-lab` instantiates it with the exact
//! branch-and-bound solver of `busytime-exact` (giving 2·OPT overall on
//! integral instances); [`GuessMatch`](crate::algo::GuessMatch) is the
//! literal guess-plus-b-matching pipeline, usable on small segments; the
//! default constructor falls back to FirstFit per segment (heuristic but
//! fast, still within 4·OPT_r per segment).

use std::borrow::Cow;

use crate::algo::{FirstFit, Scheduler, SchedulerError};
use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::schedule::Schedule;

/// The Bounded_Length segmentation scheduler.
#[derive(Clone, Debug)]
pub struct BoundedLength<S> {
    /// Segment width `d`. `None` derives `d = max(1, max job length)`.
    pub d: Option<i64>,
    /// Solver applied to each segment independently.
    pub segment_solver: S,
}

impl BoundedLength<FirstFit> {
    /// Segmentation with FirstFit per segment and derived `d` — the fast
    /// heuristic configuration.
    pub fn first_fit() -> Self {
        BoundedLength {
            d: None,
            segment_solver: FirstFit::paper(),
        }
    }
}

impl<S: Scheduler> BoundedLength<S> {
    /// Segmentation with a custom per-segment solver and derived `d`.
    pub fn with_solver(segment_solver: S) -> Self {
        BoundedLength {
            d: None,
            segment_solver,
        }
    }

    /// Sets an explicit segment width.
    ///
    /// # Panics
    ///
    /// Panics if `d < 1`.
    pub fn with_width(mut self, d: i64) -> Self {
        assert!(d >= 1, "segment width d must be at least 1");
        self.d = Some(d);
        self
    }

    /// The segment index of a start time: `r` such that
    /// `s ∈ [d·(r−1), d·r)`. (We use 0-based `r' = r − 1 = ⌊s/d⌋`.)
    fn segment_of(s: i64, d: i64) -> i64 {
        s.div_euclid(d)
    }

    /// Partitions job ids into segments, ordered left to right.
    pub fn segments(&self, inst: &Instance) -> Vec<Vec<usize>> {
        let d = self.effective_width(inst);
        let mut by_segment: std::collections::BTreeMap<i64, Vec<usize>> = Default::default();
        for id in 0..inst.len() {
            by_segment
                .entry(Self::segment_of(inst.job(id).start, d))
                .or_default()
                .push(id);
        }
        by_segment.into_values().collect()
    }

    /// The segment width actually used for `inst`.
    pub fn effective_width(&self, inst: &Instance) -> i64 {
        self.d.unwrap_or_else(|| inst.max_len().max(1))
    }
}

impl<S: Scheduler> Scheduler for BoundedLength<S> {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(match self.d {
            Some(d) => format!("BoundedLength[d={d},{}]", self.segment_solver.name()),
            None => format!("BoundedLength[auto,{}]", self.segment_solver.name()),
        })
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let d = self.effective_width(inst);
        if inst.max_len() > d {
            return Err(SchedulerError::UnsupportedInstance {
                scheduler: self.name().into_owned(),
                reason: format!(
                    "job length {} exceeds segment width d = {d}",
                    inst.max_len()
                ),
            });
        }
        let mut raw = vec![0usize; inst.len()];
        let mut offset = 0usize;
        // Cancellation check per sweep candidate (segment): once the token
        // expires, the remaining segments are completed with FirstFit — a
        // feasible incumbent in polynomial time — instead of the (possibly
        // expensive) configured segment solver. Segment borders are still
        // respected, so the Lemma 3.3 structure of the schedule survives;
        // only the per-segment quality degrades to FirstFit's.
        let mut cut = false;
        for ids in self.segments(inst) {
            let sub = inst.restrict(&ids);
            cut = cut || cancel.is_cancelled();
            let sched = if cut {
                FirstFit::paper().schedule_with(&sub, cancel)?
            } else {
                match self.segment_solver.schedule_with(&sub, cancel) {
                    Ok(sched) => sched,
                    // a segment solver with no incumbent (e.g. a cut exact
                    // solver) refuses on expiry; complete the segment with
                    // FirstFit rather than losing the whole sweep. Only the
                    // expiry refusal is absorbed — class/size errors keep
                    // failing loudly regardless of the clock.
                    Err(SchedulerError::Infeasible { .. }) if cancel.is_cancelled() => {
                        cut = true;
                        FirstFit::paper().schedule_with(&sub, cancel)?
                    }
                    Err(e) => return Err(e),
                }
            };
            for (local, &orig) in ids.iter().enumerate() {
                raw[orig] = offset + sched.machine_of(local);
            }
            offset += sched.machine_count();
        }
        Ok(Schedule::from_assignment(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn segments_by_start_window() {
        // d = 3: starts 0,1,2 → segment 0; 3,4,5 → segment 1; 7 → segment 2
        let inst = Instance::from_pairs([(0, 2), (2, 5), (4, 6), (7, 9), (3, 4)], 2);
        let bl = BoundedLength::first_fit().with_width(3);
        let segs = bl.segments(&inst);
        assert_eq!(segs, vec![vec![0, 1], vec![2, 4], vec![3]]);
    }

    #[test]
    fn derived_width_is_max_len() {
        let inst = Instance::from_pairs([(0, 2), (5, 9)], 2);
        let bl = BoundedLength::first_fit();
        assert_eq!(bl.effective_width(&inst), 4);
    }

    #[test]
    fn rejects_overlong_jobs() {
        let inst = Instance::from_pairs([(0, 10)], 2);
        let bl = BoundedLength::first_fit().with_width(3);
        assert!(matches!(
            bl.schedule(&inst),
            Err(SchedulerError::UnsupportedInstance { .. })
        ));
    }

    #[test]
    fn feasible_and_segment_disjoint() {
        let inst =
            Instance::from_pairs([(0, 2), (1, 3), (2, 4), (3, 5), (4, 6), (6, 8), (7, 9)], 2);
        let bl = BoundedLength::first_fit().with_width(3);
        let sched = bl.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        // machines never mix segments: jobs 0,1,2 (segment 0) vs 3,4 (seg 1)
        for &a in &[0usize, 1, 2] {
            for &b in &[3usize, 4] {
                assert_ne!(sched.machine_of(a), sched.machine_of(b));
            }
        }
    }

    #[test]
    fn within_four_times_bound_with_first_fit_segments() {
        // unit-ish jobs in [1,2], dense
        let inst = Instance::from_pairs((0..20).map(|i| (i, i + 1 + (i % 2))), 3);
        let bl = BoundedLength::first_fit().with_width(2);
        let sched = bl.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        // Lemma 3.3 (×2) on top of FirstFit (×4) — loose sanity cap of 8
        assert!(sched.cost(&inst) <= 8 * bounds::lower_bound(&inst));
    }

    #[test]
    fn negative_starts_segment_correctly() {
        let inst = Instance::from_pairs([(-5, -3), (-2, 0), (0, 2)], 2);
        let bl = BoundedLength::first_fit().with_width(3);
        let segs = bl.segments(&inst);
        // ⌊-5/3⌋ = -2, ⌊-2/3⌋ = -1, ⌊0/3⌋ = 0
        assert_eq!(segs.len(), 3);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2);
        let sched = BoundedLength::first_fit().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 0);
    }

    #[test]
    fn name_includes_width_and_inner() {
        let bl = BoundedLength::first_fit().with_width(4);
        assert_eq!(bl.name(), "BoundedLength[d=4,FirstFit[longest,input]]");
    }
}
