//! The literal "guess and b-match" solver of Section 3.2, step 2.
//!
//! For a (small) instance it enumerates, as the paper's guessing step does:
//!
//! * the machine count `k` and the vector of machine busy intervals
//!   (candidate windows are hulls `[s_i, c_j]` of job endpoints — an optimal
//!   contiguous machine starts at some job's start and ends at some job's
//!   end);
//! * the partition of jobs into independent sets (pairwise disjoint
//!   intervals);
//!
//! and then assigns independent sets to machines by **maximum b-matching**
//! with `b(M_i) = g` and `b(IS_h) = 1` (step 2(d)–(e)): a guess is feasible
//! iff every IS is matched into a machine whose busy window contains it.
//! The minimum total window length over feasible guesses is returned.
//!
//! In the integral tick model the window-length grid is exact, so the solver
//! is *exact* (the paper's (1+ε) rounding exists only for real-valued busy
//! times); setting [`GuessMatch::epsilon`] > 0 coarsens window lengths to
//! the `(1+ε)^m` grid to reproduce the paper's rounding behaviour.
//!
//! Exponential in the job count — guarded by [`GuessMatch::max_jobs`]. It is
//! meant for validating the pipeline on segment-sized instances, exactly the
//! role it plays inside Bounded_Length.

use std::borrow::Cow;

use busytime_graph::max_b_matching;
use busytime_interval::Interval;

use crate::algo::{Scheduler, SchedulerError};
use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::schedule::Schedule;

/// Exhaustive guess-plus-b-matching scheduler for tiny instances.
#[derive(Clone, Copy, Debug)]
pub struct GuessMatch {
    /// Refuse instances with more jobs than this (default 6).
    pub max_jobs: usize,
    /// When positive, round candidate window lengths up to the `(1+ε)^m`
    /// grid as the paper does (0.0 = exact integral grid).
    pub epsilon: f64,
}

impl Default for GuessMatch {
    fn default() -> Self {
        GuessMatch {
            max_jobs: 6,
            epsilon: 0.0,
        }
    }
}

impl GuessMatch {
    /// Exact configuration with the default size guard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Configuration with the paper's (1+ε) window-length rounding.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon >= 0.0, "epsilon must be non-negative");
        GuessMatch {
            epsilon,
            ..Self::default()
        }
    }

    /// Rounds a window length up to the (1+ε)^m grid (identity when ε = 0).
    fn snap(&self, len: i64) -> i64 {
        if self.epsilon <= 0.0 || len <= 1 {
            return len;
        }
        let mut grid = 1.0f64;
        while (grid.ceil() as i64) < len {
            grid *= 1.0 + self.epsilon;
        }
        grid.ceil() as i64
    }
}

/// Enumerate all partitions of `jobs` into independent sets (parts of
/// pairwise non-overlapping intervals); invoke `visit` per partition, stop
/// early when it returns true. Returns whether any visit returned true.
fn for_each_is_partition(jobs: &[Interval], visit: &mut dyn FnMut(&[Vec<usize>]) -> bool) -> bool {
    fn rec(
        jobs: &[Interval],
        next: usize,
        parts: &mut Vec<Vec<usize>>,
        visit: &mut dyn FnMut(&[Vec<usize>]) -> bool,
    ) -> bool {
        if next == jobs.len() {
            return visit(parts);
        }
        let iv = jobs[next];
        for p in 0..parts.len() {
            if parts[p].iter().all(|&j| !jobs[j].overlaps(&iv)) {
                parts[p].push(next);
                if rec(jobs, next + 1, parts, visit) {
                    return true;
                }
                parts[p].pop();
            }
        }
        parts.push(vec![next]);
        if rec(jobs, next + 1, parts, visit) {
            return true;
        }
        parts.pop();
        false
    }
    rec(jobs, 0, &mut Vec::new(), visit)
}

/// State of the window-vector enumeration.
struct Search<'a> {
    jobs: &'a [Interval],
    windows: &'a [Interval],
    g: u32,
    best_cost: i64,
    best: Option<Vec<usize>>,
    cancel: &'a CancelToken,
    /// Latched once `cancel` fires; stops the enumeration at the next
    /// window candidate.
    cut: bool,
}

impl Search<'_> {
    /// Enumerates non-decreasing window-index vectors (multisets) of size
    /// `slots_left` starting at index `from`, pruning on the running best.
    fn enumerate(&mut self, from: usize, slots_left: usize, cost: i64, chosen: &mut Vec<usize>) {
        if slots_left == 0 {
            self.try_vector(chosen, cost);
            return;
        }
        // cooperative check per window candidate: the incumbent (if any)
        // is returned once the whole enumeration unwinds
        if self.cut || self.cancel.is_cancelled() {
            self.cut = true;
            return;
        }
        for w in from..self.windows.len() {
            let c = cost + self.windows[w].len();
            if c >= self.best_cost {
                break; // windows sorted by length: all later ones are no shorter
            }
            chosen.push(w);
            self.enumerate(w, slots_left - 1, c, chosen);
            chosen.pop();
        }
    }

    /// Tests one complete window vector: is there a partition of the jobs
    /// into independent sets that b-matches into these machines?
    fn try_vector(&mut self, vector: &[usize], cost: i64) {
        if cost >= self.best_cost {
            return;
        }
        // necessary condition: every job fits in some window of the vector
        if !self
            .jobs
            .iter()
            .all(|j| vector.iter().any(|&w| self.windows[w].contains(j)))
        {
            return;
        }
        let (jobs, windows, g) = (self.jobs, self.windows, self.g);
        let mut winner: Option<Vec<usize>> = None;
        for_each_is_partition(jobs, &mut |parts| {
            // b-matching machines (b = g) × independent sets (b = 1):
            // an IS may go to a machine whose window contains its hull
            let mut edges = Vec::new();
            for (mi, &w) in vector.iter().enumerate() {
                for (pi, part) in parts.iter().enumerate() {
                    let members: Vec<Interval> = part.iter().map(|&j| jobs[j]).collect();
                    let hull = busytime_interval::hull(&members).expect("parts are non-empty");
                    if windows[w].contains(&hull) {
                        edges.push((mi as u32, pi as u32));
                    }
                }
            }
            let bm = max_b_matching(&vec![g; vector.len()], &vec![1; parts.len()], &edges);
            if bm.size == parts.len() {
                let mut assign = vec![0usize; jobs.len()];
                for &(mi, pi) in &bm.edges {
                    for &j in &parts[pi as usize] {
                        assign[j] = mi as usize;
                    }
                }
                winner = Some(assign);
                true
            } else {
                false
            }
        });
        if let Some(assign) = winner {
            self.best_cost = cost;
            self.best = Some(assign);
        }
    }
}

impl Scheduler for GuessMatch {
    fn name(&self) -> Cow<'static, str> {
        if self.epsilon > 0.0 {
            Cow::Owned(format!("GuessMatch[eps={}]", self.epsilon))
        } else {
            Cow::Borrowed("GuessMatch")
        }
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let n = inst.len();
        if n == 0 {
            return Ok(Schedule::from_assignment(Vec::new()));
        }
        if n > self.max_jobs {
            return Err(SchedulerError::TooLarge {
                scheduler: self.name().into_owned(),
                limit: format!("n ≤ {} (got {n})", self.max_jobs),
            });
        }
        let g = inst.g();
        let jobs = inst.jobs();

        // candidate machine windows: hulls of (job start, job end) pairs,
        // with (1+ε)-snapped lengths, deduplicated and sorted by length
        let mut windows: Vec<Interval> = Vec::new();
        for a in jobs {
            for b in jobs {
                if a.start <= b.end {
                    let len = self.snap(b.end - a.start);
                    windows.push(Interval::new(a.start, a.start + len));
                }
            }
        }
        windows.sort_unstable_by_key(|w| (w.len(), w.start));
        windows.dedup();

        let omega = inst.max_overlap();
        let k_min = omega.div_ceil(g as usize).max(1);

        let mut search = Search {
            jobs,
            windows: &windows,
            g,
            best_cost: i64::MAX,
            best: None,
            cancel,
            cut: false,
        };
        for k in k_min..=n {
            let mut chosen = Vec::with_capacity(k);
            search.enumerate(0, k, 0, &mut chosen);
        }
        match search.best {
            Some(assign) => Ok(Schedule::from_assignment(assign)),
            // only reachable when the enumeration was cut before any
            // feasible vector (the singleton-windows vector guarantees one
            // on a completed run)
            None => Err(SchedulerError::Infeasible {
                scheduler: Scheduler::name(self).into_owned(),
                budget: String::from("deadline expired before a feasible window vector"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::FirstFit;
    use crate::bounds;

    #[test]
    fn partition_enumeration_counts() {
        // 3 mutually disjoint jobs: partitions into independent sets = all
        // set partitions = Bell(3) = 5
        let jobs = [
            Interval::new(0, 1),
            Interval::new(2, 3),
            Interval::new(4, 5),
        ];
        let mut count = 0;
        for_each_is_partition(&jobs, &mut |_| {
            count += 1;
            false
        });
        assert_eq!(count, 5);
        // 3 mutually overlapping jobs: only the all-singletons partition
        let clique = [
            Interval::new(0, 10),
            Interval::new(1, 11),
            Interval::new(2, 12),
        ];
        let mut count = 0;
        for_each_is_partition(&clique, &mut |parts| {
            assert_eq!(parts.len(), 3);
            count += 1;
            false
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn exact_on_disjoint_jobs() {
        // disjoint jobs pack onto one machine: OPT = total length
        let inst = Instance::from_pairs([(0, 2), (3, 5), (6, 7)], 2);
        let sched = GuessMatch::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.cost(&inst), 5);
    }

    #[test]
    fn exact_on_parallel_stack() {
        // 4 identical jobs, g = 2 → two machines of span 10 each
        let inst = Instance::from_pairs([(0, 10); 4], 2);
        let sched = GuessMatch::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.cost(&inst), 20);
        assert_eq!(bounds::lower_bound(&inst), 20);
    }

    #[test]
    fn beats_or_ties_first_fit() {
        let cases = [
            Instance::from_pairs([(0, 4), (1, 5), (3, 7), (6, 9)], 2),
            Instance::from_pairs([(0, 3), (2, 5), (4, 8), (0, 8)], 2),
            Instance::from_pairs([(0, 2), (1, 3), (2, 4), (3, 5)], 3),
        ];
        for inst in cases {
            let exact = GuessMatch::new().schedule(&inst).unwrap();
            exact.validate(&inst).unwrap();
            let ff = FirstFit::paper().schedule(&inst).unwrap();
            assert!(exact.cost(&inst) <= ff.cost(&inst));
            assert!(exact.cost(&inst) >= bounds::lower_bound(&inst));
        }
    }

    #[test]
    fn size_guard() {
        let inst = Instance::from_pairs((0..9).map(|i| (i, i + 1)), 2);
        assert!(matches!(
            GuessMatch::new().schedule(&inst),
            Err(SchedulerError::TooLarge { .. })
        ));
    }

    #[test]
    fn epsilon_rounding_still_feasible_and_close() {
        let inst = Instance::from_pairs([(0, 4), (1, 5), (3, 7)], 2);
        let exact = GuessMatch::new().schedule(&inst).unwrap().cost(&inst);
        let rounded = GuessMatch::with_epsilon(0.5).schedule(&inst).unwrap();
        rounded.validate(&inst).unwrap();
        let rc = rounded.cost(&inst);
        assert!(rc >= exact);
        // (1+ε) rounding inflates each window by at most 1+ε (plus ceil)
        assert!(rc as f64 <= 1.5 * exact as f64 + 3.0);
    }

    #[test]
    fn empty_and_singleton() {
        let empty = Instance::new(vec![], 2);
        assert_eq!(
            GuessMatch::new().schedule(&empty).unwrap().machine_count(),
            0
        );
        let single = Instance::from_pairs([(2, 9)], 1);
        let sched = GuessMatch::new().schedule(&single).unwrap();
        assert_eq!(sched.cost(&single), 7);
    }
}
