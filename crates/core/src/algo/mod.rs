//! The scheduling algorithms of the paper, plus baselines and extensions.
//!
//! All algorithms implement [`Scheduler`]; every produced [`Schedule`] passes
//! [`Schedule::validate`]. Approximation guarantees (checked empirically in
//! `busytime-lab` and, on small instances, against the exact solver of
//! `busytime-exact`):
//!
//! * [`FirstFit`] — 4-approximation on general instances (Theorem 2.1);
//!   there are instances forcing ratio ≥ 3 − ε (Theorem 2.4).
//! * [`NextFitProper`] — 2-approximation on proper families (Theorem 3.1).
//! * [`BoundedLength`] — (2+ε)-approximation when lengths lie in `[1, d]`
//!   with integral starts (Theorem 3.2); in the integral tick model the
//!   busy-length grid is exact, so the factor is 2 relative to the best
//!   segment-respecting solution (Lemma 3.3 supplies the remaining 2).
//! * [`CliqueScheduler`] — 2-approximation when all jobs pairwise overlap
//!   (Theorem A.1).
//! * [`MinMachines`] — optimizes machine *count* (⌈ω/g⌉, optimal; the
//!   polynomially solvable objective contrasted in Section 1.1), used as a
//!   busy-time baseline.

mod baselines;
mod bounded_length;
mod clique;
pub mod demand;
mod first_fit;
mod guess_match;
mod next_fit_proper;

pub use baselines::{BestFit, MinMachines, NextFitArrival, RandomFit};
pub use bounded_length::BoundedLength;
pub use clique::CliqueScheduler;
pub use first_fit::{FirstFit, SortOrder, TieBreak};
pub use guess_match::GuessMatch;
pub use next_fit_proper::NextFitProper;

use std::borrow::Cow;

use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::schedule::Schedule;

/// Why a scheduler declined an instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchedulerError {
    /// The instance is outside the class the algorithm is defined for
    /// (e.g. the clique algorithm on a non-clique).
    UnsupportedInstance {
        /// The scheduler that refused.
        scheduler: String,
        /// Human-readable reason.
        reason: String,
    },
    /// The instance exceeds the size limits of an exhaustive solver.
    TooLarge {
        /// The scheduler that refused.
        scheduler: String,
        /// Human-readable limit description.
        limit: String,
    },
    /// No feasible schedule exists within the solver's resource budget
    /// (time, machines, or cost cap). Reserved for budgeted solvers; the
    /// paper's algorithms always succeed on instances in their class.
    Infeasible {
        /// The scheduler that gave up.
        scheduler: String,
        /// The budget that was exhausted.
        budget: String,
    },
}

impl std::fmt::Display for SchedulerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedulerError::UnsupportedInstance { scheduler, reason } => {
                write!(f, "{scheduler}: unsupported instance: {reason}")
            }
            SchedulerError::TooLarge { scheduler, limit } => {
                write!(f, "{scheduler}: instance too large: {limit}")
            }
            SchedulerError::Infeasible { scheduler, budget } => {
                write!(
                    f,
                    "{scheduler}: no feasible schedule within budget: {budget}"
                )
            }
        }
    }
}

impl std::error::Error for SchedulerError {}

/// A busy-time scheduling algorithm.
///
/// Every solver loop is written against a [`CancelToken`]: implementations
/// of [`Scheduler::schedule_with`] poll [`CancelToken::is_cancelled`] at
/// the granularity of their inner loop (per branch, per DP row, per sweep
/// segment) and, on expiry, return their best incumbent schedule — or
/// [`SchedulerError::Infeasible`] when they hold nothing feasible yet.
/// Polynomial-time solvers whose whole run fits comfortably inside any
/// realistic deadline may ignore the token.
pub trait Scheduler {
    /// Human-readable name including parameterization (used in experiment
    /// tables and solver registries).
    ///
    /// Returns a `Cow` so the common case — a fixed, static name — does not
    /// allocate on every dispatch; parameterized schedulers return an owned
    /// string.
    fn name(&self) -> Cow<'static, str>;

    /// Produces a feasible schedule for `inst`, checking `cancel`
    /// cooperatively. On cancellation/expiry the solver stops early and
    /// returns its incumbent (a feasible, possibly suboptimal schedule) or
    /// [`SchedulerError::Infeasible`] when it has no incumbent; errors for
    /// instances outside the algorithm's class or size limits are
    /// unchanged.
    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError>;

    /// Produces a feasible schedule for `inst` with no deadline
    /// ([`CancelToken::never`]) — the convenience entry point for direct
    /// calls.
    fn schedule(&self, inst: &Instance) -> Result<Schedule, SchedulerError> {
        self.schedule_with(inst, &CancelToken::never())
    }
}

impl<S: Scheduler + ?Sized> Scheduler for &S {
    fn name(&self) -> Cow<'static, str> {
        (**self).name()
    }
    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        (**self).schedule_with(inst, cancel)
    }
    fn schedule(&self, inst: &Instance) -> Result<Schedule, SchedulerError> {
        (**self).schedule(inst)
    }
}

impl<S: Scheduler + ?Sized> Scheduler for Box<S> {
    fn name(&self) -> Cow<'static, str> {
        (**self).name()
    }
    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        (**self).schedule_with(inst, cancel)
    }
    fn schedule(&self, inst: &Instance) -> Result<Schedule, SchedulerError> {
        (**self).schedule(inst)
    }
}

/// Runs `inner` independently on every connected component of the instance
/// and merges the results — the paper's w.l.o.g. preprocessing (Section 1.4).
/// Lossless for the busy-time objective.
#[derive(Clone, Debug)]
pub struct Decomposed<S> {
    /// The scheduler applied per component.
    pub inner: S,
}

impl<S: Scheduler> Decomposed<S> {
    /// Wraps a scheduler with component decomposition.
    pub fn new(inner: S) -> Self {
        Decomposed { inner }
    }
}

impl<S: Scheduler + Sync> Scheduler for Decomposed<S> {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!("Decomposed({})", self.inner.name()))
    }

    /// Every component runs under its **own child** of `cancel`: a cut
    /// parent (deadline, session teardown) reaches every component at its
    /// next cooperative check, while a component poisoning its own token
    /// (a budget race loser inside the inner solver) never cuts its
    /// siblings. When an intra-parallelism context is live
    /// ([`crate::pool::intra`]) and the instance has at least two
    /// components, the components are solved concurrently on the context's
    /// executor — dispatched largest-first so the fork's critical path is
    /// one big component, with results merged (and the first error
    /// surfaced) in original component order, so the outcome is identical
    /// to the sequential pass.
    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let comps = inst.components();
        let intra = if comps.len() >= 2 {
            crate::pool::intra::active()
        } else {
            None
        };
        let scheds: Vec<Schedule> = match intra {
            Some((exec, width)) => {
                // children minted before dispatch, in component order, so
                // cancel semantics do not depend on scheduling
                let tokens: Vec<CancelToken> = comps.iter().map(|_| cancel.child()).collect();
                let mut order: Vec<usize> = (0..comps.len()).collect();
                order.sort_by_key(|&i| std::cmp::Reverse(comps[i].0.len()));
                let mut slots: Vec<Option<Result<Schedule, SchedulerError>>> =
                    comps.iter().map(|_| None).collect();
                let ran = exec.par_map_with(width, &order, |&i| {
                    (i, self.inner.schedule_with(&comps[i].0, &tokens[i]))
                });
                for (i, result) in ran {
                    slots[i] = Some(result);
                }
                slots
                    .into_iter()
                    .map(|slot| slot.expect("every component dispatched"))
                    .collect::<Result<Vec<_>, _>>()?
            }
            None => {
                let mut scheds = Vec::with_capacity(comps.len());
                for (sub, _) in &comps {
                    scheds.push(self.inner.schedule_with(sub, &cancel.child())?);
                }
                scheds
            }
        };
        let mut raw = vec![0usize; inst.len()];
        let mut offset = 0usize;
        for ((_, ids), sched) in comps.iter().zip(&scheds) {
            for (local, &orig) in ids.iter().enumerate() {
                raw[orig] = offset + sched.machine_of(local);
            }
            offset += sched.machine_count();
        }
        Ok(Schedule::from_assignment(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomposed_matches_inner_on_connected() {
        let inst = Instance::from_pairs([(0, 4), (2, 6), (3, 8)], 2);
        let inner = FirstFit::paper();
        let direct = inner.schedule(&inst).unwrap();
        let decomposed = Decomposed::new(FirstFit::paper()).schedule(&inst).unwrap();
        assert_eq!(direct.cost(&inst), decomposed.cost(&inst));
    }

    #[test]
    fn decomposed_never_mixes_components() {
        let inst = Instance::from_pairs([(0, 2), (100, 102), (1, 3), (101, 103)], 4);
        let sched = Decomposed::new(FirstFit::paper()).schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        // jobs 0,2 form one component; 1,3 the other
        assert_ne!(sched.machine_of(0), sched.machine_of(1));
        assert_eq!(sched.machine_of(0), sched.machine_of(2));
    }

    /// Records each per-component token's state at entry; optionally
    /// poisons that token to simulate a component giving up on itself.
    struct TokenProbe {
        seen: std::sync::Mutex<Vec<bool>>,
        poison_own: bool,
    }

    impl TokenProbe {
        fn new(poison_own: bool) -> Self {
            TokenProbe {
                seen: std::sync::Mutex::new(Vec::new()),
                poison_own,
            }
        }
    }

    impl Scheduler for TokenProbe {
        fn name(&self) -> Cow<'static, str> {
            Cow::Borrowed("TokenProbe")
        }
        fn schedule_with(
            &self,
            inst: &Instance,
            cancel: &CancelToken,
        ) -> Result<Schedule, SchedulerError> {
            self.seen.lock().unwrap().push(cancel.is_cancelled());
            if self.poison_own {
                cancel.cancel();
            }
            FirstFit::paper().schedule_with(inst, &CancelToken::never())
        }
    }

    fn three_components() -> Instance {
        Instance::from_pairs([(0, 2), (100, 102), (200, 202)], 2)
    }

    #[test]
    fn decomposed_children_observe_a_cancelled_parent() {
        for parallel in [false, true] {
            let executor = crate::pool::Executor::new(2);
            let _ctx = parallel.then(|| crate::pool::intra::enter(&executor, 2));
            let parent = CancelToken::never();
            parent.cancel();
            let probe = TokenProbe::new(false);
            let _ = Decomposed::new(&probe).schedule_with(&three_components(), &parent);
            let seen = probe.seen.lock().unwrap();
            assert_eq!(seen.len(), 3, "parallel={parallel}");
            assert!(
                seen.iter().all(|&cancelled| cancelled),
                "parallel={parallel}: a cut parent must reach every component"
            );
        }
    }

    #[test]
    fn decomposed_component_poison_spares_parent_and_siblings() {
        for parallel in [false, true] {
            let executor = crate::pool::Executor::new(2);
            let _ctx = parallel.then(|| crate::pool::intra::enter(&executor, 2));
            let inst = three_components();
            let parent = CancelToken::never();
            let probe = TokenProbe::new(true); // every component poisons its own token
            let sched = Decomposed::new(&probe)
                .schedule_with(&inst, &parent)
                .unwrap();
            sched.validate(&inst).unwrap();
            assert!(
                !parent.is_cancelled(),
                "parallel={parallel}: a component's own cancel must not poison the parent"
            );
            let seen = probe.seen.lock().unwrap();
            assert_eq!(seen.len(), 3, "parallel={parallel}");
            assert!(
                seen.iter().all(|&cancelled| !cancelled),
                "parallel={parallel}: siblings must each get a fresh child token"
            );
        }
    }

    #[test]
    fn parallel_decomposition_matches_sequential_assignment() {
        // pseudorandom many-component instance: the parallel path must
        // merge to exactly the sequential assignment
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^ (z >> 31)
        };
        let mut pairs = Vec::new();
        for comp in 0..40i64 {
            let base = comp * 1000;
            for _ in 0..(1 + next() % 6) {
                let s = base + (next() % 20) as i64;
                pairs.push((s, s + 1 + (next() % 10) as i64));
            }
        }
        let inst = Instance::from_pairs(pairs, 2);
        let sequential = Decomposed::new(FirstFit::paper()).schedule(&inst).unwrap();
        let executor = crate::pool::Executor::new(4);
        let _ctx = crate::pool::intra::enter(&executor, 4);
        let parallel = Decomposed::new(FirstFit::paper()).schedule(&inst).unwrap();
        assert_eq!(sequential.assignment(), parallel.assignment());
    }

    #[test]
    fn error_display() {
        let e = SchedulerError::UnsupportedInstance {
            scheduler: "Clique".into(),
            reason: "no common point".into(),
        };
        assert!(e.to_string().contains("Clique"));
        let e = SchedulerError::TooLarge {
            scheduler: "GuessMatch".into(),
            limit: "n ≤ 6".into(),
        };
        assert!(e.to_string().contains("too large"));
        let e = SchedulerError::Infeasible {
            scheduler: "Budgeted".into(),
            budget: "10ms".into(),
        };
        assert!(e.to_string().contains("within budget"));
    }

    #[test]
    fn names_do_not_allocate_for_static_schedulers() {
        assert!(matches!(MinMachines.name(), Cow::Borrowed("MinMachines")));
        assert!(matches!(BestFit.name(), Cow::Borrowed("BestFit")));
    }
}
