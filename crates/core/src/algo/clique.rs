//! The clique scheduling algorithm (Appendix): a 2-approximation when all
//! jobs pairwise overlap.
//!
//! By the Helly property a pairwise-overlapping interval family shares a
//! common point `t`. With `δ_j = max(t − s_j, c_j − t)` (the farthest
//! endpoint of `J_j` from `t`, Fig. 5):
//!
//! 1. sort jobs by non-increasing `δ_j`;
//! 2. fill machines with consecutive groups of `g` jobs.
//!
//! Theorem A.1: each machine `M_i`'s busy interval sits inside
//! `[t − δ_A^i, t + δ_A^i]`, and `Σ δ_A^i ≤ Σ δ_O^i ≤ OPT`, giving
//! `ALG ≤ 2·OPT`. The tie order among equal `δ` is the input order, which is
//! what the tight family in `busytime-instances::adversarial` manipulates to
//! force ratio exactly 2.

use std::borrow::Cow;

use crate::algo::{Scheduler, SchedulerError};
use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::schedule::Schedule;
use busytime_interval::relations;

/// The Appendix algorithm for pairwise-overlapping (clique) instances.
#[derive(Clone, Copy, Debug, Default)]
pub struct CliqueScheduler {
    /// Optional override for the common point `t`; by default the canonical
    /// witness `max_j s_j` is used. Must lie in every job.
    pub point: Option<i64>,
}

impl CliqueScheduler {
    /// Uses the canonical common point `max_j s_j`.
    pub fn new() -> Self {
        CliqueScheduler { point: None }
    }

    /// Uses a caller-chosen common point (must belong to every job or
    /// scheduling fails).
    pub fn at_point(point: i64) -> Self {
        CliqueScheduler { point: Some(point) }
    }

    /// The δ-sorted job order the algorithm processes (ties input-stable).
    pub fn job_order(&self, inst: &Instance, t: i64) -> Vec<usize> {
        let mut ids: Vec<usize> = (0..inst.len()).collect();
        ids.sort_by_key(|&i| {
            let iv = inst.job(i);
            std::cmp::Reverse((t - iv.start).max(iv.end - t))
        });
        ids
    }
}

impl Scheduler for CliqueScheduler {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Clique")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        _cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        if inst.is_empty() {
            return Ok(Schedule::from_assignment(Vec::new()));
        }
        let t = match self.point {
            Some(p) => {
                if inst.jobs().iter().all(|iv| iv.contains_time(p)) {
                    p
                } else {
                    return Err(SchedulerError::UnsupportedInstance {
                        scheduler: self.name().into_owned(),
                        reason: format!("point {p} is not contained in every job"),
                    });
                }
            }
            None => relations::common_point(inst.jobs()).ok_or_else(|| {
                SchedulerError::UnsupportedInstance {
                    scheduler: self.name().into_owned(),
                    reason: String::from("jobs do not share a common point (not a clique)"),
                }
            })?,
        };
        let order = self.job_order(inst, t);
        let g = inst.g() as usize;
        let mut raw = vec![0usize; inst.len()];
        for (rank, &id) in order.iter().enumerate() {
            raw[id] = rank / g;
        }
        Ok(Schedule::from_assignment(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn groups_of_g_by_delta() {
        // common point t = 0; δ = 10, 9, 2, 1
        let inst = Instance::from_pairs([(-10, 0), (0, 9), (-2, 1), (0, 1)], 2);
        let sched = CliqueScheduler::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        // two biggest-δ jobs together, two smallest together
        assert_eq!(sched.machine_of(0), sched.machine_of(1));
        assert_eq!(sched.machine_of(2), sched.machine_of(3));
        assert_ne!(sched.machine_of(0), sched.machine_of(2));
    }

    #[test]
    fn machine_count_is_ceil_n_over_g() {
        let inst = Instance::from_pairs([(0, 10); 7], 3);
        let sched = CliqueScheduler::new().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 3); // ⌈7/3⌉
        sched.validate(&inst).unwrap();
    }

    #[test]
    fn rejects_non_clique() {
        let inst = Instance::from_pairs([(0, 1), (5, 6)], 2);
        let err = CliqueScheduler::new().schedule(&inst).unwrap_err();
        assert!(matches!(err, SchedulerError::UnsupportedInstance { .. }));
    }

    #[test]
    fn explicit_point_validation() {
        let inst = Instance::from_pairs([(0, 4), (2, 6)], 2);
        assert!(CliqueScheduler::at_point(3).schedule(&inst).is_ok());
        let err = CliqueScheduler::at_point(5).schedule(&inst).unwrap_err();
        assert!(matches!(err, SchedulerError::UnsupportedInstance { .. }));
    }

    #[test]
    fn two_approx_against_lower_bound() {
        // identical jobs: OPT = span · ⌈n/g⌉... LB = parallelism bound
        let inst = Instance::from_pairs([(0, 10); 9], 3);
        let sched = CliqueScheduler::new().schedule(&inst).unwrap();
        assert!(sched.cost(&inst) <= 2 * bounds::lower_bound(&inst));
        // here the algorithm is actually optimal: 3 machines × 10
        assert_eq!(sched.cost(&inst), 30);
    }

    #[test]
    fn tight_family_hits_ratio_two() {
        // g lefts [-L,0], g rights [0,L], alternating input order: equal δ,
        // stable sort keeps the alternation → every machine mixes sides
        let g = 3u32;
        let l = 100i64;
        let mut pairs = Vec::new();
        for _ in 0..g {
            pairs.push((-l, 0));
            pairs.push((0, l));
        }
        let inst = Instance::from_pairs(pairs, g);
        let sched = CliqueScheduler::new().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        // ALG: 2 machines each busy [-L, L] → 4L; OPT: one machine per side → 2L
        assert_eq!(sched.cost(&inst), 4 * l);
        assert_eq!(bounds::lower_bound(&inst), 2 * l);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 2);
        let sched = CliqueScheduler::new().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 0);
    }

    #[test]
    fn single_job() {
        let inst = Instance::from_pairs([(3, 8)], 5);
        let sched = CliqueScheduler::new().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 1);
        assert_eq!(sched.cost(&inst), 5);
    }
}
