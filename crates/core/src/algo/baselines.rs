//! Baseline schedulers: the machine-minimizing coloring scheduler from the
//! paper's introduction, plus heuristics used in ablation experiments.

use std::borrow::Cow;

use busytime_graph::IntervalGraph;

use crate::algo::{Scheduler, SchedulerError};
use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::machine::MachineLoad;
use crate::schedule::Schedule;

/// The polynomially optimal *machine-count* scheduler of Section 1.1:
/// optimally color the interval graph (ω colors), then pack every `g`
/// consecutive color classes onto one machine — `⌈ω/g⌉` machines, the
/// minimum possible.
///
/// Its *busy time* carries no guarantee; experiments use it as the natural
/// "consolidate onto fewest machines" baseline that busy-time-aware
/// algorithms beat (the paper's motivation for the new objective).
#[derive(Clone, Copy, Debug, Default)]
pub struct MinMachines;

impl Scheduler for MinMachines {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("MinMachines")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        _cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let graph = IntervalGraph::new(inst.jobs());
        let (colors, _) = graph.optimal_coloring();
        let g = inst.g() as usize;
        let raw: Vec<usize> = colors.iter().map(|&c| c as usize / g).collect();
        Ok(Schedule::from_assignment(raw))
    }
}

/// NextFit in arrival (input) order without any sorting — the weakest
/// sensible baseline; shows what the paper's sort step buys.
#[derive(Clone, Copy, Debug, Default)]
pub struct NextFitArrival;

impl Scheduler for NextFitArrival {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("NextFitArrival")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        _cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let g = inst.g();
        let mut raw = vec![0usize; inst.len()];
        let mut current = MachineLoad::new();
        let mut machine = 0usize;
        for (id, slot) in raw.iter_mut().enumerate() {
            let iv = inst.job(id);
            if !current.is_empty() && !current.can_fit(&iv, g) {
                machine += 1;
                current = MachineLoad::new();
            }
            current.push(id, &iv);
            *slot = machine;
        }
        if inst.is_empty() {
            return Ok(Schedule::from_assignment(Vec::new()));
        }
        Ok(Schedule::from_assignment(raw))
    }
}

/// BestFit: like FirstFit (longest job first) but each job goes to the
/// feasible machine whose busy time grows the *least* (ties: lowest index);
/// a new machine opens only when no machine fits. A natural "smarter greedy"
/// whose worst case is nevertheless not better than FirstFit's — exercised
/// in the comparison experiment.
#[derive(Clone, Copy, Debug, Default)]
pub struct BestFit;

impl Scheduler for BestFit {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("BestFit")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        _cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let g = inst.g();
        let mut order: Vec<usize> = (0..inst.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(inst.job(i).len()));
        let mut machines: Vec<MachineLoad> = Vec::new();
        let mut raw = vec![0usize; inst.len()];
        for id in order {
            let iv = inst.job(id);
            let best = machines
                .iter()
                .enumerate()
                .filter(|(_, m)| m.can_fit(&iv, g))
                .min_by_key(|(idx, m)| (m.busy_increase(&iv), *idx))
                .map(|(idx, _)| idx);
            let slot = best.unwrap_or_else(|| {
                machines.push(MachineLoad::new());
                machines.len() - 1
            });
            machines[slot].push(id, &iv);
            raw[id] = slot;
        }
        Ok(Schedule::from_assignment(raw))
    }
}

/// FirstFit order but a *random* feasible machine is chosen (seeded,
/// deterministic); isolates how much FirstFit's lowest-index rule matters.
#[derive(Clone, Copy, Debug)]
pub struct RandomFit {
    /// PRNG seed (SplitMix64 stream).
    pub seed: u64,
}

impl RandomFit {
    /// Creates a seeded RandomFit.
    pub fn new(seed: u64) -> Self {
        RandomFit { seed }
    }
}

impl Scheduler for RandomFit {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!("RandomFit[seed{}]", self.seed))
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        _cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let g = inst.g();
        let mut order: Vec<usize> = (0..inst.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(inst.job(i).len()));
        let mut machines: Vec<MachineLoad> = Vec::new();
        let mut raw = vec![0usize; inst.len()];
        let mut state = self.seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut feasible: Vec<usize> = Vec::new();
        for id in order {
            let iv = inst.job(id);
            feasible.clear();
            feasible.extend(
                machines
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.can_fit(&iv, g))
                    .map(|(idx, _)| idx),
            );
            let slot = if feasible.is_empty() {
                machines.push(MachineLoad::new());
                machines.len() - 1
            } else {
                feasible[(next() % feasible.len() as u64) as usize]
            };
            machines[slot].push(id, &iv);
            raw[id] = slot;
        }
        Ok(Schedule::from_assignment(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busytime_interval::sweep;

    fn dense_instance() -> Instance {
        Instance::from_pairs(
            [
                (0, 6),
                (1, 7),
                (2, 9),
                (4, 11),
                (5, 12),
                (8, 14),
                (10, 15),
                (0, 3),
                (12, 15),
            ],
            2,
        )
    }

    #[test]
    fn min_machines_uses_ceil_omega_over_g() {
        let inst = dense_instance();
        let omega = sweep::max_overlap(inst.jobs());
        let sched = MinMachines.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.machine_count(), omega.div_ceil(inst.g() as usize));
    }

    #[test]
    fn min_machines_is_minimum_possible() {
        // no feasible schedule can use fewer than ⌈ω/g⌉ machines: at the
        // peak, ω jobs are active and each machine hosts at most g of them
        let inst = dense_instance();
        let omega = sweep::max_overlap(inst.jobs());
        let lower = omega.div_ceil(inst.g() as usize);
        for s in [
            MinMachines.schedule(&inst).unwrap(),
            BestFit.schedule(&inst).unwrap(),
        ] {
            assert!(s.machine_count() >= lower);
        }
    }

    #[test]
    fn next_fit_arrival_feasible() {
        let inst = dense_instance();
        let sched = NextFitArrival.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
    }

    #[test]
    fn best_fit_feasible_and_no_worse_than_trivial() {
        let inst = dense_instance();
        let sched = BestFit.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        // trivially, one machine per job costs total_len
        assert!(sched.cost(&inst) <= inst.total_len());
    }

    #[test]
    fn best_fit_prefers_zero_growth() {
        // a short job inside an already-busy window must join that machine
        let inst = Instance::from_pairs([(0, 10), (2, 4), (20, 30)], 2);
        let sched = BestFit.schedule(&inst).unwrap();
        assert_eq!(sched.machine_of(1), sched.machine_of(0));
    }

    #[test]
    fn random_fit_deterministic_per_seed() {
        let inst = dense_instance();
        let a = RandomFit::new(1).schedule(&inst).unwrap();
        let b = RandomFit::new(1).schedule(&inst).unwrap();
        assert_eq!(a, b);
        a.validate(&inst).unwrap();
    }

    #[test]
    fn all_baselines_handle_empty() {
        let inst = Instance::new(vec![], 4);
        for cost in [
            MinMachines.schedule(&inst).unwrap().cost(&inst),
            NextFitArrival.schedule(&inst).unwrap().cost(&inst),
            BestFit.schedule(&inst).unwrap().cost(&inst),
            RandomFit::new(0).schedule(&inst).unwrap().cost(&inst),
        ] {
            assert_eq!(cost, 0);
        }
    }
}
