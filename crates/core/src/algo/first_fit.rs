//! Algorithm FirstFit (Section 2.1): the 4-approximation for general
//! instances.
//!
//! 1. Sort the jobs in non-increasing order of length.
//! 2. Assign each job to the *first* (lowest-indexed) machine that can
//!    process it — i.e. that runs at most `g − 1` jobs at every `t ∈ J` —
//!    opening a new machine when none fits.
//!
//! The paper's analysis (Theorems 2.1, 2.4, 2.5) places the approximation
//! ratio between 3 and 4. Ties between equal-length jobs are broken by a
//! configurable [`TieBreak`]; Theorem 2.4's lower-bound family exploits an
//! adversarial tie order, realized here by [`TieBreak::Input`] plus a
//! crafted input permutation (see `busytime-instances::adversarial`).
//! [`SortOrder`] variants other than [`SortOrder::LongestFirst`] exist for
//! the ablation experiment (E11) and carry **no** approximation guarantee.

use std::borrow::Cow;

use crate::algo::{Scheduler, SchedulerError};
use crate::cancel::CancelToken;
use crate::instance::Instance;
use crate::machine::MachineLoad;
use crate::schedule::Schedule;

/// Primary ordering of jobs before the greedy pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOrder {
    /// Non-increasing length — the paper's algorithm.
    LongestFirst,
    /// Non-decreasing length — ablation only.
    ShortestFirst,
    /// Input order, no sorting — ablation only.
    Arrival,
}

/// Secondary ordering among equal-length jobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// Stable: preserve input order (lets callers hand-craft adversarial
    /// orders, as Theorem 2.4 requires).
    Input,
    /// Earliest start first.
    EarliestStart,
    /// Deterministic pseudo-random shuffle with the given seed.
    Seeded(u64),
}

/// The FirstFit scheduler.
///
/// ```
/// use busytime_core::{algo::{FirstFit, Scheduler}, Instance};
/// // three mutually overlapping jobs, g = 2: one must open a second machine
/// let inst = Instance::from_pairs([(0, 10), (1, 11), (2, 12)], 2);
/// let schedule = FirstFit::paper().schedule(&inst).unwrap();
/// assert_eq!(schedule.machine_count(), 2);
/// assert_eq!(schedule.cost(&inst), 11 + 10); // [0,11] and [2,12]
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FirstFit {
    /// Primary sort of the greedy pass.
    pub order: SortOrder,
    /// Tie-break among equal primary keys.
    pub tie: TieBreak,
}

impl FirstFit {
    /// The algorithm exactly as in Section 2.1: longest job first, input
    /// order among ties.
    pub fn paper() -> Self {
        FirstFit {
            order: SortOrder::LongestFirst,
            tie: TieBreak::Input,
        }
    }

    /// Longest-first with a seeded random tie-break (for averaging out
    /// adversarial orders in experiments).
    pub fn seeded(seed: u64) -> Self {
        FirstFit {
            order: SortOrder::LongestFirst,
            tie: TieBreak::Seeded(seed),
        }
    }

    /// The processing order of job ids this configuration induces.
    pub fn job_order(&self, inst: &Instance) -> Vec<usize> {
        let mut ids = Vec::new();
        self.job_order_into(inst, &mut ids);
        ids
    }

    /// [`FirstFit::job_order`] into a caller-supplied buffer (cleared
    /// first) — the greedy pass stages its order in per-thread scratch so
    /// batched solves allocate no order vector per record.
    fn job_order_into(&self, inst: &Instance, ids: &mut Vec<usize>) {
        ids.clear();
        ids.extend(0..inst.len());
        if let TieBreak::Seeded(seed) = self.tie {
            shuffle(ids, seed);
        }
        if let TieBreak::EarliestStart = self.tie {
            ids.sort_by_key(|&i| inst.job(i).start);
        }
        match self.order {
            SortOrder::LongestFirst => ids.sort_by_key(|&i| std::cmp::Reverse(inst.job(i).len())),
            SortOrder::ShortestFirst => ids.sort_by_key(|&i| inst.job(i).len()),
            SortOrder::Arrival => {}
        }
    }
}

impl Scheduler for FirstFit {
    fn name(&self) -> Cow<'static, str> {
        let order = match self.order {
            SortOrder::LongestFirst => "longest",
            SortOrder::ShortestFirst => "shortest",
            SortOrder::Arrival => "arrival",
        };
        let tie = match self.tie {
            TieBreak::Input => String::from("input"),
            TieBreak::EarliestStart => String::from("earliest"),
            TieBreak::Seeded(s) => format!("seed{s}"),
        };
        Cow::Owned(format!("FirstFit[{order},{tie}]"))
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        _cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let g = inst.g();
        let mut machines: Vec<MachineLoad> = Vec::new();
        let mut raw = vec![0usize; inst.len()];
        crate::pool::scratch::with(|arena| {
            let order = &mut arena.ids;
            self.job_order_into(inst, order);
            for &id in order.iter() {
                let iv = inst.job(id);
                let slot = machines
                    .iter()
                    .position(|m| m.can_fit(&iv, g))
                    .unwrap_or_else(|| {
                        machines.push(MachineLoad::new());
                        machines.len() - 1
                    });
                machines[slot].push(id, &iv);
                raw[id] = slot;
            }
        });
        Ok(Schedule::from_assignment(raw))
    }
}

/// Fisher–Yates with a SplitMix64 stream — deterministic, dependency-free.
fn shuffle(ids: &mut [usize], seed: u64) {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..ids.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        ids.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;

    #[test]
    fn longest_first_order() {
        let inst = Instance::from_pairs([(0, 1), (0, 5), (0, 3)], 2);
        let order = FirstFit::paper().job_order(&inst);
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn stable_ties_preserve_input() {
        let inst = Instance::from_pairs([(0, 2), (5, 7), (10, 12)], 2);
        let order = FirstFit::paper().job_order(&inst);
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn disjoint_jobs_share_one_machine() {
        // FirstFit packs non-overlapping jobs onto machine 0
        let inst = Instance::from_pairs([(0, 2), (3, 5), (6, 8)], 1);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 1);
        assert_eq!(sched.cost(&inst), 6);
    }

    #[test]
    fn capacity_forces_second_machine() {
        let inst = Instance::from_pairs([(0, 10), (0, 10), (0, 10)], 2);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.machine_count(), 2);
        assert_eq!(sched.cost(&inst), 20);
    }

    #[test]
    fn respects_four_opt_via_lower_bound() {
        let inst = Instance::from_pairs(
            [(0, 6), (1, 7), (2, 9), (4, 11), (5, 12), (8, 14), (10, 15)],
            2,
        );
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert!(sched.cost(&inst) <= 4 * bounds::lower_bound(&inst));
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 3);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 0);
        assert_eq!(sched.cost(&inst), 0);
    }

    #[test]
    fn seeded_shuffle_is_deterministic() {
        let inst = Instance::from_pairs([(0, 2); 10], 2);
        let a = FirstFit::seeded(42).job_order(&inst);
        let b = FirstFit::seeded(42).job_order(&inst);
        let c = FirstFit::seeded(43).job_order(&inst);
        assert_eq!(a, b);
        assert_ne!(a, c); // overwhelmingly likely for 10! orders
    }

    #[test]
    fn ablation_orders_differ() {
        let inst = Instance::from_pairs([(0, 1), (0, 5), (0, 3)], 2);
        let shortest = FirstFit {
            order: SortOrder::ShortestFirst,
            tie: TieBreak::Input,
        };
        assert_eq!(shortest.job_order(&inst), vec![0, 2, 1]);
        let arrival = FirstFit {
            order: SortOrder::Arrival,
            tie: TieBreak::Input,
        };
        assert_eq!(arrival.job_order(&inst), vec![0, 1, 2]);
    }

    #[test]
    fn earliest_start_tiebreak() {
        // equal lengths: order by start
        let inst = Instance::from_pairs([(5, 7), (0, 2), (3, 5)], 2);
        let ff = FirstFit {
            order: SortOrder::LongestFirst,
            tie: TieBreak::EarliestStart,
        };
        assert_eq!(ff.job_order(&inst), vec![1, 2, 0]);
    }

    #[test]
    fn first_fit_prefers_lowest_index() {
        // two disjoint machines could host the third job; FirstFit picks 0
        let inst = Instance::from_pairs([(0, 4), (10, 14), (20, 24)], 1);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 1);
    }

    #[test]
    fn names_reflect_parameters() {
        assert_eq!(FirstFit::paper().name(), "FirstFit[longest,input]");
        assert_eq!(FirstFit::seeded(7).name(), "FirstFit[longest,seed7]");
    }
}
