//! Extension: busy-time scheduling with *machine-capacity demands*.
//!
//! The paper's related work \[15\] (Khandekar, Schieber, Shachnai, Tamir,
//! *Real-time scheduling to minimize machine busy times*) generalizes the
//! problem so that each job `J_j` carries a demand `d_j ≤ g` and a machine
//! may run any job set whose summed demand stays within `g` at every
//! instant; they extend the paper's FirstFit into a 5-approximation. This
//! module implements that generalized instance model and the generalized
//! FirstFit so the extension can be exercised experimentally (experiment
//! E12); the unit-demand case coincides exactly with [`crate::algo::FirstFit`].

use busytime_interval::{span, Interval, OverlapProfile};

use crate::schedule::Schedule;

/// A job with a closed processing interval and a parallelism demand.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DemandJob {
    /// The processing window `[s_j, c_j]`.
    pub interval: Interval,
    /// Units of machine capacity the job occupies while active (`1 ≤ d_j ≤ g`).
    pub demand: u32,
}

/// A capacitated instance: jobs with demands, machine capacity `g`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DemandInstance {
    jobs: Vec<DemandJob>,
    g: u32,
}

impl DemandInstance {
    /// Creates a capacitated instance.
    ///
    /// # Panics
    ///
    /// Panics if `g == 0` or any demand is 0 or exceeds `g`.
    pub fn new(jobs: Vec<DemandJob>, g: u32) -> Self {
        assert!(g >= 1, "capacity g must be at least 1");
        for (i, job) in jobs.iter().enumerate() {
            assert!(
                job.demand >= 1 && job.demand <= g,
                "job {i} demand {} outside [1, g = {g}]",
                job.demand
            );
        }
        DemandInstance { jobs, g }
    }

    /// The jobs.
    pub fn jobs(&self) -> &[DemandJob] {
        &self.jobs
    }

    /// Machine capacity `g`.
    pub fn g(&self) -> u32 {
        self.g
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True iff there are no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Generalized parallelism bound: `⌈Σ_j len(J_j)·d_j / g⌉ ≤ OPT`.
    pub fn weighted_parallelism_bound(&self) -> i64 {
        let weighted: i64 = self
            .jobs
            .iter()
            .map(|j| j.interval.len() * i64::from(j.demand))
            .sum();
        let g = i64::from(self.g);
        weighted.div_euclid(g) + i64::from(weighted.rem_euclid(g) != 0)
    }

    /// Span bound: `span(J) ≤ OPT` (unchanged from Observation 1.1).
    pub fn span_bound(&self) -> i64 {
        span(&self.jobs.iter().map(|j| j.interval).collect::<Vec<_>>())
    }

    /// Combined lower bound.
    pub fn lower_bound(&self) -> i64 {
        self.weighted_parallelism_bound().max(self.span_bound())
    }

    /// Checks that a machine assignment respects capacity everywhere and
    /// returns the total busy time, or a description of the violation.
    pub fn validate(&self, schedule: &Schedule) -> Result<i64, String> {
        if schedule.assignment().len() != self.jobs.len() {
            return Err(format!(
                "assignment covers {} jobs, instance has {}",
                schedule.assignment().len(),
                self.jobs.len()
            ));
        }
        let mut total = 0i64;
        for jobs in schedule.machine_jobs() {
            let mut profile = OverlapProfile::new();
            let mut intervals = Vec::with_capacity(jobs.len());
            for &j in &jobs {
                let job = self.jobs[j];
                if !profile.can_add_weighted(&job.interval, job.demand, self.g) {
                    return Err(format!("capacity exceeded adding job {j}"));
                }
                profile.add_weighted(&job.interval, job.demand);
                intervals.push(job.interval);
            }
            total += span(&intervals);
        }
        Ok(total)
    }
}

/// Generalized FirstFit for capacitated instances (\[15\]'s extension of
/// Section 2.1): sort by non-increasing length, place each job on the first
/// machine whose *residual capacity* covers the job's demand everywhere on
/// its interval.
#[derive(Clone, Copy, Debug, Default)]
pub struct FirstFitDemand;

impl FirstFitDemand {
    /// Schedules a capacitated instance; the result always validates.
    pub fn schedule(&self, inst: &DemandInstance) -> Schedule {
        let g = inst.g();
        let mut order: Vec<usize> = (0..inst.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(inst.jobs()[i].interval.len()));
        let mut machines: Vec<OverlapProfile> = Vec::new();
        let mut raw = vec![0usize; inst.len()];
        for id in order {
            let job = inst.jobs()[id];
            let slot = machines
                .iter()
                .position(|m| m.can_add_weighted(&job.interval, job.demand, g))
                .unwrap_or_else(|| {
                    machines.push(OverlapProfile::new());
                    machines.len() - 1
                });
            machines[slot].add_weighted(&job.interval, job.demand);
            raw[id] = slot;
        }
        if inst.is_empty() {
            return Schedule::from_assignment(Vec::new());
        }
        Schedule::from_assignment(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{FirstFit, Scheduler};
    use crate::instance::Instance;

    fn dj(s: i64, c: i64, d: u32) -> DemandJob {
        DemandJob {
            interval: Interval::new(s, c),
            demand: d,
        }
    }

    #[test]
    fn unit_demands_match_plain_first_fit() {
        let pairs = [(0, 6), (1, 7), (2, 9), (4, 11), (5, 12), (8, 14)];
        let plain = Instance::from_pairs(pairs, 2);
        let demand = DemandInstance::new(pairs.iter().map(|&(s, c)| dj(s, c, 1)).collect(), 2);
        let a = FirstFit::paper().schedule(&plain).unwrap();
        let b = FirstFitDemand.schedule(&demand);
        assert_eq!(a.assignment(), b.assignment());
        assert_eq!(demand.validate(&b).unwrap(), a.cost(&plain));
    }

    #[test]
    fn heavy_job_blocks_machine() {
        // a demand-3 job on a g = 3 machine leaves no room
        let inst = DemandInstance::new(vec![dj(0, 10, 3), dj(2, 8, 1)], 3);
        let sched = FirstFitDemand.schedule(&inst);
        inst.validate(&sched).unwrap();
        assert_ne!(sched.machine_of(0), sched.machine_of(1));
    }

    #[test]
    fn mixed_demands_pack() {
        // demands 2 + 1 fit on one g = 3 machine
        let inst = DemandInstance::new(vec![dj(0, 10, 2), dj(2, 8, 1)], 3);
        let sched = FirstFitDemand.schedule(&inst);
        assert_eq!(sched.machine_of(0), sched.machine_of(1));
        assert_eq!(inst.validate(&sched).unwrap(), 10);
    }

    #[test]
    fn five_approx_against_lower_bound() {
        // staggered mixed-demand jobs: [15] proves ≤ 5·OPT for the general
        // model; check against the lower bound
        let jobs: Vec<DemandJob> = (0..12)
            .map(|i| dj(i, i + 4 + (i % 3), 1 + (i % 3) as u32))
            .collect();
        let inst = DemandInstance::new(jobs, 4);
        let sched = FirstFitDemand.schedule(&inst);
        let cost = inst.validate(&sched).unwrap();
        assert!(cost <= 5 * inst.lower_bound());
    }

    #[test]
    fn weighted_bound_exceeds_unit_bound() {
        let inst = DemandInstance::new(vec![dj(0, 10, 3), dj(0, 10, 3)], 3);
        // weighted: ⌈60/3⌉ = 20; unit parallelism would give ⌈20/3⌉ = 7
        assert_eq!(inst.weighted_parallelism_bound(), 20);
        assert_eq!(inst.lower_bound(), 20);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn demand_above_g_rejected() {
        let _ = DemandInstance::new(vec![dj(0, 1, 5)], 2);
    }

    #[test]
    fn validate_rejects_overpacked() {
        let inst = DemandInstance::new(vec![dj(0, 10, 2), dj(2, 8, 2)], 3);
        let bad = Schedule::from_assignment(vec![0, 0]);
        assert!(inst.validate(&bad).is_err());
    }

    #[test]
    fn empty_instance() {
        let inst = DemandInstance::new(vec![], 2);
        let sched = FirstFitDemand.schedule(&inst);
        assert_eq!(inst.validate(&sched).unwrap(), 0);
    }
}
