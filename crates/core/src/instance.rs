//! Problem instances: a job family plus the parallelism parameter `g`.

use busytime_interval::{relations, span, sweep, total_len, Interval};

/// Index of a job within an [`Instance`] (position in the input job list).
pub type JobId = usize;

/// An instance of busy-time scheduling: jobs `J = {J_1..J_n}` given as closed
/// intervals, and the parallelism parameter `g ≥ 1` — the maximum number of
/// jobs a single machine may process simultaneously.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    jobs: Vec<Interval>,
    g: u32,
}

impl Instance {
    /// Creates an instance.
    ///
    /// # Panics
    ///
    /// Panics if `g == 0`.
    pub fn new(jobs: Vec<Interval>, g: u32) -> Self {
        assert!(g >= 1, "parallelism parameter g must be at least 1");
        Instance { jobs, g }
    }

    /// Convenience constructor from `(start, end)` pairs.
    pub fn from_pairs<I>(pairs: I, g: u32) -> Self
    where
        I: IntoIterator<Item = (i64, i64)>,
    {
        Self::new(
            pairs
                .into_iter()
                .map(|(s, c)| Interval::new(s, c))
                .collect(),
            g,
        )
    }

    /// The job intervals, indexed by [`JobId`].
    pub fn jobs(&self) -> &[Interval] {
        &self.jobs
    }

    /// The job interval of `id`.
    pub fn job(&self, id: JobId) -> Interval {
        self.jobs[id]
    }

    /// The parallelism parameter `g`.
    pub fn g(&self) -> u32 {
        self.g
    }

    /// Number of jobs `n`.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True iff the instance has no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// `len(J)`: the summed job lengths (Definition 1.1).
    pub fn total_len(&self) -> i64 {
        total_len(&self.jobs)
    }

    /// `span(J)`: the measure of `∪J` (Definition 1.2).
    pub fn span(&self) -> i64 {
        span(&self.jobs)
    }

    /// Maximum number of jobs sharing a time point — the clique number ω of
    /// the induced interval graph.
    pub fn max_overlap(&self) -> usize {
        sweep::max_overlap(&self.jobs)
    }

    /// True iff no job is properly contained in another (Section 3.1's
    /// proper interval families).
    pub fn is_proper(&self) -> bool {
        relations::is_proper(&self.jobs)
    }

    /// True iff all jobs share a common point (Appendix's cliques).
    pub fn is_clique(&self) -> bool {
        relations::is_clique(&self.jobs)
    }

    /// True iff the induced interval graph is connected (the paper's
    /// w.l.o.g. preprocessing assumption).
    pub fn is_connected(&self) -> bool {
        relations::is_connected(&self.jobs)
    }

    /// True iff every job length lies in `[1, d]` (Section 3.2's
    /// precondition, with integral start times implied by the tick model).
    pub fn lengths_within(&self, d: i64) -> bool {
        relations::lengths_within(&self.jobs, 1, d)
    }

    /// Maximum job length (0 for an empty instance).
    pub fn max_len(&self) -> i64 {
        self.jobs.iter().map(|iv| iv.len()).max().unwrap_or(0)
    }

    /// Minimum job length (0 for an empty instance).
    pub fn min_len(&self) -> i64 {
        self.jobs.iter().map(|iv| iv.len()).min().unwrap_or(0)
    }

    /// Splits the instance into connected components of its interval graph.
    ///
    /// Returns one sub-instance per component together with the original
    /// [`JobId`]s of its jobs. Solving components independently and merging
    /// is lossless for every objective in the paper (Section 1.4).
    pub fn components(&self) -> Vec<(Instance, Vec<JobId>)> {
        sweep::connected_components(&self.jobs)
            .into_iter()
            .map(|ids| {
                let sub = Instance::new(ids.iter().map(|&i| self.jobs[i]).collect(), self.g);
                (sub, ids)
            })
            .collect()
    }

    /// The sub-instance induced by a set of job ids (preserving order).
    pub fn restrict(&self, ids: &[JobId]) -> Instance {
        Instance::new(ids.iter().map(|&i| self.jobs[i]).collect(), self.g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: i64, c: i64) -> Interval {
        Interval::new(s, c)
    }

    #[test]
    fn basic_accessors() {
        let inst = Instance::from_pairs([(0, 4), (1, 5), (6, 9)], 2);
        assert_eq!(inst.len(), 3);
        assert_eq!(inst.g(), 2);
        assert_eq!(inst.job(1), iv(1, 5));
        assert_eq!(inst.total_len(), 4 + 4 + 3);
        assert_eq!(inst.span(), 8); // [0,5] ∪ [6,9]: 5 + 3, the gap (5,6) is free
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_g_rejected() {
        let _ = Instance::new(vec![], 0);
    }

    #[test]
    fn span_with_gap() {
        let inst = Instance::from_pairs([(0, 5), (6, 9)], 1);
        assert_eq!(inst.span(), 8);
        assert!(!inst.is_connected());
    }

    #[test]
    fn class_predicates() {
        let proper = Instance::from_pairs([(0, 2), (1, 3), (2, 4)], 2);
        assert!(proper.is_proper());
        assert!(!Instance::from_pairs([(0, 9), (1, 2)], 2).is_proper());
        assert!(Instance::from_pairs([(0, 4), (2, 6), (3, 5)], 2).is_clique());
        assert!(Instance::from_pairs([(0, 3), (1, 4)], 2).lengths_within(3));
        assert!(!Instance::from_pairs([(0, 0)], 2).lengths_within(3));
    }

    #[test]
    fn component_split_and_restrict() {
        let inst = Instance::from_pairs([(0, 2), (10, 12), (1, 3), (11, 13)], 3);
        let comps = inst.components();
        assert_eq!(comps.len(), 2);
        let (left, ids) = &comps[0];
        assert_eq!(ids, &[0, 2]);
        assert_eq!(left.jobs(), &[iv(0, 2), iv(1, 3)]);
        let restricted = inst.restrict(&[1, 3]);
        assert_eq!(restricted.jobs(), &[iv(10, 12), iv(11, 13)]);
    }

    #[test]
    fn max_overlap_counts() {
        let inst = Instance::from_pairs([(0, 4), (1, 5), (2, 6), (7, 8)], 2);
        assert_eq!(inst.max_overlap(), 3);
        assert_eq!(Instance::new(vec![], 1).max_overlap(), 0);
    }

    #[test]
    fn empty_instance() {
        let inst = Instance::new(vec![], 5);
        assert!(inst.is_empty());
        assert_eq!(inst.span(), 0);
        assert_eq!(inst.total_len(), 0);
        assert!(inst.components().is_empty());
    }
}
