//! Property tests for the unified solve pipeline: portfolio dominance,
//! registry round-trips, and report invariants.

use busytime_core::algo::{FirstFit, Scheduler};
use busytime_core::solve::{SolveOptions, SolveRequest, SolverRegistry, ValidationLevel};
use busytime_core::{bounds, Instance};
use proptest::prelude::*;

fn arb_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0i64..120, 0i64..40), 1..max_n),
        1u32..5,
    )
        .prop_map(|(pairs, g)| Instance::from_pairs(pairs.into_iter().map(|(s, l)| (s, s + l)), g))
}

fn arb_clique_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    // every job contains the point 100
    (
        proptest::collection::vec((0i64..=100, 100i64..140), 1..max_n),
        1u32..5,
    )
        .prop_map(|(pairs, g)| Instance::from_pairs(pairs, g))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a) The `Auto` portfolio never returns a schedule costlier than
    /// `FirstFit::paper()` — FirstFit is its built-in safety net.
    #[test]
    fn auto_never_costlier_than_first_fit(inst in arb_instance(40)) {
        let auto = busytime_core::Auto::new().schedule(&inst).unwrap();
        let ff = FirstFit::paper().schedule(&inst).unwrap();
        auto.validate(&inst).unwrap();
        prop_assert!(auto.cost(&inst) <= ff.cost(&inst),
            "auto {} > first-fit {}", auto.cost(&inst), ff.cost(&inst));
    }

    /// (a') The same dominance holds end-to-end through the pipeline with
    /// its default preprocessing (both requests share the decomposition
    /// setting, so the comparison is like-for-like).
    #[test]
    fn auto_request_never_costlier_than_first_fit_request(inst in arb_instance(30)) {
        let auto = SolveRequest::new(&inst).solver("auto").solve().unwrap();
        let ff = SolveRequest::new(&inst).solver("first-fit").solve().unwrap();
        prop_assert!(auto.cost <= ff.cost);
    }

    /// (b) Registry round-trip: every listed name resolves, builds,
    /// schedules and validates. Small clique instances are accepted by
    /// every registered solver (no class restriction excludes them, and
    /// `guess-match`'s n ≤ 6 size guard is respected).
    #[test]
    fn registry_round_trips_every_name(inst in arb_clique_instance(7)) {
        let registry = SolverRegistry::with_defaults();
        let options = SolveOptions::default();
        for name in registry.names() {
            let entry = registry.get(name);
            prop_assert!(entry.is_some(), "listed name `{name}` did not resolve");
            let solver = entry.unwrap().build(&options);
            match solver.schedule(&inst) {
                Ok(sched) => prop_assert_eq!(sched.validate(&inst), Ok(()),
                    "`{}` produced an invalid schedule", name),
                Err(e) => prop_assert!(false, "`{}` refused a clique instance: {e}", name),
            }
        }
    }

    /// (c) `SolveReport.gap ≥ 1` whenever the lower bound is positive, for
    /// every registered solver that accepts the instance.
    #[test]
    fn gap_at_least_one_when_bound_positive(inst in arb_instance(25)) {
        let registry = SolverRegistry::with_defaults();
        for name in registry.names() {
            let report = match SolveRequest::new(&inst).solver(name).solve_with(&registry) {
                Ok(r) => r,
                Err(_) => continue, // class-restricted solver refused; fine
            };
            if report.lower_bound > 0 {
                prop_assert!(report.gap >= 1.0,
                    "`{}` reported gap {} < 1 with LB {}", name, report.gap, report.lower_bound);
            }
            prop_assert!(report.cost >= report.lower_bound);
        }
    }

    /// The report's lower bound matches the bounds module (single source of
    /// truth, no drift between the pipeline and `bounds`).
    #[test]
    fn report_bound_matches_bounds_module(inst in arb_instance(30)) {
        let report = SolveRequest::new(&inst).solver("first-fit").solve().unwrap();
        prop_assert_eq!(report.lower_bound, bounds::best_lower_bound(&inst));
    }

    /// Strict validation accepts every honest solver on every instance.
    #[test]
    fn strict_validation_always_passes(inst in arb_instance(25)) {
        let report = SolveRequest::new(&inst)
            .solver("auto")
            .validation(ValidationLevel::Strict)
            .solve()
            .unwrap();
        prop_assert!(report.cost >= report.lower_bound);
    }

    /// (d) The deadline contract, for *every* registered solver: an
    /// already-expired deadline (`deadline_ms: 0` on the wire) returns
    /// within one pool tick — operationally, well under a second even on a
    /// loaded CI box — and whatever comes back is either a feasible,
    /// `check_schedule`-passing incumbent flagged `deadline_hit`, or an
    /// honest refusal (`Infeasible` from a solver with no incumbent, or a
    /// class/size refusal predating any search).
    #[test]
    fn zero_deadline_returns_fast_with_checkable_incumbent(inst in arb_instance(30)) {
        let registry = SolverRegistry::with_defaults();
        for name in registry.names() {
            let started = std::time::Instant::now();
            let result = SolveRequest::new(&inst)
                .solver(name)
                .deadline(std::time::Duration::ZERO)
                .solve_with(&registry);
            let elapsed = started.elapsed();
            prop_assert!(elapsed < std::time::Duration::from_secs(1),
                "`{}` held an expired token for {elapsed:?}", name);
            // an Err is an honest refusal; holding the worker is not
            if let Ok(report) = result {
                prop_assert!(report.deadline_hit,
                    "`{}` finished under an expired deadline unflagged", name);
                prop_assert!(report.cut_phase.is_some());
                prop_assert_eq!(
                    busytime_core::verify::check_schedule(&inst, &report.schedule),
                    Ok(()),
                    "`{}` returned an infeasible incumbent", name);
            }
        }
    }

    /// (e) A generous deadline changes nothing: same cost as the undeadlined
    /// request, no flag.
    #[test]
    fn generous_deadline_is_a_no_op(inst in arb_instance(30)) {
        let plain = SolveRequest::new(&inst).solver("first-fit").solve().unwrap();
        let budgeted = SolveRequest::new(&inst)
            .solver("first-fit")
            .deadline(std::time::Duration::from_secs(3600))
            .solve()
            .unwrap();
        prop_assert!(!budgeted.deadline_hit);
        prop_assert_eq!(budgeted.cost, plain.cost);
    }
}
