//! Edge cases every scheduler must survive: point jobs, duplicates,
//! negative and extreme coordinates, over-provisioned g.

use busytime_core::algo::{
    BestFit, BoundedLength, CliqueScheduler, FirstFit, MinMachines, NextFitArrival, NextFitProper,
    RandomFit, Scheduler,
};
use busytime_core::{bounds, Instance};
use busytime_interval::Interval;

fn general_schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(FirstFit::paper()),
        Box::new(NextFitProper::new()),
        Box::new(NextFitArrival),
        Box::new(BestFit),
        Box::new(RandomFit::new(1)),
        Box::new(MinMachines),
        Box::new(BoundedLength::first_fit()),
    ]
}

#[test]
fn point_jobs_cost_nothing_but_consume_capacity() {
    // five point jobs at the same instant, g = 2: capacity forces 3 machines,
    // but the busy time is zero
    let inst = Instance::new(vec![Interval::new(5, 5); 5], 2);
    for s in general_schedulers() {
        let sched = s.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.cost(&inst), 0, "{} billed a point job", s.name());
        assert!(sched.machine_count() >= 3, "{} overpacked points", s.name());
    }
}

#[test]
fn mixed_point_and_long_jobs() {
    let inst = Instance::new(
        vec![
            Interval::new(0, 10),
            Interval::new(5, 5),
            Interval::new(5, 5),
            Interval::new(3, 8),
        ],
        2,
    );
    for s in general_schedulers() {
        let sched = s.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert!(sched.cost(&inst) >= bounds::lower_bound(&inst));
    }
}

#[test]
fn duplicate_jobs_fill_machines_in_groups_of_g() {
    let inst = Instance::new(vec![Interval::new(0, 100); 10], 3);
    let sched = FirstFit::paper().schedule(&inst).unwrap();
    sched.validate(&inst).unwrap();
    assert_eq!(sched.machine_count(), 4); // ⌈10/3⌉
    assert_eq!(sched.cost(&inst), 400);
}

#[test]
fn negative_coordinates_work_everywhere() {
    let inst = Instance::from_pairs([(-100, -50), (-75, -25), (-60, -10), (-5, 0)], 2);
    for s in general_schedulers() {
        let sched = s.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert!(sched.cost(&inst) >= bounds::lower_bound(&inst));
    }
    // clique algorithm on a negative-coordinate clique
    let clique = Instance::from_pairs([(-100, -50), (-80, -50), (-60, -50)], 2);
    let sched = CliqueScheduler::new().schedule(&clique).unwrap();
    sched.validate(&clique).unwrap();
}

#[test]
fn huge_coordinates_do_not_overflow() {
    let base = 1_000_000_000_000i64; // 10^12 ticks; doubled fits easily in i64
    let inst = Instance::from_pairs(
        [
            (base, base + 1_000_000),
            (base + 500_000, base + 1_500_000),
            (base + 2_000_000, base + 3_000_000),
        ],
        2,
    );
    let sched = FirstFit::paper().schedule(&inst).unwrap();
    sched.validate(&inst).unwrap();
    assert_eq!(sched.cost(&inst), 2_500_000);
}

#[test]
fn over_provisioned_g_collapses_to_one_machine() {
    // g ≥ peak overlap: a single machine suffices and cost = span
    let inst = Instance::from_pairs([(0, 5), (1, 6), (2, 7), (3, 8)], 100);
    for s in general_schedulers() {
        let sched = s.schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        assert_eq!(sched.cost(&inst), inst.span(), "{}", s.name());
    }
}

#[test]
fn single_job_is_trivial_everywhere() {
    let inst = Instance::from_pairs([(7, 19)], 1);
    for s in general_schedulers() {
        let sched = s.schedule(&inst).unwrap();
        assert_eq!(sched.machine_count(), 1);
        assert_eq!(sched.cost(&inst), 12);
    }
    let sched = CliqueScheduler::new().schedule(&inst).unwrap();
    assert_eq!(sched.cost(&inst), 12);
}

#[test]
fn interleaved_touching_chain() {
    // chain where consecutive jobs share exactly one endpoint; g = 1 forces
    // alternation between two machines
    let inst = Instance::from_pairs([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)], 1);
    let sched = FirstFit::paper().schedule(&inst).unwrap();
    sched.validate(&inst).unwrap();
    assert_eq!(sched.machine_count(), 2);
    assert_eq!(sched.cost(&inst), inst.total_len());
}

#[test]
fn bounded_length_rejects_then_accepts_with_wider_d() {
    let inst = Instance::from_pairs([(0, 10), (2, 4)], 2);
    let narrow = BoundedLength::first_fit().with_width(5);
    assert!(narrow.schedule(&inst).is_err());
    let wide = BoundedLength::first_fit().with_width(10);
    let sched = wide.schedule(&inst).unwrap();
    sched.validate(&inst).unwrap();
}

#[test]
fn strict_next_fit_vs_duplicates() {
    // duplicates are proper by our definition — strict mode must accept
    let inst = Instance::new(vec![Interval::new(0, 5); 4], 2);
    let sched = NextFitProper::strict().schedule(&inst).unwrap();
    sched.validate(&inst).unwrap();
}
