//! Property-based tests: every algorithm on random instances must produce
//! feasible schedules respecting the paper's bounds and structure.

use busytime_core::algo::{
    BestFit, BoundedLength, CliqueScheduler, Decomposed, FirstFit, MinMachines, NextFitArrival,
    NextFitProper, RandomFit, Scheduler,
};
use busytime_core::{bounds, verify, Instance};
use busytime_interval::Interval;
use proptest::prelude::*;

fn arb_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0i64..200, 1i64..60), 1..max_n),
        1u32..6,
    )
        .prop_map(|(pairs, g)| {
            Instance::new(
                pairs
                    .into_iter()
                    .map(|(s, l)| Interval::with_len(s, l))
                    .collect(),
                g,
            )
        })
}

fn arb_clique_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    // all jobs contain the point 100
    (
        proptest::collection::vec((0i64..=100, 100i64..200), 1..max_n),
        1u32..6,
    )
        .prop_map(|(pairs, g)| {
            Instance::new(
                pairs
                    .into_iter()
                    .map(|(s, c)| Interval::new(s, c))
                    .collect(),
                g,
            )
        })
}

fn arb_proper_instance(max_n: usize) -> impl Strategy<Value = Instance> {
    // sorted starts paired with sorted ends yields a proper family
    (
        proptest::collection::vec((0i64..100, 1i64..30), 1..max_n),
        1u32..5,
    )
        .prop_map(|(seeds, g)| {
            // strictly increasing starts AND ends → proper family
            let mut starts: Vec<i64> = seeds.iter().map(|&(s, _)| s).collect();
            starts.sort_unstable();
            for (i, s) in starts.iter_mut().enumerate() {
                *s += i as i64; // break ties, keep order
            }
            let mut jobs: Vec<Interval> = Vec::with_capacity(seeds.len());
            let mut prev_end = i64::MIN;
            for (i, &(_, l)) in seeds.iter().enumerate() {
                let end = (starts[i] + l).max(prev_end + 1).max(starts[i]);
                jobs.push(Interval::new(starts[i], end));
                prev_end = end;
            }
            Instance::new(jobs, g)
        })
}

proptest! {
    /// All general-purpose schedulers produce feasible schedules and never
    /// beat the lower bound.
    #[test]
    fn schedulers_feasible_and_bounded(inst in arb_instance(40)) {
        let lb = bounds::lower_bound(&inst);
        let schedulers: Vec<Box<dyn Scheduler>> = vec![
            Box::new(FirstFit::paper()),
            Box::new(FirstFit::seeded(7)),
            Box::new(NextFitProper::new()),
            Box::new(NextFitArrival),
            Box::new(BestFit),
            Box::new(RandomFit::new(3)),
            Box::new(MinMachines),
            Box::new(Decomposed::new(FirstFit::paper())),
        ];
        for s in schedulers {
            let sched = s.schedule(&inst).unwrap();
            prop_assert_eq!(sched.validate(&inst), Ok(()), "{} infeasible", s.name());
            prop_assert!(sched.cost(&inst) >= lb, "{} beat the lower bound", s.name());
        }
    }

    /// FirstFit respects its 4-approximation cap (vs the lower bound, which
    /// is ≤ OPT, so this is implied by — and weaker than — Theorem 2.1;
    /// violations would disprove the theorem).
    #[test]
    fn first_fit_within_4x(inst in arb_instance(50)) {
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        prop_assert!(sched.cost(&inst) <= 4 * bounds::component_lower_bound(&inst).max(1));
    }

    /// Observation 2.2 and Lemma 2.3 hold on every FirstFit run.
    #[test]
    fn first_fit_structure(inst in arb_instance(35)) {
        let ff = FirstFit::paper();
        let sched = ff.schedule(&inst).unwrap();
        let order = ff.job_order(&inst);
        prop_assert_eq!(verify::observation_2_2(&inst, &sched, &order), Ok(()));
        prop_assert_eq!(verify::lemma_2_3(&inst, &sched), Ok(()));
    }

    /// Greedy on proper families: Claim 1 of Theorem 3.1 holds and the cost
    /// is within 2× of the lower bound.
    #[test]
    fn greedy_proper_structure(inst in arb_proper_instance(40)) {
        prop_assert!(inst.is_proper());
        let sched = NextFitProper::strict().schedule(&inst).unwrap();
        prop_assert_eq!(sched.validate(&inst), Ok(()));
        prop_assert_eq!(verify::theorem_3_1_claims(&inst, &sched), Ok(()));
        prop_assert!(sched.cost(&inst) <= 2 * bounds::lower_bound(&inst));
    }

    /// The clique algorithm stays within 2× of the lower bound on cliques.
    #[test]
    fn clique_within_2x(inst in arb_clique_instance(30)) {
        prop_assert!(inst.is_clique());
        let sched = CliqueScheduler::new().schedule(&inst).unwrap();
        prop_assert_eq!(sched.validate(&inst), Ok(()));
        prop_assert!(sched.cost(&inst) <= 2 * bounds::lower_bound(&inst));
    }

    /// At g = 1 every feasible schedule costs exactly len(J).
    #[test]
    fn g1_cost_is_total_len(pairs in proptest::collection::vec((0i64..100, 1i64..30), 1..30)) {
        let inst = Instance::new(
            pairs.into_iter().map(|(s, l)| Interval::with_len(s, l)).collect(),
            1,
        );
        for s in [
            FirstFit::paper().schedule(&inst).unwrap(),
            NextFitProper::new().schedule(&inst).unwrap(),
            BestFit.schedule(&inst).unwrap(),
        ] {
            prop_assert_eq!(s.cost(&inst), inst.total_len());
        }
    }

    /// MinMachines always attains the machine-count optimum ⌈ω/g⌉ and no
    /// scheduler goes below it.
    #[test]
    fn machine_count_floor(inst in arb_instance(40)) {
        let omega = inst.max_overlap();
        let floor = omega.div_ceil(inst.g() as usize);
        let mm = MinMachines.schedule(&inst).unwrap();
        prop_assert_eq!(mm.machine_count(), floor);
        for s in [
            FirstFit::paper().schedule(&inst).unwrap(),
            BestFit.schedule(&inst).unwrap(),
        ] {
            prop_assert!(s.machine_count() >= floor);
        }
    }

    /// normalize_contiguous preserves cost and produces hull == cost.
    #[test]
    fn normalization_invariants(inst in arb_instance(40)) {
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        let norm = sched.normalize_contiguous(&inst);
        prop_assert_eq!(norm.validate(&inst), Ok(()));
        prop_assert_eq!(norm.cost(&inst), sched.cost(&inst));
        prop_assert_eq!(norm.hull_cost(&inst), norm.cost(&inst));
        prop_assert!(sched.hull_cost(&inst) >= sched.cost(&inst));
    }

    /// Decomposition never changes FirstFit's per-component costs: the merged
    /// cost equals the sum over components.
    #[test]
    fn decomposition_cost_additivity(inst in arb_instance(40)) {
        let merged = Decomposed::new(FirstFit::paper()).schedule(&inst).unwrap();
        let sum: i64 = inst
            .components()
            .iter()
            .map(|(sub, _)| FirstFit::paper().schedule(sub).unwrap().cost(sub))
            .sum();
        prop_assert_eq!(merged.cost(&inst), sum);
    }

    /// BoundedLength segmentation: feasible, segment-disjoint machines, and
    /// within 2× of a per-segment-optimal schedule's reach (checked loosely
    /// via the lower bound and the FirstFit inner solver's 4×).
    #[test]
    fn bounded_length_segments(inst in arb_instance(40)) {
        let bl = BoundedLength::first_fit();
        let sched = bl.schedule(&inst).unwrap();
        prop_assert_eq!(sched.validate(&inst), Ok(()));
        let d = bl.effective_width(&inst);
        // machines never mix segments
        let segments = bl.segments(&inst);
        let mut seg_of_job = vec![0usize; inst.len()];
        for (si, ids) in segments.iter().enumerate() {
            for &id in ids {
                seg_of_job[id] = si;
            }
        }
        for a in 0..inst.len() {
            for b in (a + 1)..inst.len() {
                if sched.machine_of(a) == sched.machine_of(b) {
                    prop_assert_eq!(seg_of_job[a], seg_of_job[b]);
                }
            }
        }
        prop_assert!(d >= inst.max_len());
    }
}

proptest! {
    /// The canonical content hash (the solution/feature cache key) is
    /// invariant under any permutation of the job list, the canonical
    /// forms compare equal, and remapping a canonical assignment back to
    /// the shuffled order round-trips through a valid schedule.
    #[test]
    fn canonical_hash_is_permutation_invariant(
        inst in arb_instance(30),
        seed in 0u64..1_000,
    ) {
        use busytime_core::memo::{canonical_hash, CanonicalInstance};

        // deterministic Fisher–Yates driven by the proptest-drawn seed
        let mut order: Vec<usize> = (0..inst.len()).collect();
        let mut state = seed.wrapping_mul(0x5851_f42d_4c95_7f2d).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state
                .wrapping_mul(0x5851_f42d_4c95_7f2d)
                .wrapping_add(0x1405_7b7e_f767_814f);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let shuffled = Instance::new(
            order.iter().map(|&i| inst.job(i)).collect(),
            inst.g(),
        );
        prop_assert_eq!(canonical_hash(&inst), canonical_hash(&shuffled));
        prop_assert_eq!(CanonicalInstance::of(&inst), CanonicalInstance::of(&shuffled));

        // a schedule computed on the original maps through canonical form
        // into a valid schedule of the shuffled copy
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        let canon = CanonicalInstance::of(&inst);
        let canonical_assign = canon.assignment_to_canonical(sched.assignment());
        let shuffled_assign =
            CanonicalInstance::of(&shuffled).assignment_to_original(&canonical_assign);
        let remapped = busytime_core::Schedule::from_assignment(shuffled_assign);
        prop_assert_eq!(remapped.validate(&shuffled), Ok(()));
        prop_assert_eq!(remapped.cost(&shuffled), sched.cost(&inst));
    }

    /// The canonical hash discriminates: nudging one job's end, or bumping
    /// `g`, changes the key (so permuted repeats hit, edits do not).
    #[test]
    fn canonical_hash_discriminates_edits(inst in arb_instance(30), pick in 0usize..64) {
        use busytime_core::memo::canonical_hash;

        let mut jobs: Vec<Interval> = inst.jobs().to_vec();
        let k = pick % jobs.len();
        jobs[k] = Interval::new(jobs[k].start, jobs[k].end + 1);
        let nudged = Instance::new(jobs, inst.g());
        prop_assert_ne!(canonical_hash(&inst), canonical_hash(&nudged));

        let regeared = Instance::new(inst.jobs().to_vec(), inst.g() + 1);
        prop_assert_ne!(canonical_hash(&inst), canonical_hash(&regeared));
    }
}

/// Renders a report with its wall-clock-only fields (phase timings, total)
/// cleared: everything left is required to be deterministic, so parallel
/// and sequential solves must agree on it byte for byte.
fn timeless_json(mut report: busytime_core::SolveReport) -> String {
    report.phases.clear();
    report.total = std::time::Duration::ZERO;
    report.to_json_line()
}

proptest! {
    /// The fork–join contract, end to end: one instance solved with the
    /// kernels forced sequential and solved inside fork–join contexts of
    /// widths 1, 2 and 4 renders byte-identical `SolveReport` JSON (modulo
    /// the cleared wall-clock fields) — parallelism trades time only,
    /// never the answer.
    #[test]
    fn parallel_and_sequential_reports_are_byte_identical(
        inst in arb_instance(40),
        seed in 0u64..100,
    ) {
        use busytime_core::pool::{intra, Executor};
        use busytime_core::solve::ParallelPolicy;
        use busytime_core::SolveRequest;

        // `Off` keeps the pipeline from entering its own context; the
        // test pins the width by entering one around the solve
        let sequential = timeless_json(
            SolveRequest::new(&inst)
                .seed(seed)
                .parallel(ParallelPolicy::Off)
                .solve()
                .unwrap(),
        );
        for width in [1usize, 2, 4] {
            let exec = Executor::new(width);
            let _ctx = intra::enter(&exec, width);
            let forked = timeless_json(
                SolveRequest::new(&inst)
                    .seed(seed)
                    .parallel(ParallelPolicy::Off)
                    .solve()
                    .unwrap(),
            );
            prop_assert_eq!(&forked, &sequential, "width {} diverged", width);
        }
    }

    /// An already-expired deadline cuts the solve at its first cooperative
    /// checkpoint — under fork–join exactly as it does sequentially: the
    /// incumbent is feasible, flagged `deadline_hit`, and byte-identical
    /// to the sequential cut (chunk cancellation never corrupts or
    /// reorders the merged result).
    #[test]
    fn zero_deadline_cut_is_stable_under_fork_join(inst in arb_instance(40)) {
        use busytime_core::pool::{intra, Executor};
        use busytime_core::solve::ParallelPolicy;
        use busytime_core::SolveRequest;

        let cut = || {
            SolveRequest::new(&inst)
                .deadline(std::time::Duration::ZERO)
                .parallel(ParallelPolicy::Off)
                .solve()
                .unwrap()
        };
        let sequential = cut();
        prop_assert!(sequential.deadline_hit);
        prop_assert_eq!(sequential.schedule.validate(&inst), Ok(()));
        let sequential = timeless_json(sequential);
        for width in [2usize, 4] {
            let exec = Executor::new(width);
            let _ctx = intra::enter(&exec, width);
            let forked = cut();
            prop_assert!(forked.deadline_hit);
            prop_assert_eq!(forked.schedule.validate(&inst), Ok(()));
            prop_assert_eq!(timeless_json(forked), sequential.clone(), "width {}", width);
        }
    }
}
