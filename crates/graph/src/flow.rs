//! Dinic's maximum-flow algorithm.
//!
//! Substrate for the b-matching step of the Bounded_Length algorithm
//! (Section 3.2 step 2(e)). Integer capacities, adjacency-array residual
//! graph, BFS level graph + blocking-flow DFS: `O(V²E)` in general and
//! `O(E √V)` on unit-capacity bipartite graphs, far more than enough for the
//! segment-sized instances the scheduler produces.

/// A max-flow problem instance and solver.
#[derive(Clone, Debug)]
pub struct Dinic {
    /// `to[e]` = head of arc `e`; arcs stored in pairs `(e, e^1)`.
    to: Vec<u32>,
    /// Residual capacity of each arc.
    cap: Vec<i64>,
    /// `head[v]` = list of arc ids leaving `v`.
    head: Vec<Vec<u32>>,
    level: Vec<i32>,
    iter: Vec<usize>,
}

impl Dinic {
    /// Creates a flow network with `n` vertices and no arcs.
    pub fn new(n: usize) -> Self {
        Dinic {
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
            level: vec![0; n],
            iter: vec![0; n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.head.len()
    }

    /// True iff the network has no vertices.
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }

    /// Adds a directed arc `u → v` with capacity `cap`; returns the arc id,
    /// usable with [`Dinic::flow_on`] after solving.
    pub fn add_edge(&mut self, u: u32, v: u32, cap: i64) -> u32 {
        assert!(cap >= 0, "capacity must be non-negative");
        let id = self.to.len() as u32;
        self.to.push(v);
        self.cap.push(cap);
        self.head[u as usize].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.head[v as usize].push(id + 1);
        id
    }

    /// Flow currently routed through arc `id` (residual bookkeeping: the
    /// reverse arc's capacity equals the pushed flow).
    pub fn flow_on(&self, id: u32) -> i64 {
        self.cap[id as usize ^ 1]
    }

    fn bfs(&mut self, s: u32, t: u32) -> bool {
        self.level.iter_mut().for_each(|l| *l = -1);
        let mut queue = std::collections::VecDeque::new();
        self.level[s as usize] = 0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            for &e in &self.head[u as usize] {
                let v = self.to[e as usize];
                if self.cap[e as usize] > 0 && self.level[v as usize] < 0 {
                    self.level[v as usize] = self.level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        self.level[t as usize] >= 0
    }

    fn dfs(&mut self, u: u32, t: u32, limit: i64) -> i64 {
        if u == t {
            return limit;
        }
        while self.iter[u as usize] < self.head[u as usize].len() {
            let e = self.head[u as usize][self.iter[u as usize]];
            let v = self.to[e as usize];
            if self.cap[e as usize] > 0 && self.level[v as usize] == self.level[u as usize] + 1 {
                let pushed = self.dfs(v, t, limit.min(self.cap[e as usize]));
                if pushed > 0 {
                    self.cap[e as usize] -= pushed;
                    self.cap[e as usize ^ 1] += pushed;
                    return pushed;
                }
            }
            self.iter[u as usize] += 1;
        }
        0
    }

    /// Computes the maximum `s → t` flow. May be called once per instance
    /// (the residual graph is consumed).
    pub fn max_flow(&mut self, s: u32, t: u32) -> i64 {
        assert_ne!(s, t, "source and sink must differ");
        let mut flow = 0i64;
        while self.bfs(s, t) {
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs(s, t, i64::MAX);
                if pushed == 0 {
                    break;
                }
                flow += pushed;
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut d = Dinic::new(2);
        let e = d.add_edge(0, 1, 5);
        assert_eq!(d.max_flow(0, 1), 5);
        assert_eq!(d.flow_on(e), 5);
    }

    #[test]
    fn series_bottleneck() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 10);
        d.add_edge(1, 2, 3);
        assert_eq!(d.max_flow(0, 2), 3);
    }

    #[test]
    fn parallel_paths_sum() {
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 2);
        d.add_edge(1, 3, 2);
        d.add_edge(0, 2, 3);
        d.add_edge(2, 3, 3);
        assert_eq!(d.max_flow(0, 3), 5);
    }

    #[test]
    fn classic_diamond_with_cross_edge() {
        // needs the residual (undo) arc to reach max flow
        let mut d = Dinic::new(4);
        d.add_edge(0, 1, 1);
        d.add_edge(0, 2, 1);
        d.add_edge(1, 3, 1);
        d.add_edge(2, 3, 1);
        d.add_edge(1, 2, 1);
        assert_eq!(d.max_flow(0, 3), 2);
    }

    #[test]
    fn disconnected_sink() {
        let mut d = Dinic::new(3);
        d.add_edge(0, 1, 7);
        assert_eq!(d.max_flow(0, 2), 0);
    }

    #[test]
    fn zero_capacity_edge() {
        let mut d = Dinic::new(2);
        d.add_edge(0, 1, 0);
        assert_eq!(d.max_flow(0, 1), 0);
    }

    #[test]
    fn flow_conservation() {
        let mut d = Dinic::new(6);
        let edges = [
            (0u32, 1u32, 10i64),
            (0, 2, 10),
            (1, 3, 4),
            (1, 4, 8),
            (2, 4, 9),
            (3, 5, 10),
            (4, 5, 10),
        ];
        let ids: Vec<u32> = edges.iter().map(|&(u, v, c)| d.add_edge(u, v, c)).collect();
        // cut around the sink side: 4 via vertex 3 (arc 1→3 caps it) plus 10
        // via vertex 4 (arc 4→5 caps it) = 14
        let total = d.max_flow(0, 5);
        assert_eq!(total, 14);
        for v in 1..5u32 {
            let mut net = 0i64;
            for (idx, &(u, w, _)) in edges.iter().enumerate() {
                let f = d.flow_on(ids[idx]);
                if w == v {
                    net += f;
                }
                if u == v {
                    net -= f;
                }
            }
            assert_eq!(net, 0, "conservation violated at {v}");
        }
    }
}
