//! Interval graphs: construction, clique number, optimal coloring.
//!
//! The paper's problem is a partitioning problem on the interval graph of
//! the job family (Section 1.1). Two facts about interval graphs are used
//! throughout:
//!
//! * the clique number ω equals the maximum number of intervals sharing a
//!   point (Helly property), computable by a sweep;
//! * interval graphs are perfect, and a single sweep with a free-color pool
//!   produces an optimal coloring with exactly ω colors — this powers the
//!   `MinMachines` baseline (Section 1.1's "k-coloring induces a schedule on
//!   ⌈k/g⌉ machines").

use busytime_interval::{sweep, Interval};

use crate::csr::Csr;

/// The intersection graph of a family of closed intervals.
///
/// Vertices are indices into the original family; edges connect overlapping
/// intervals (endpoint sharing included).
#[derive(Clone, Debug)]
pub struct IntervalGraph {
    intervals: Vec<Interval>,
    adjacency: Csr,
}

impl IntervalGraph {
    /// Builds the interval graph in `O(n log n + m)` with a sweep: sort by
    /// start; every interval is linked to the actives it overlaps.
    pub fn new(intervals: &[Interval]) -> Self {
        let n = intervals.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| intervals[i as usize].start);
        let mut edges: Vec<(u32, u32)> = Vec::new();
        // active: indices whose end we have not passed, kept as a simple vec;
        // pruned lazily when scanning (amortized fine: each removal is paid
        // for by one insertion)
        let mut active: Vec<u32> = Vec::new();
        for &i in &order {
            let iv = intervals[i as usize];
            active.retain(|&j| {
                let other = intervals[j as usize];
                other.end >= iv.start
            });
            for &j in &active {
                edges.push((j, i));
            }
            active.push(i);
        }
        IntervalGraph {
            intervals: intervals.to_vec(),
            adjacency: Csr::undirected(n, &edges),
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.intervals.len()
    }

    /// True iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
    }

    /// The underlying intervals, in input order.
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Adjacency in CSR form.
    pub fn adjacency(&self) -> &Csr {
        &self.adjacency
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.arc_count() / 2
    }

    /// Clique number ω = maximum simultaneous overlap (sweep).
    pub fn clique_number(&self) -> usize {
        sweep::max_overlap(&self.intervals)
    }

    /// Optimal proper coloring with exactly ω colors.
    ///
    /// Sweep by start time; reuse the smallest freed color. Returns
    /// `(colors, color_count)` where `colors[v]` is the color of vertex `v`.
    /// For interval graphs the greedy sweep is optimal (perfect graphs), so
    /// `color_count == clique_number()` — asserted in tests and relied on by
    /// the intro's machine-minimization argument.
    pub fn optimal_coloring(&self) -> (Vec<u32>, usize) {
        let n = self.intervals.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        // endpoint-sharing intervals overlap, so starts must be processed
        // before the sweep releases colors of intervals ending at the same
        // coordinate: sort events carefully below instead of here
        order.sort_unstable_by_key(|&i| {
            let iv = self.intervals[i as usize];
            (iv.start, iv.end)
        });
        let mut colors = vec![u32::MAX; n];
        // min-heap of (end, color) for active intervals; a color is free once
        // its interval's end is strictly before the next start
        let mut active: std::collections::BinaryHeap<std::cmp::Reverse<(i64, u32)>> =
            std::collections::BinaryHeap::new();
        let mut free: Vec<u32> = Vec::new(); // stack of freed colors
        let mut next_color = 0u32;
        for &i in &order {
            let iv = self.intervals[i as usize];
            while let Some(&std::cmp::Reverse((end, color))) = active.peek() {
                if end < iv.start {
                    active.pop();
                    free.push(color);
                } else {
                    break;
                }
            }
            let color = free.pop().unwrap_or_else(|| {
                let c = next_color;
                next_color += 1;
                c
            });
            colors[i as usize] = color;
            active.push(std::cmp::Reverse((iv.end, color)));
        }
        (colors, next_color as usize)
    }

    /// Validates that `colors` is a proper coloring (no edge monochromatic).
    pub fn is_proper_coloring(&self, colors: &[u32]) -> bool {
        if colors.len() != self.len() {
            return false;
        }
        (0..self.len() as u32).all(|u| {
            self.adjacency
                .neighbors(u)
                .iter()
                .all(|&v| colors[u as usize] != colors[v as usize])
        })
    }

    /// Partitions vertices into cliques greedily by sweeping left to right:
    /// repeatedly take the interval with the leftmost end among the
    /// unassigned and group it with everything containing that end point.
    ///
    /// Used by tests and by clique-based heuristics; every returned group is
    /// verified to share a common point.
    pub fn greedy_clique_cover(&self) -> Vec<Vec<u32>> {
        let n = self.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by_key(|&i| self.intervals[i as usize].end);
        let mut assigned = vec![false; n];
        let mut cover = Vec::new();
        for &i in &order {
            if assigned[i as usize] {
                continue;
            }
            let point = self.intervals[i as usize].end;
            let mut group = Vec::new();
            for &j in &order {
                if !assigned[j as usize] && self.intervals[j as usize].contains_time(point) {
                    assigned[j as usize] = true;
                    group.push(j);
                }
            }
            cover.push(group);
        }
        cover
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(s: i64, c: i64) -> Interval {
        Interval::new(s, c)
    }

    #[test]
    fn builds_expected_edges() {
        let g = IntervalGraph::new(&[iv(0, 2), iv(1, 3), iv(4, 5)]);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.adjacency().neighbors(0), &[1]);
        assert_eq!(g.adjacency().neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn endpoint_touch_is_an_edge() {
        let g = IntervalGraph::new(&[iv(0, 1), iv(1, 2)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn clique_number_matches_overlap() {
        let g = IntervalGraph::new(&[iv(0, 4), iv(1, 5), iv(2, 6), iv(7, 8)]);
        assert_eq!(g.clique_number(), 3);
    }

    #[test]
    fn coloring_is_proper_and_optimal() {
        let family = [iv(0, 4), iv(1, 5), iv(2, 6), iv(5, 8), iv(6, 9)];
        let g = IntervalGraph::new(&family);
        let (colors, k) = g.optimal_coloring();
        assert!(g.is_proper_coloring(&colors));
        assert_eq!(k, g.clique_number());
    }

    #[test]
    fn coloring_reuses_colors_after_gap() {
        let g = IntervalGraph::new(&[iv(0, 1), iv(2, 3), iv(4, 5)]);
        let (colors, k) = g.optimal_coloring();
        assert_eq!(k, 1);
        assert_eq!(colors, vec![0, 0, 0]);
    }

    #[test]
    fn coloring_does_not_reuse_color_of_touching_interval() {
        // [0,1] and [1,2] overlap at t=1: must get different colors
        let g = IntervalGraph::new(&[iv(0, 1), iv(1, 2)]);
        let (colors, k) = g.optimal_coloring();
        assert_eq!(k, 2);
        assert_ne!(colors[0], colors[1]);
    }

    #[test]
    fn empty_graph() {
        let g = IntervalGraph::new(&[]);
        assert!(g.is_empty());
        assert_eq!(g.clique_number(), 0);
        let (colors, k) = g.optimal_coloring();
        assert!(colors.is_empty());
        assert_eq!(k, 0);
    }

    #[test]
    fn clique_cover_groups_share_a_point() {
        let family = [iv(0, 3), iv(1, 4), iv(2, 5), iv(6, 8), iv(7, 9)];
        let g = IntervalGraph::new(&family);
        let cover = g.greedy_clique_cover();
        let mut seen = vec![false; family.len()];
        for group in &cover {
            assert!(busytime_interval::relations::is_clique(
                &group
                    .iter()
                    .map(|&i| family[i as usize])
                    .collect::<Vec<_>>()
            ));
            for &i in group {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn dense_family_edge_count() {
        // complete graph on 5 mutually overlapping intervals
        let family: Vec<Interval> = (0..5).map(|i| iv(i, 10 + i)).collect();
        let g = IntervalGraph::new(&family);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.clique_number(), 5);
    }
}
