//! Hopcroft–Karp maximum bipartite matching.
//!
//! Used as an independent cross-check for the flow-based b-matching solver
//! (a b-matching with all capacities 1 is a plain maximum matching).

/// Computes a maximum matching of the bipartite graph with `n_left` left
/// vertices, `n_right` right vertices and adjacency `adj[u] = right
/// neighbours of left vertex u`.
///
/// Returns `(size, mate_left, mate_right)` where `mate_left[u]` is the right
/// partner of `u` (or `u32::MAX` if unmatched), symmetrically for
/// `mate_right`. Runs in `O(E √V)`.
pub fn hopcroft_karp(
    n_left: usize,
    n_right: usize,
    adj: &[Vec<u32>],
) -> (usize, Vec<u32>, Vec<u32>) {
    assert_eq!(adj.len(), n_left, "adjacency must cover every left vertex");
    const NONE: u32 = u32::MAX;
    let mut mate_l = vec![NONE; n_left];
    let mut mate_r = vec![NONE; n_right];
    let mut dist = vec![0u32; n_left];
    let mut queue = std::collections::VecDeque::new();
    let mut size = 0usize;

    loop {
        // BFS from free left vertices to build layered distances
        queue.clear();
        const INF: u32 = u32::MAX;
        for u in 0..n_left {
            if mate_l[u] == NONE {
                dist[u] = 0;
                queue.push_back(u as u32);
            } else {
                dist[u] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u as usize] {
                let w = mate_r[v as usize];
                if w == NONE {
                    found_augmenting = true;
                } else if dist[w as usize] == INF {
                    dist[w as usize] = dist[u as usize] + 1;
                    queue.push_back(w);
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS along layers to find a maximal set of disjoint augmenting paths
        fn dfs(
            u: u32,
            adj: &[Vec<u32>],
            dist: &mut [u32],
            mate_l: &mut [u32],
            mate_r: &mut [u32],
        ) -> bool {
            const NONE: u32 = u32::MAX;
            const INF: u32 = u32::MAX;
            for idx in 0..adj[u as usize].len() {
                let v = adj[u as usize][idx];
                let w = mate_r[v as usize];
                let ok = if w == NONE {
                    true
                } else if dist[w as usize] == dist[u as usize] + 1 {
                    dfs(w, adj, dist, mate_l, mate_r)
                } else {
                    false
                };
                if ok {
                    mate_l[u as usize] = v;
                    mate_r[v as usize] = u;
                    return true;
                }
            }
            dist[u as usize] = INF;
            false
        }
        for u in 0..n_left as u32 {
            if mate_l[u as usize] == NONE && dfs(u, adj, &mut dist, &mut mate_l, &mut mate_r) {
                size += 1;
            }
        }
    }
    (size, mate_l, mate_r)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_cycle() {
        // C4 as bipartite: 0-{0,1}, 1-{0,1}
        let adj = vec![vec![0, 1], vec![0, 1]];
        let (size, ml, mr) = hopcroft_karp(2, 2, &adj);
        assert_eq!(size, 2);
        assert_ne!(ml[0], ml[1]);
        assert_eq!(mr[ml[0] as usize], 0);
    }

    #[test]
    fn augmenting_path_needed() {
        // classic: 0-{0}, 1-{0,1}: greedy could block; HK finds 2
        let adj = vec![vec![0], vec![0, 1]];
        let (size, ml, _) = hopcroft_karp(2, 2, &adj);
        assert_eq!(size, 2);
        assert_eq!(ml[0], 0);
        assert_eq!(ml[1], 1);
    }

    #[test]
    fn unbalanced_sides() {
        let adj = vec![vec![0], vec![0], vec![0]];
        let (size, _, mr) = hopcroft_karp(3, 1, &adj);
        assert_eq!(size, 1);
        assert_ne!(mr[0], u32::MAX);
    }

    #[test]
    fn empty_graph() {
        let (size, ml, mr) = hopcroft_karp(0, 0, &[]);
        assert_eq!(size, 0);
        assert!(ml.is_empty());
        assert!(mr.is_empty());
    }

    #[test]
    fn no_edges() {
        let adj = vec![vec![], vec![]];
        let (size, ml, _) = hopcroft_karp(2, 3, &adj);
        assert_eq!(size, 0);
        assert!(ml.iter().all(|&m| m == u32::MAX));
    }

    #[test]
    fn konig_worst_case_chain() {
        // path graph alternating: forces multi-phase augmentation
        // left i connects to right i and right i+1
        let n = 20;
        let adj: Vec<Vec<u32>> = (0..n).map(|i| vec![i as u32, i as u32 + 1]).collect();
        let (size, _, _) = hopcroft_karp(n, n + 1, &adj);
        assert_eq!(size, n);
    }

    #[test]
    fn matching_is_consistent() {
        let adj = vec![vec![0, 2], vec![0, 1], vec![1, 2], vec![2]];
        let (size, ml, mr) = hopcroft_karp(4, 3, &adj);
        assert_eq!(size, 3);
        for (u, &v) in ml.iter().enumerate() {
            if v != u32::MAX {
                assert_eq!(mr[v as usize] as usize, u);
                assert!(adj[u].contains(&v));
            }
        }
    }
}
