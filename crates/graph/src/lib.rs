#![warn(missing_docs)]

//! Graph substrates for busy-time scheduling.
//!
//! The paper states the scheduling problem as a partitioning problem on
//! interval graphs (Section 1.1) and its Bounded_Length algorithm solves a
//! maximum *b-matching* instance (Section 3.2, steps 2(d)–(e), citing
//! Gabow \[11\]). This crate provides, from scratch:
//!
//! * [`csr`] — a compact static adjacency representation.
//! * [`interval_graph`] — interval-graph construction, clique number ω,
//!   optimal coloring (both via sweeps).
//! * [`matching`] — Hopcroft–Karp bipartite maximum matching.
//! * [`flow`] — Dinic's maximum-flow algorithm.
//! * [`bmatching`] — degree-constrained bipartite matching (b-matching)
//!   reduced to max-flow; this replaces the reduction of \[11\].

pub mod bmatching;
pub mod csr;
pub mod flow;
pub mod interval_graph;
pub mod matching;

pub use bmatching::{max_b_matching, BMatching};
pub use csr::Csr;
pub use flow::Dinic;
pub use interval_graph::IntervalGraph;
pub use matching::hopcroft_karp;
