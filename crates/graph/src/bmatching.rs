//! Maximum b-matching on bipartite graphs, via max-flow.
//!
//! The Bounded_Length algorithm (Section 3.2) builds a bipartite graph
//! `B = (U, V, E)` with machines `U` (each of degree bound `b(M_i) = g`) and
//! independent sets `V` (each of degree bound `b(IS_h) = 1`), and asks for a
//! maximum subset of edges respecting the degree bounds. The paper cites
//! Gabow's reduction \[11\]; we reduce to integral max-flow instead
//! (source → U with capacity `b(u)`, `u → v` with capacity 1, `V` → sink
//! with capacity `b(v)`), which is equivalent and polynomial.

use crate::flow::Dinic;

/// Result of a maximum b-matching computation.
#[derive(Clone, Debug)]
pub struct BMatching {
    /// Total number of matched edges.
    pub size: usize,
    /// The selected edges as `(left, right)` pairs.
    pub edges: Vec<(u32, u32)>,
}

/// Computes a maximum b-matching of the bipartite graph with degree bounds
/// `b_left[u]`, `b_right[v]` and edge list `edges` (`(left, right)` pairs,
/// each usable at most once).
///
/// Returns the selected edge set. Integrality of max-flow guarantees the
/// result is a valid b-matching of maximum size.
pub fn max_b_matching(b_left: &[u32], b_right: &[u32], edges: &[(u32, u32)]) -> BMatching {
    let n_left = b_left.len();
    let n_right = b_right.len();
    // vertex layout: 0 = source, 1..=n_left = left, then right, then sink
    let source = 0u32;
    let left = |u: u32| 1 + u;
    let right = |v: u32| 1 + n_left as u32 + v;
    let sink = 1 + n_left as u32 + n_right as u32;
    let mut net = Dinic::new(n_left + n_right + 2);
    for (u, &b) in b_left.iter().enumerate() {
        net.add_edge(source, left(u as u32), i64::from(b));
    }
    for (v, &b) in b_right.iter().enumerate() {
        net.add_edge(right(v as u32), sink, i64::from(b));
    }
    let mut edge_ids = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        assert!((u as usize) < n_left, "left endpoint {u} out of range");
        assert!((v as usize) < n_right, "right endpoint {v} out of range");
        edge_ids.push(net.add_edge(left(u), right(v), 1));
    }
    let size = net.max_flow(source, sink) as usize;
    let selected: Vec<(u32, u32)> = edges
        .iter()
        .zip(&edge_ids)
        .filter(|(_, &id)| net.flow_on(id) > 0)
        .map(|(&e, _)| e)
        .collect();
    debug_assert_eq!(selected.len(), size);
    BMatching {
        size,
        edges: selected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matching::hopcroft_karp;

    fn degree_check(bm: &BMatching, b_left: &[u32], b_right: &[u32]) {
        let mut dl = vec![0u32; b_left.len()];
        let mut dr = vec![0u32; b_right.len()];
        for &(u, v) in &bm.edges {
            dl[u as usize] += 1;
            dr[v as usize] += 1;
        }
        for (d, &b) in dl.iter().zip(b_left) {
            assert!(d <= &b);
        }
        for (d, &b) in dr.iter().zip(b_right) {
            assert!(d <= &b);
        }
    }

    #[test]
    fn machine_capacity_example() {
        // 2 machines with b = 2, 5 ISs with b = 1; machine 0 sees all
        let b_left = [2u32, 2];
        let b_right = [1u32; 5];
        let edges: Vec<(u32, u32)> = (0..5)
            .map(|v| (0u32, v))
            .chain((0..5).map(|v| (1u32, v)))
            .collect();
        let bm = max_b_matching(&b_left, &b_right, &edges);
        assert_eq!(bm.size, 4); // 2 + 2 capacity on the left
        degree_check(&bm, &b_left, &b_right);
    }

    #[test]
    fn unit_capacities_equal_hopcroft_karp() {
        let adj = vec![vec![0, 2], vec![0, 1], vec![1, 2], vec![2]];
        let edges: Vec<(u32, u32)> = adj
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u as u32, v)))
            .collect();
        let (hk_size, _, _) = hopcroft_karp(4, 3, &adj);
        let bm = max_b_matching(&[1; 4], &[1; 3], &edges);
        assert_eq!(bm.size, hk_size);
        degree_check(&bm, &[1; 4], &[1; 3]);
    }

    #[test]
    fn zero_capacity_left_blocks() {
        let bm = max_b_matching(&[0], &[5], &[(0, 0)]);
        assert_eq!(bm.size, 0);
        assert!(bm.edges.is_empty());
    }

    #[test]
    fn saturates_right_side() {
        // one machine with b = 3, ISs with b = 1: matches all 3
        let bm = max_b_matching(&[3], &[1, 1, 1], &[(0, 0), (0, 1), (0, 2)]);
        assert_eq!(bm.size, 3);
        degree_check(&bm, &[3], &[1, 1, 1]);
    }

    #[test]
    fn empty_everything() {
        let bm = max_b_matching(&[], &[], &[]);
        assert_eq!(bm.size, 0);
    }

    #[test]
    fn parallel_edges_counted_once_each() {
        // two parallel copies of the same edge can both be used if caps allow
        let bm = max_b_matching(&[2], &[2], &[(0, 0), (0, 0)]);
        assert_eq!(bm.size, 2);
    }
}
