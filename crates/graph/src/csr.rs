//! Compressed sparse row (CSR) adjacency for static graphs.

/// A static undirected or directed graph in CSR form.
///
/// Built once from an edge list; neighbour queries are contiguous slices,
/// which keeps traversals cache-friendly (per the HPC guidance this crate
/// follows: flat arrays over pointer-chasing).
#[derive(Clone, Debug)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds an *undirected* graph on `n` vertices: each pair `(u, v)` is
    /// inserted in both directions.
    pub fn undirected(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(u, v) in edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        Self::from_degrees(n, deg, edges.iter().flat_map(|&(u, v)| [(u, v), (v, u)]))
    }

    /// Builds a *directed* graph on `n` vertices.
    pub fn directed(n: usize, edges: &[(u32, u32)]) -> Self {
        let mut deg = vec![0usize; n];
        for &(u, _) in edges {
            deg[u as usize] += 1;
        }
        Self::from_degrees(n, deg, edges.iter().copied())
    }

    fn from_degrees(n: usize, deg: Vec<usize>, arcs: impl Iterator<Item = (u32, u32)>) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &deg {
            let last = *offsets.last().expect("non-empty");
            offsets.push(last + d);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; offsets[n]];
        for (u, v) in arcs {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True iff the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Out-neighbours of `u` as a slice.
    pub fn neighbors(&self, u: u32) -> &[u32] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.neighbors(u).len()
    }

    /// Total number of stored arcs (twice the edge count for undirected).
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Connected components (undirected semantics over stored arcs) as a
    /// vertex→component-id labelling plus the component count.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let n = self.len();
        let mut label = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for s in 0..n as u32 {
            if label[s as usize] != u32::MAX {
                continue;
            }
            label[s as usize] = next;
            stack.push(s);
            while let Some(u) = stack.pop() {
                for &v in self.neighbors(u) {
                    if label[v as usize] == u32::MAX {
                        label[v as usize] = next;
                        stack.push(v);
                    }
                }
            }
            next += 1;
        }
        (label, next as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_symmetry() {
        let g = Csr::undirected(4, &[(0, 1), (1, 2)]);
        assert_eq!(g.len(), 4);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);
        assert_eq!(g.arc_count(), 4);
    }

    #[test]
    fn directed_arcs() {
        let g = Csr::directed(3, &[(0, 1), (0, 2), (2, 1)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[] as &[u32]);
        assert_eq!(g.degree(2), 1);
    }

    #[test]
    fn components_labelling() {
        let g = Csr::undirected(5, &[(0, 1), (2, 3)]);
        let (label, count) = g.components();
        assert_eq!(count, 3);
        assert_eq!(label[0], label[1]);
        assert_eq!(label[2], label[3]);
        assert_ne!(label[0], label[2]);
        assert_ne!(label[4], label[0]);
        assert_ne!(label[4], label[2]);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::undirected(0, &[]);
        assert!(g.is_empty());
        assert_eq!(g.components().1, 0);
    }

    #[test]
    fn self_loop_and_multi_edge_tolerated() {
        let g = Csr::undirected(2, &[(0, 0), (0, 1), (0, 1)]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 2);
        let (_, count) = g.components();
        assert_eq!(count, 1);
    }
}
