//! Property tests for the graph substrate.

use busytime_graph::{hopcroft_karp, max_b_matching, IntervalGraph};
use busytime_interval::Interval;
use proptest::prelude::*;

fn arb_interval() -> impl Strategy<Value = Interval> {
    (-200i64..200, 0i64..60).prop_map(|(s, l)| Interval::with_len(s, l))
}

fn arb_family(max_n: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec(arb_interval(), 0..max_n)
}

fn arb_bipartite() -> impl Strategy<Value = (usize, usize, Vec<(u32, u32)>)> {
    (1usize..8, 1usize..8).prop_flat_map(|(nl, nr)| {
        let edges = proptest::collection::vec((0..nl as u32, 0..nr as u32), 0..(nl * nr).min(20));
        edges.prop_map(move |mut es| {
            es.sort_unstable();
            es.dedup();
            (nl, nr, es)
        })
    })
}

proptest! {
    /// Interval graph edges match the brute-force pairwise overlap relation.
    #[test]
    fn interval_graph_edges_are_overlaps(family in arb_family(25)) {
        let g = IntervalGraph::new(&family);
        for u in 0..family.len() {
            for v in (u + 1)..family.len() {
                let edge = g.adjacency().neighbors(u as u32).contains(&(v as u32));
                prop_assert_eq!(edge, family[u].overlaps(&family[v]),
                    "edge ({}, {}) mismatch", u, v);
            }
        }
    }

    /// The sweep coloring is proper and uses exactly ω colors (perfection).
    #[test]
    fn coloring_proper_and_tight(family in arb_family(30)) {
        let g = IntervalGraph::new(&family);
        let (colors, k) = g.optimal_coloring();
        prop_assert!(g.is_proper_coloring(&colors));
        prop_assert_eq!(k, g.clique_number());
        if !family.is_empty() {
            let used: std::collections::HashSet<u32> = colors.iter().copied().collect();
            prop_assert_eq!(used.len(), k);
        }
    }

    /// b-matching with unit capacities equals Hopcroft–Karp.
    #[test]
    fn unit_bmatching_is_matching((nl, nr, edges) in arb_bipartite()) {
        let mut adj = vec![Vec::new(); nl];
        for &(u, v) in &edges {
            adj[u as usize].push(v);
        }
        let (hk, _, _) = hopcroft_karp(nl, nr, &adj);
        let bm = max_b_matching(&vec![1; nl], &vec![1; nr], &edges);
        prop_assert_eq!(bm.size, hk);
    }

    /// b-matching respects degree bounds and never exceeds either side's
    /// total capacity or the edge count.
    #[test]
    fn bmatching_bounds((nl, nr, edges) in arb_bipartite(),
                        bl in proptest::collection::vec(0u32..4, 8),
                        br in proptest::collection::vec(0u32..4, 8)) {
        let b_left = &bl[..nl];
        let b_right = &br[..nr];
        let bm = max_b_matching(b_left, b_right, &edges);
        let mut dl = vec![0u32; nl];
        let mut dr = vec![0u32; nr];
        for &(u, v) in &bm.edges {
            dl[u as usize] += 1;
            dr[v as usize] += 1;
        }
        for (d, &b) in dl.iter().zip(b_left) { prop_assert!(*d <= b); }
        for (d, &b) in dr.iter().zip(b_right) { prop_assert!(*d <= b); }
        let cap_l: u32 = b_left.iter().sum();
        let cap_r: u32 = b_right.iter().sum();
        prop_assert!(bm.size <= cap_l.min(cap_r) as usize);
        prop_assert!(bm.size <= edges.len());
    }

    /// On complete bipartite graphs, max-flow min-cut gives a brute-force
    /// checkable optimum: min over A ⊆ L, B ⊆ R of
    /// `Σ_{u∈A} b_u + Σ_{v∈B} b_v + (|L\A|)·(|R\B|)` (saturate A and B at the
    /// source/sink, cut the remaining unit edges). The solver must match it.
    #[test]
    fn bmatching_complete_bipartite(
        bl in proptest::collection::vec(0u32..4, 1..6),
        br in proptest::collection::vec(0u32..4, 1..6),
    ) {
        let (nl, nr) = (bl.len(), br.len());
        let edges: Vec<(u32, u32)> = (0..nl as u32)
            .flat_map(|u| (0..nr as u32).map(move |v| (u, v)))
            .collect();
        let bm = busytime_graph::max_b_matching(&bl, &br, &edges);
        let mut min_cut = u32::MAX;
        for a in 0u32..(1 << nl) {
            let cut_a: u32 = (0..nl).filter(|&i| a & (1 << i) != 0).map(|i| bl[i]).sum();
            let rest_l = nl as u32 - a.count_ones();
            for b in 0u32..(1 << nr) {
                let cut_b: u32 = (0..nr).filter(|&j| b & (1 << j) != 0).map(|j| br[j]).sum();
                let rest_r = nr as u32 - b.count_ones();
                min_cut = min_cut.min(cut_a + cut_b + rest_l * rest_r);
            }
        }
        prop_assert_eq!(bm.size as u32, min_cut);
    }

    /// Max-flow conservation and capacity constraints on random layered
    /// networks, and the flow value equals the sink's in-flow.
    #[test]
    fn flow_conservation_random(
        caps in proptest::collection::vec(0i64..20, 12),
    ) {
        // fixed 5-vertex topology (0 = source, 4 = sink), random capacities
        let arcs = [
            (0u32, 1u32), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4),
            (0, 3), (1, 4), (3, 2), (2, 1), (0, 4),
        ];
        let mut net = busytime_graph::Dinic::new(5);
        let ids: Vec<u32> = arcs
            .iter()
            .zip(&caps)
            .map(|(&(u, v), &c)| net.add_edge(u, v, c))
            .collect();
        let total = net.max_flow(0, 4);
        let mut net_flow = [0i64; 5];
        for (idx, &(u, v)) in arcs.iter().enumerate() {
            let f = net.flow_on(ids[idx]);
            prop_assert!(f >= 0 && f <= caps[idx], "capacity violated");
            net_flow[u as usize] -= f;
            net_flow[v as usize] += f;
        }
        prop_assert_eq!(net_flow[0], -total);
        prop_assert_eq!(net_flow[4], total);
        for (v, &flow) in net_flow.iter().enumerate().take(4).skip(1) {
            prop_assert_eq!(flow, 0, "conservation violated at {}", v);
        }
    }

    /// Greedy clique cover uses at most n and at least ceil(n/ω)... more
    /// usefully: every group is a clique and groups partition the family.
    #[test]
    fn clique_cover_is_partition(family in arb_family(20)) {
        let g = IntervalGraph::new(&family);
        let cover = g.greedy_clique_cover();
        let mut seen = vec![false; family.len()];
        for group in &cover {
            let members: Vec<Interval> = group.iter().map(|&i| family[i as usize]).collect();
            prop_assert!(busytime_interval::relations::is_clique(&members));
            for &i in group {
                prop_assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}
