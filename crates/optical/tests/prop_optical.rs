//! Property tests for the optical application: the reduction identity and
//! grooming validity, on paths and rings.

use busytime_core::algo::{FirstFit, Scheduler};
use busytime_optical::grooming::Grooming;
use busytime_optical::reduction::{
    grooming_from_schedule, instance_of_lightpaths, schedule_cost_equals_twice_regenerators,
};
use busytime_optical::ring::{
    ring_regenerator_count, validate_ring_grooming, CutSolver, RingArc, RingNetwork,
};
use busytime_optical::Lightpath;
use proptest::prelude::*;

fn arb_paths() -> impl Strategy<Value = Vec<Lightpath>> {
    proptest::collection::vec((0usize..30, 1usize..10), 1..40).prop_map(|raw| {
        raw.into_iter()
            .map(|(a, h)| Lightpath::new(a, a + h))
            .collect()
    })
}

fn arb_ring_arcs(n: usize) -> impl Strategy<Value = Vec<RingArc>> {
    proptest::collection::vec((0..n, 1..n - 1), 1..30).prop_map(move |raw| {
        raw.into_iter()
            .map(|(a, h)| RingArc::new(a, (a + h) % n))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Busy time = 2 × regenerators, for every schedule of the reduction.
    #[test]
    fn reduction_identity(paths in arb_paths(), g in 1u32..6) {
        let inst = instance_of_lightpaths(&paths, g);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        let grooming = grooming_from_schedule(&sched);
        prop_assert!(grooming.validate(&paths, g).is_ok());
        let (busy, regs) = schedule_cost_equals_twice_regenerators(&paths, &grooming, g);
        prop_assert_eq!(busy, 2 * regs as i64);
        prop_assert_eq!(busy, sched.cost(&inst));
    }

    /// Edge sharing of lightpaths ⇔ job overlap (the heart of Section 4.2).
    #[test]
    fn edge_sharing_iff_overlap(paths in arb_paths()) {
        let jobs = busytime_optical::jobs_of_lightpaths(&paths);
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                prop_assert_eq!(paths[i].shares_edge(&paths[j]), jobs[i].overlaps(&jobs[j]));
            }
        }
    }

    /// Machine-capacity-valid schedules always map to grooming-valid
    /// colorings, and regenerator counts are monotone non-increasing in g.
    #[test]
    fn grooming_valid_and_monotone(paths in arb_paths()) {
        let mut prev = usize::MAX;
        for g in [1u32, 2, 4, 8] {
            let inst = instance_of_lightpaths(&paths, g);
            let sched = FirstFit::paper().schedule(&inst).unwrap();
            let grooming = grooming_from_schedule(&sched);
            prop_assert!(grooming.validate(&paths, g).is_ok());
            let regs = busytime_optical::regenerator_count(&paths, &grooming, g);
            prop_assert!(regs <= prev, "regenerators increased with g");
            prev = regs;
        }
    }

    /// The ring cut solver always produces grooming-valid assignments, and
    /// its regenerator accounting matches a brute-force recount.
    #[test]
    fn ring_cut_solver_valid(arcs in arb_ring_arcs(12), g in 1u32..5) {
        let net = RingNetwork::new(12);
        let result = CutSolver::new(FirstFit::paper()).solve(&net, &arcs, g).unwrap();
        prop_assert!(validate_ring_grooming(&net, &arcs, &result.grooming, g).is_ok());
        // brute-force recount
        let recount = ring_regenerator_count(&net, &arcs, &result.grooming, g);
        prop_assert_eq!(recount, result.regenerators);
    }

    /// On the ring, one wavelength per arc is always valid (sanity for the
    /// validator) and costs at least as much as the cut solver's assignment.
    #[test]
    fn ring_trivial_coloring_is_upper_bound(arcs in arb_ring_arcs(10), g in 1u32..4) {
        let net = RingNetwork::new(10);
        let trivial = Grooming::from_wavelengths((0..arcs.len()).collect());
        prop_assert!(validate_ring_grooming(&net, &arcs, &trivial, g).is_ok());
        let trivial_cost = ring_regenerator_count(&net, &arcs, &trivial, g);
        let solved = CutSolver::new(FirstFit::paper()).solve(&net, &arcs, g).unwrap();
        prop_assert!(solved.regenerators <= trivial_cost);
    }
}
