//! Scheduler-backed grooming solvers: run any busy-time [`Scheduler`] on the
//! reduced instance and read the wavelengths off the machines — this is how
//! Section 4.2 transfers the paper's guarantees to regenerator minimization.
//!
//! Two entry points:
//!
//! * [`GroomingSolver`] wraps a concrete scheduler (the low-level path);
//! * [`groom_by_name`] drives the unified solve pipeline of
//!   [`busytime_core::solve`], selecting the busy-time solver by registry
//!   key (`"auto"` dispatches on the reduced instance's structure) and
//!   returning the full [`SolveReport`] alongside the grooming.

use busytime_core::algo::{Scheduler, SchedulerError};
use busytime_core::bounds;
use busytime_core::solve::{Auto, SolveError, SolveReport, SolveRequest, SolverRegistry};

use crate::cost::{adm_count, regenerator_count};
use crate::grooming::Grooming;
use crate::network::Lightpath;
use crate::reduction::{grooming_from_schedule, instance_of_lightpaths};

/// A grooming solver wrapping a busy-time scheduler.
///
/// ```
/// use busytime_core::algo::FirstFit;
/// use busytime_optical::{solvers::GroomingSolver, Lightpath};
/// let paths = vec![Lightpath::new(0, 4), Lightpath::new(0, 4)];
/// let result = GroomingSolver::new(FirstFit::paper()).solve(&paths, 2).unwrap();
/// // both groomed onto one wavelength: regenerators at nodes 1, 2, 3
/// assert_eq!(result.regenerators, 3);
/// assert_eq!(result.wavelengths, 1);
/// ```
#[derive(Clone, Debug)]
pub struct GroomingSolver<S> {
    /// The underlying busy-time scheduler.
    pub scheduler: S,
}

/// The result of solving a grooming instance.
#[derive(Clone, Debug)]
pub struct GroomingResult {
    /// The wavelength assignment.
    pub grooming: Grooming,
    /// Total regenerators (the `α = 1` objective).
    pub regenerators: usize,
    /// Total ADMs (reported for combined-cost comparisons).
    pub adms: usize,
    /// Number of wavelengths used.
    pub wavelengths: usize,
}

impl<S: Scheduler> GroomingSolver<S> {
    /// Wraps a scheduler.
    pub fn new(scheduler: S) -> Self {
        GroomingSolver { scheduler }
    }

    /// Solver name (delegates to the scheduler).
    pub fn name(&self) -> String {
        format!("Grooming({})", self.scheduler.name())
    }

    /// Solves the grooming problem for `paths` under grooming factor `g`.
    /// The returned assignment always satisfies the grooming constraint
    /// (machine capacity maps to edge load exactly).
    pub fn solve(&self, paths: &[Lightpath], g: u32) -> Result<GroomingResult, SchedulerError> {
        let inst = instance_of_lightpaths(paths, g);
        let schedule = self.scheduler.schedule(&inst)?;
        debug_assert_eq!(schedule.validate(&inst), Ok(()));
        let grooming = grooming_from_schedule(&schedule);
        debug_assert!(grooming.validate(paths, g).is_ok());
        Ok(GroomingResult {
            regenerators: regenerator_count(paths, &grooming, g),
            adms: adm_count(paths, &grooming, g),
            wavelengths: grooming.wavelength_count(),
            grooming,
        })
    }
}

impl GroomingSolver<Auto> {
    /// The portfolio solver: detects the reduced instance's structure and
    /// dispatches the best-guaranteed algorithm (with a FirstFit net).
    pub fn auto() -> Self {
        GroomingSolver::new(Auto::new())
    }
}

/// A grooming result enriched with the busy-time [`SolveReport`] it came
/// from (cost, lower bound, gap, features, timings of the reduced
/// instance).
#[derive(Clone, Debug)]
pub struct GroomingReport {
    /// The grooming-side result.
    pub result: GroomingResult,
    /// The busy-time pipeline report. `report.cost` is exactly
    /// `2 × regenerators` (the reduction's scaling).
    pub report: SolveReport,
}

/// Solves the grooming problem through the unified solve pipeline,
/// selecting the busy-time solver by registry key.
///
/// ```
/// use busytime_core::solve::SolverRegistry;
/// use busytime_optical::{solvers::groom_by_name, Lightpath};
/// let reg = SolverRegistry::with_defaults();
/// let paths = vec![Lightpath::new(0, 4), Lightpath::new(0, 4)];
/// let groomed = groom_by_name(&reg, "auto", &paths, 2).unwrap();
/// assert_eq!(groomed.result.regenerators, 3);
/// assert_eq!(groomed.report.cost, 6); // 2 × regenerators, exactly
/// ```
pub fn groom_by_name(
    registry: &SolverRegistry,
    key: &str,
    paths: &[Lightpath],
    g: u32,
) -> Result<GroomingReport, SolveError> {
    let inst = instance_of_lightpaths(paths, g);
    let report = SolveRequest::new(&inst).solver(key).solve_with(registry)?;
    let grooming = grooming_from_schedule(&report.schedule);
    debug_assert!(grooming.validate(paths, g).is_ok());
    Ok(GroomingReport {
        result: GroomingResult {
            regenerators: regenerator_count(paths, &grooming, g),
            adms: adm_count(paths, &grooming, g),
            wavelengths: grooming.wavelength_count(),
            grooming,
        },
        report,
    })
}

/// Lower bound on the regenerator count of any valid grooming: half the
/// busy-time lower bound of the reduced instance (Observation 1.1 through
/// the factor-2 scaling of the reduction).
pub fn regenerator_lower_bound(paths: &[Lightpath], g: u32) -> usize {
    let inst = instance_of_lightpaths(paths, g);
    (bounds::component_lower_bound(&inst) / 2) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use busytime_core::algo::{FirstFit, MinMachines};

    fn lp(a: usize, b: usize) -> Lightpath {
        Lightpath::new(a, b)
    }

    fn random_paths(seed: u64, n: usize, nodes: usize, max_hops: usize) -> Vec<Lightpath> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        (0..n)
            .map(|_| {
                let a = (next() as usize) % (nodes - max_hops - 1);
                let h = 1 + (next() as usize) % max_hops;
                lp(a, a + h)
            })
            .collect()
    }

    #[test]
    fn first_fit_grooming_valid_and_bounded() {
        for seed in 0..10 {
            let paths = random_paths(seed, 40, 60, 10);
            for g in [1u32, 2, 4] {
                let result = GroomingSolver::new(FirstFit::paper())
                    .solve(&paths, g)
                    .unwrap();
                result.grooming.validate(&paths, g).unwrap();
                let lb = regenerator_lower_bound(&paths, g);
                assert!(result.regenerators >= lb);
                // Theorem 2.1 through the reduction
                assert!(result.regenerators <= 4 * lb.max(1) || lb == 0);
            }
        }
    }

    #[test]
    fn busy_time_awareness_beats_or_ties_min_wavelengths_on_sparse() {
        // sparse long paths: packing everything into few wavelengths makes
        // distinct-node unions large; FirstFit groups by geometry instead
        let paths: Vec<Lightpath> = (0..8)
            .map(|i| lp(10 * i, 10 * i + 8))
            .chain((0..8).map(|i| lp(10 * i + 1, 10 * i + 9)))
            .collect();
        let g = 2;
        let ff = GroomingSolver::new(FirstFit::paper())
            .solve(&paths, g)
            .unwrap();
        let mm = GroomingSolver::new(MinMachines).solve(&paths, g).unwrap();
        assert!(ff.regenerators <= mm.regenerators);
    }

    #[test]
    fn g1_regenerators_are_total_intermediates() {
        // at g = 1 no sharing is possible: every path pays its own nodes
        let paths = [lp(0, 5), lp(2, 7), lp(1, 3)];
        let result = GroomingSolver::new(FirstFit::paper())
            .solve(&paths, 1)
            .unwrap();
        let total: usize = paths.iter().map(|p| p.intermediate_nodes().count()).sum();
        assert_eq!(result.regenerators, total);
    }

    #[test]
    fn grooming_reduces_regenerators_as_g_grows() {
        let paths = random_paths(3, 60, 50, 8);
        let solver = GroomingSolver::new(FirstFit::paper());
        let regs: Vec<usize> = [1u32, 2, 4, 8]
            .iter()
            .map(|&g| solver.solve(&paths, g).unwrap().regenerators)
            .collect();
        // monotone non-increasing in g (more sharing allowed)
        assert!(regs.windows(2).all(|w| w[1] <= w[0]), "{regs:?}");
    }

    #[test]
    fn empty_paths() {
        let result = GroomingSolver::new(FirstFit::paper())
            .solve(&[], 2)
            .unwrap();
        assert_eq!(result.regenerators, 0);
        assert_eq!(result.wavelengths, 0);
    }

    #[test]
    fn groom_by_name_matches_cost_identity() {
        let reg = SolverRegistry::with_defaults();
        let paths = random_paths(5, 30, 50, 8);
        for key in ["auto", "first-fit", "min-machines"] {
            let groomed = groom_by_name(&reg, key, &paths, 3).unwrap();
            groomed.result.grooming.validate(&paths, 3).unwrap();
            // Section 4.2: busy time = 2 × regenerators, exactly
            assert_eq!(groomed.report.cost, 2 * groomed.result.regenerators as i64);
            assert!(groomed.report.gap >= 1.0);
        }
    }

    #[test]
    fn auto_grooming_never_beaten_by_first_fit() {
        let paths = random_paths(11, 50, 60, 9);
        for g in [1u32, 2, 4] {
            let auto = GroomingSolver::auto().solve(&paths, g).unwrap();
            let ff = GroomingSolver::new(FirstFit::paper())
                .solve(&paths, g)
                .unwrap();
            assert!(auto.regenerators <= ff.regenerators);
        }
    }

    #[test]
    fn groom_by_name_unknown_solver_errors() {
        let reg = SolverRegistry::with_defaults();
        assert!(groom_by_name(&reg, "nope", &[lp(0, 3)], 2).is_err());
    }
}
