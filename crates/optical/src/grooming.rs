//! Wavelength assignments under a grooming factor.

use crate::network::Lightpath;

/// A wavelength assignment (coloring) for a lightpath set: `wavelength[i]`
/// is the color of lightpath `i`. Valid under grooming factor `g` iff at
/// most `g` same-wavelength lightpaths share any edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grooming {
    wavelengths: Vec<usize>,
    wavelength_count: usize,
}

/// A violation of the grooming constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroomingViolation {
    /// The overloaded edge (joining nodes `edge` and `edge + 1`).
    pub edge: usize,
    /// The offending wavelength.
    pub wavelength: usize,
    /// Number of lightpaths of that wavelength on the edge.
    pub load: usize,
    /// The grooming factor.
    pub g: u32,
}

impl std::fmt::Display for GroomingViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "edge {} carries {} lightpaths of wavelength {} (grooming factor {})",
            self.edge, self.load, self.wavelength, self.g
        )
    }
}

impl std::error::Error for GroomingViolation {}

impl Grooming {
    /// Builds a grooming from raw wavelength ids, compacting them to
    /// `0..wavelength_count` while preserving numeric order.
    pub fn from_wavelengths(raw: Vec<usize>) -> Self {
        let mut ids: Vec<usize> = raw.clone();
        ids.sort_unstable();
        ids.dedup();
        let wavelengths = raw
            .into_iter()
            .map(|w| ids.binary_search(&w).expect("id present"))
            .collect();
        Grooming {
            wavelengths,
            wavelength_count: ids.len(),
        }
    }

    /// The wavelength of each lightpath.
    pub fn wavelengths(&self) -> &[usize] {
        &self.wavelengths
    }

    /// The wavelength of lightpath `i`.
    pub fn wavelength_of(&self, i: usize) -> usize {
        self.wavelengths[i]
    }

    /// Number of distinct wavelengths used.
    pub fn wavelength_count(&self) -> usize {
        self.wavelength_count
    }

    /// Checks the grooming constraint: at most `g` lightpaths per wavelength
    /// per edge. `O(Σ hops)`.
    pub fn validate(&self, paths: &[Lightpath], g: u32) -> Result<(), GroomingViolation> {
        assert_eq!(
            self.wavelengths.len(),
            paths.len(),
            "assignment must cover every lightpath"
        );
        let max_node = paths.iter().map(|p| p.b).max().unwrap_or(0);
        // per-wavelength edge loads via difference arrays
        let mut diff = vec![std::collections::HashMap::<usize, i64>::new(); self.wavelength_count];
        for (lp, &w) in paths.iter().zip(&self.wavelengths) {
            *diff[w].entry(lp.a).or_insert(0) += 1;
            *diff[w].entry(lp.b).or_insert(0) -= 1;
        }
        for (w, d) in diff.iter().enumerate() {
            let mut events: Vec<(usize, i64)> = d.iter().map(|(&k, &v)| (k, v)).collect();
            events.sort_unstable();
            let mut load = 0i64;
            for (edge, delta) in events {
                load += delta;
                if load > i64::from(g) && edge < max_node {
                    return Err(GroomingViolation {
                        edge,
                        wavelength: w,
                        load: load as usize,
                        g,
                    });
                }
            }
        }
        Ok(())
    }

    /// Per-wavelength lightpath groups.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = vec![Vec::new(); self.wavelength_count];
        for (i, &w) in self.wavelengths.iter().enumerate() {
            groups[w].push(i);
        }
        groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(a: usize, b: usize) -> Lightpath {
        Lightpath::new(a, b)
    }

    #[test]
    fn valid_grooming_passes() {
        let paths = [lp(0, 3), lp(2, 5), lp(0, 2)];
        let grooming = Grooming::from_wavelengths(vec![0, 0, 0]);
        // edge 2 carries paths 0 and 1 → load 2
        assert!(grooming.validate(&paths, 2).is_ok());
        assert!(grooming.validate(&paths, 1).is_err());
    }

    #[test]
    fn violation_reports_edge_and_load() {
        let paths = [lp(0, 4), lp(1, 5), lp(2, 6)];
        let grooming = Grooming::from_wavelengths(vec![0, 0, 0]);
        let err = grooming.validate(&paths, 2).unwrap_err();
        assert_eq!(err.load, 3);
        assert_eq!(err.edge, 2); // first edge where all three meet
        assert!(err.to_string().contains("wavelength 0"));
    }

    #[test]
    fn separate_wavelengths_relax_load() {
        let paths = [lp(0, 4), lp(1, 5), lp(2, 6)];
        let grooming = Grooming::from_wavelengths(vec![0, 1, 0]);
        assert!(grooming.validate(&paths, 2).is_ok());
        assert_eq!(grooming.wavelength_count(), 2);
    }

    #[test]
    fn compaction_preserves_order() {
        let grooming = Grooming::from_wavelengths(vec![5, 9, 5, 2]);
        assert_eq!(grooming.wavelengths(), &[1, 2, 1, 0]);
        assert_eq!(grooming.wavelength_count(), 3);
    }

    #[test]
    fn groups_partition() {
        let grooming = Grooming::from_wavelengths(vec![0, 1, 0, 1, 2]);
        assert_eq!(grooming.groups(), vec![vec![0, 2], vec![1, 3], vec![4]]);
    }

    #[test]
    fn touching_paths_share_wavelength_at_g1() {
        // (0,3) and (3,6) share node 3 but no edge → same wavelength is fine
        let paths = [lp(0, 3), lp(3, 6)];
        let grooming = Grooming::from_wavelengths(vec![0, 0]);
        assert!(grooming.validate(&paths, 1).is_ok());
    }

    #[test]
    fn empty_paths() {
        let grooming = Grooming::from_wavelengths(vec![]);
        assert!(grooming.validate(&[], 3).is_ok());
        assert_eq!(grooming.wavelength_count(), 0);
    }
}
