//! Hardware cost accounting: regenerators and ADMs (Section 4.1).

use std::collections::HashMap;

use crate::grooming::Grooming;
use crate::network::Lightpath;

/// Total regenerator count of a grooming.
///
/// A lightpath `(a, b)` needs signal regeneration at every intermediate node
/// `a < i < b`; up to `g` same-wavelength lightpaths through the same node
/// share one regenerator. Per (wavelength, node) the count is
/// `⌈through/g⌉`; under a *valid* grooming `through ≤ g` always (a through
/// path occupies both adjacent edges), so each busy (wavelength, node) pair
/// costs exactly one regenerator — which is what makes the reduction to busy
/// time exact.
pub fn regenerator_count(paths: &[Lightpath], grooming: &Grooming, g: u32) -> usize {
    let mut through: HashMap<(usize, usize), usize> = HashMap::new();
    for (lp, &w) in paths.iter().zip(grooming.wavelengths()) {
        for node in lp.intermediate_nodes() {
            *through.entry((w, node)).or_insert(0) += 1;
        }
    }
    through
        .values()
        .map(|&count| count.div_ceil(g as usize))
        .sum()
}

/// Total ADM count of a grooming.
///
/// Every lightpath terminates in an ADM at each endpoint. Same-wavelength
/// lightpaths meeting at a node from opposite sides (one ending, one
/// starting — no shared edge) use the same ADM, and with grooming up to `g`
/// lightpaths may enter an ADM per side. Per (wavelength, node) with `L`
/// right-endpoints and `R` left-endpoints the count is
/// `max(⌈L/g⌉, ⌈R/g⌉)` — the paper optimizes this objective in \[8\]; here
/// it is reported for the combined-cost experiments.
pub fn adm_count(paths: &[Lightpath], grooming: &Grooming, g: u32) -> usize {
    let mut ends: HashMap<(usize, usize), (usize, usize)> = HashMap::new();
    for (lp, &w) in paths.iter().zip(grooming.wavelengths()) {
        ends.entry((w, lp.b)).or_insert((0, 0)).0 += 1; // arrives from left
        ends.entry((w, lp.a)).or_insert((0, 0)).1 += 1; // departs to right
    }
    ends.values()
        .map(|&(l, r)| l.div_ceil(g as usize).max(r.div_ceil(g as usize)))
        .sum()
}

/// The combined objective `α·#regenerators + (1−α)·#ADMs` (Section 4.1).
/// The paper's algorithms solve `α = 1`.
pub fn combined_cost(paths: &[Lightpath], grooming: &Grooming, g: u32, alpha: f64) -> f64 {
    assert!((0.0..=1.0).contains(&alpha), "alpha must lie in [0, 1]");
    alpha * regenerator_count(paths, grooming, g) as f64
        + (1.0 - alpha) * adm_count(paths, grooming, g) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp(a: usize, b: usize) -> Lightpath {
        Lightpath::new(a, b)
    }

    #[test]
    fn single_path_regenerators() {
        let paths = [lp(0, 4)];
        let grooming = Grooming::from_wavelengths(vec![0]);
        // intermediate nodes 1, 2, 3
        assert_eq!(regenerator_count(&paths, &grooming, 1), 3);
        assert_eq!(regenerator_count(&paths, &grooming, 4), 3);
    }

    #[test]
    fn sharing_saves_regenerators() {
        let paths = [lp(0, 4), lp(0, 4)];
        let same = Grooming::from_wavelengths(vec![0, 0]);
        let diff = Grooming::from_wavelengths(vec![0, 1]);
        assert_eq!(regenerator_count(&paths, &same, 2), 3);
        assert_eq!(regenerator_count(&paths, &diff, 2), 6);
    }

    #[test]
    fn invalid_overload_costs_extra() {
        // 3 identical paths on one wavelength with g = 2: ⌈3/2⌉ = 2 per node
        let paths = [lp(0, 3), lp(0, 3), lp(0, 3)];
        let grooming = Grooming::from_wavelengths(vec![0, 0, 0]);
        assert_eq!(regenerator_count(&paths, &grooming, 2), 4); // 2 nodes × 2
    }

    #[test]
    fn single_hop_needs_no_regenerator() {
        let paths = [lp(2, 3)];
        let grooming = Grooming::from_wavelengths(vec![0]);
        assert_eq!(regenerator_count(&paths, &grooming, 1), 0);
    }

    #[test]
    fn adm_basic_counts() {
        // one path: one ADM at each endpoint
        let paths = [lp(0, 3)];
        let grooming = Grooming::from_wavelengths(vec![0]);
        assert_eq!(adm_count(&paths, &grooming, 1), 2);
    }

    #[test]
    fn adm_sharing_at_meeting_node() {
        // (0,3) ends at 3, (3,6) starts at 3, same wavelength: the node-3
        // ADM is shared → 3 total instead of 4
        let paths = [lp(0, 3), lp(3, 6)];
        let same = Grooming::from_wavelengths(vec![0, 0]);
        assert_eq!(adm_count(&paths, &same, 1), 3);
        let diff = Grooming::from_wavelengths(vec![0, 1]);
        assert_eq!(adm_count(&paths, &diff, 1), 4);
    }

    #[test]
    fn adm_grooming_packs_g_per_side() {
        // g identical paths of one wavelength: one ADM per endpoint node
        let paths = [lp(0, 3), lp(0, 3), lp(0, 3)];
        let grooming = Grooming::from_wavelengths(vec![0, 0, 0]);
        assert_eq!(adm_count(&paths, &grooming, 3), 2);
        assert_eq!(adm_count(&paths, &grooming, 2), 4); // ⌈3/2⌉ per side
    }

    #[test]
    fn combined_cost_interpolates() {
        let paths = [lp(0, 4), lp(0, 4)];
        let grooming = Grooming::from_wavelengths(vec![0, 0]);
        let regs = regenerator_count(&paths, &grooming, 2) as f64;
        let adms = adm_count(&paths, &grooming, 2) as f64;
        assert_eq!(combined_cost(&paths, &grooming, 2, 1.0), regs);
        assert_eq!(combined_cost(&paths, &grooming, 2, 0.0), adms);
        let half = combined_cost(&paths, &grooming, 2, 0.5);
        assert!((half - 0.5 * (regs + adms)).abs() < 1e-9);
    }

    #[test]
    fn empty_paths_cost_nothing() {
        let grooming = Grooming::from_wavelengths(vec![]);
        assert_eq!(regenerator_count(&[], &grooming, 2), 0);
        assert_eq!(adm_count(&[], &grooming, 2), 0);
    }
}
