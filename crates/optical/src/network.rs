//! Path-topology networks and lightpaths.

/// An optical network with a path topology: nodes `0..node_count` connected
/// in a line; edge `e` joins nodes `e` and `e + 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathNetwork {
    /// Number of nodes (≥ 2 for any lightpath to exist).
    pub node_count: usize,
}

impl PathNetwork {
    /// Creates a path network with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        PathNetwork { node_count }
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.node_count.saturating_sub(1)
    }

    /// True iff `lp` fits in this network.
    pub fn contains(&self, lp: &Lightpath) -> bool {
        lp.b < self.node_count
    }
}

/// A lightpath from node `a` to node `b` (`a < b`), using edges
/// `a, a+1, …, b−1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lightpath {
    /// Left endpoint node.
    pub a: usize,
    /// Right endpoint node (exclusive of `a`; `a < b`).
    pub b: usize,
}

impl Lightpath {
    /// Creates a lightpath.
    ///
    /// # Panics
    ///
    /// Panics if `a >= b`.
    pub fn new(a: usize, b: usize) -> Self {
        assert!(
            a < b,
            "lightpath endpoints must satisfy a < b (got {a}, {b})"
        );
        Lightpath { a, b }
    }

    /// Edges used: `a..b` (edge `e` = (e, e+1)).
    pub fn edges(&self) -> std::ops::Range<usize> {
        self.a..self.b
    }

    /// Number of edges (the hop length).
    pub fn hop_count(&self) -> usize {
        self.b - self.a
    }

    /// Intermediate nodes `a+1..b` — where regenerators sit.
    pub fn intermediate_nodes(&self) -> std::ops::Range<usize> {
        self.a + 1..self.b
    }

    /// True iff the two lightpaths share at least one edge.
    pub fn shares_edge(&self, other: &Lightpath) -> bool {
        self.a < other.b && other.a < self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lightpath_geometry() {
        let lp = Lightpath::new(2, 6);
        assert_eq!(lp.edges(), 2..6);
        assert_eq!(lp.hop_count(), 4);
        assert_eq!(lp.intermediate_nodes(), 3..6);
        assert_eq!(lp.intermediate_nodes().count(), 3);
    }

    #[test]
    fn single_hop_has_no_intermediates() {
        let lp = Lightpath::new(4, 5);
        assert_eq!(lp.intermediate_nodes().count(), 0);
        assert_eq!(lp.hop_count(), 1);
    }

    #[test]
    #[should_panic(expected = "a < b")]
    fn degenerate_rejected() {
        let _ = Lightpath::new(3, 3);
    }

    #[test]
    fn edge_sharing() {
        let a = Lightpath::new(0, 3);
        let b = Lightpath::new(2, 5);
        let c = Lightpath::new(3, 6);
        assert!(a.shares_edge(&b));
        assert!(!a.shares_edge(&c)); // meet at node 3, no common edge
        assert!(b.shares_edge(&c));
    }

    #[test]
    fn network_containment() {
        let net = PathNetwork::new(8);
        assert_eq!(net.edge_count(), 7);
        assert!(net.contains(&Lightpath::new(0, 7)));
        assert!(!net.contains(&Lightpath::new(3, 8)));
    }
}
