//! The reduction of Section 4.2: lightpath grooming on a path ⇆ busy-time
//! scheduling, with exact cost correspondence.
//!
//! Lightpath `(a, b)` becomes the job `[a+½, b−½]`; a regenerator at node
//! `i` corresponds to the interval `[i−½, i+½]`; wavelengths correspond to
//! machines. We scale everything by 2 to stay integral: job `[2a+1, 2b−1]`,
//! regenerator cell `[2i−1, 2i+1]` of measure 2. Hence:
//!
//! > total busy time of the schedule = 2 × total regenerator count.
//!
//! The factor 2 is an artifact of scaling, identical on both sides of every
//! comparison, so approximation ratios transfer exactly.

use busytime_core::{Instance, Schedule};
use busytime_interval::Interval;

use crate::cost::regenerator_count;
use crate::grooming::Grooming;
use crate::network::Lightpath;

/// Maps lightpaths to their scheduling jobs (scaled by 2): `(a, b)` →
/// `[2a+1, 2b−1]`.
pub fn jobs_of_lightpaths(paths: &[Lightpath]) -> Vec<Interval> {
    paths
        .iter()
        .map(|lp| Interval::new(2 * lp.a as i64 + 1, 2 * lp.b as i64 - 1))
        .collect()
}

/// Builds the scheduling instance corresponding to a grooming problem.
pub fn instance_of_lightpaths(paths: &[Lightpath], g: u32) -> Instance {
    Instance::new(jobs_of_lightpaths(paths), g)
}

/// Converts a schedule of the reduced instance back into a wavelength
/// assignment (machine = wavelength).
pub fn grooming_from_schedule(schedule: &Schedule) -> Grooming {
    Grooming::from_wavelengths(schedule.assignment().to_vec())
}

/// Converts a wavelength assignment into a schedule of the reduced instance
/// (wavelength = machine).
pub fn schedule_from_grooming(grooming: &Grooming) -> Schedule {
    Schedule::from_assignment(grooming.wavelengths().to_vec())
}

/// The exact correspondence: busy time of the reduced schedule equals twice
/// the regenerator count of the corresponding grooming. Returns
/// `(busy_time, regenerators)` for convenience; callers assert equality.
pub fn schedule_cost_equals_twice_regenerators(
    paths: &[Lightpath],
    grooming: &Grooming,
    g: u32,
) -> (i64, usize) {
    let inst = instance_of_lightpaths(paths, g);
    let schedule = schedule_from_grooming(grooming);
    let busy = schedule.cost(&inst);
    let regs = regenerator_count(paths, grooming, g);
    (busy, regs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use busytime_core::algo::{FirstFit, Scheduler};

    fn lp(a: usize, b: usize) -> Lightpath {
        Lightpath::new(a, b)
    }

    #[test]
    fn job_mapping() {
        let jobs = jobs_of_lightpaths(&[lp(0, 4), lp(2, 3)]);
        assert_eq!(jobs, vec![Interval::new(1, 7), Interval::new(5, 5)]);
    }

    #[test]
    fn touching_lightpaths_become_disjoint_jobs() {
        // (0,3) and (3,6) share node 3 (no edge) → jobs [1,5], [7,11] disjoint
        let jobs = jobs_of_lightpaths(&[lp(0, 3), lp(3, 6)]);
        assert!(!jobs[0].overlaps(&jobs[1]));
        // (0,3) and (2,5) share edge 2 → jobs [1,5], [5,9] overlap
        let jobs = jobs_of_lightpaths(&[lp(0, 3), lp(2, 5)]);
        assert!(jobs[0].overlaps(&jobs[1]));
    }

    #[test]
    fn edge_sharing_iff_job_overlap() {
        let paths: Vec<Lightpath> = (0..6)
            .flat_map(|a| (a + 1..7).map(move |b| lp(a, b)))
            .collect();
        let jobs = jobs_of_lightpaths(&paths);
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                assert_eq!(
                    paths[i].shares_edge(&paths[j]),
                    jobs[i].overlaps(&jobs[j]),
                    "mismatch for {:?} vs {:?}",
                    paths[i],
                    paths[j]
                );
            }
        }
    }

    #[test]
    fn cost_equivalence_hand_example() {
        let paths = [lp(0, 4), lp(0, 4), lp(2, 6)];
        // the twins share wavelength 0; (2,6) must not (edge 2 would carry 3)
        let grooming = Grooming::from_wavelengths(vec![0, 0, 1]);
        grooming.validate(&paths, 2).unwrap();
        let (busy, regs) = schedule_cost_equals_twice_regenerators(&paths, &grooming, 2);
        // wavelength 0 through-nodes {1,2,3}, wavelength 1 through-nodes {3,4,5}
        assert_eq!(regs, 6);
        assert_eq!(busy, 2 * regs as i64);
    }

    #[test]
    fn cost_equivalence_random() {
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _ in 0..30 {
            let n = 3 + (next() % 20) as usize;
            let g = 1 + (next() % 4) as u32;
            let paths: Vec<Lightpath> = (0..n)
                .map(|_| {
                    let a = (next() % 20) as usize;
                    let len = 1 + (next() % 8) as usize;
                    lp(a, a + len)
                })
                .collect();
            // schedule via FirstFit on the reduced instance
            let inst = instance_of_lightpaths(&paths, g);
            let sched = FirstFit::paper().schedule(&inst).unwrap();
            let grooming = grooming_from_schedule(&sched);
            grooming.validate(&paths, g).unwrap();
            let (busy, regs) = schedule_cost_equals_twice_regenerators(&paths, &grooming, g);
            assert_eq!(busy, 2 * regs as i64);
            assert_eq!(busy, sched.cost(&inst));
        }
    }

    #[test]
    fn roundtrip_schedule_grooming() {
        let paths = [lp(0, 3), lp(1, 4), lp(5, 7)];
        let inst = instance_of_lightpaths(&paths, 2);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        let grooming = grooming_from_schedule(&sched);
        let back = schedule_from_grooming(&grooming);
        assert_eq!(back.assignment(), sched.assignment());
    }

    #[test]
    fn valid_schedule_gives_valid_grooming() {
        // capacity g on machines ⇒ grooming factor g on edges
        let paths = [lp(0, 5), lp(1, 6), lp(2, 7), lp(0, 7), lp(3, 4)];
        let g = 2;
        let inst = instance_of_lightpaths(&paths, g);
        let sched = FirstFit::paper().schedule(&inst).unwrap();
        sched.validate(&inst).unwrap();
        let grooming = grooming_from_schedule(&sched);
        assert!(grooming.validate(&paths, g).is_ok());
    }
}
