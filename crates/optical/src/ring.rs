//! Extension: grooming on **ring** topologies.
//!
//! The paper solves the path topology and notes (Section 1.3) that the
//! follow-up work \[9\] generalizes to arbitrary topologies; rings are the
//! historically central case (grooming was introduced for SONET rings,
//! \[12\]). This module provides:
//!
//! * a ring network model with clockwise lightpath arcs,
//! * grooming validation and regenerator accounting on the ring,
//! * [`CutSolver`]: cut the ring at a minimum-load edge; arcs *crossing* the
//!   cut all share that edge, hence form a clique of the arc-overlap
//!   relation and are colored by the paper's **clique algorithm**
//!   (2-approximate for their part); the remaining arcs unroll to a path
//!   instance solved by any busy-time scheduler (FirstFit by default,
//!   4-approximate for that part).
//!
//! When no arc crosses the chosen cut, the ring instance *is* a path
//! instance and the solver inherits the path guarantees exactly; with
//! crossing arcs the combination is a principled heuristic (no joint ratio
//! is claimed — see DESIGN.md). Costs are always accounted on the true ring
//! model, never on the unrolled approximation.

use std::collections::HashMap;

use busytime_core::algo::{CliqueScheduler, Scheduler, SchedulerError};
use busytime_core::Instance;
use busytime_interval::Interval;

use crate::grooming::Grooming;

/// A ring network: nodes `0..node_count`, edge `i` joins `i` and
/// `(i+1) mod node_count`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingNetwork {
    /// Number of nodes (= number of edges); must be ≥ 3.
    pub node_count: usize,
}

impl RingNetwork {
    /// Creates a ring.
    ///
    /// # Panics
    ///
    /// Panics if `node_count < 3`.
    pub fn new(node_count: usize) -> Self {
        assert!(node_count >= 3, "a ring needs at least 3 nodes");
        RingNetwork { node_count }
    }
}

/// A clockwise lightpath arc `from → to` on a ring (`from ≠ to`), using
/// edges `from, from+1, …, to−1` (mod n).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RingArc {
    /// Source node.
    pub from: usize,
    /// Destination node (clockwise).
    pub to: usize,
}

impl RingArc {
    /// Creates an arc.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`.
    pub fn new(from: usize, to: usize) -> Self {
        assert_ne!(from, to, "arcs must connect distinct nodes");
        RingArc { from, to }
    }

    /// Number of edges used, on a ring of `n` nodes.
    pub fn hop_count(&self, n: usize) -> usize {
        (self.to + n - self.from) % n
    }

    /// Edge ids used, on a ring of `n` nodes.
    pub fn edges(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        let hops = self.hop_count(n);
        (0..hops).map(move |k| (self.from + k) % n)
    }

    /// Intermediate nodes (regenerator sites), on a ring of `n` nodes.
    pub fn intermediate_nodes(&self, n: usize) -> impl Iterator<Item = usize> + '_ {
        let hops = self.hop_count(n);
        (1..hops).map(move |k| (self.from + k) % n)
    }

    /// True iff the arc uses edge `edge` on a ring of `n` nodes.
    pub fn uses_edge(&self, edge: usize, n: usize) -> bool {
        let rel = (edge + n - self.from) % n;
        rel < self.hop_count(n)
    }
}

/// Validates a wavelength assignment on the ring: at most `g` arcs per
/// wavelength per edge. Returns the first `(edge, wavelength, load)`
/// violation.
pub fn validate_ring_grooming(
    net: &RingNetwork,
    arcs: &[RingArc],
    grooming: &Grooming,
    g: u32,
) -> Result<(), (usize, usize, usize)> {
    assert_eq!(grooming.wavelengths().len(), arcs.len());
    let n = net.node_count;
    let mut load: HashMap<(usize, usize), usize> = HashMap::new();
    for (arc, &w) in arcs.iter().zip(grooming.wavelengths()) {
        for e in arc.edges(n) {
            let entry = load.entry((w, e)).or_insert(0);
            *entry += 1;
            if *entry > g as usize {
                return Err((e, w, *entry));
            }
        }
    }
    Ok(())
}

/// Regenerator count on the ring: one per (wavelength, node) with at least
/// one through-arc, `⌈through/g⌉` in general (matches the path-model rule).
pub fn ring_regenerator_count(
    net: &RingNetwork,
    arcs: &[RingArc],
    grooming: &Grooming,
    g: u32,
) -> usize {
    let n = net.node_count;
    let mut through: HashMap<(usize, usize), usize> = HashMap::new();
    for (arc, &w) in arcs.iter().zip(grooming.wavelengths()) {
        for node in arc.intermediate_nodes(n) {
            *through.entry((w, node)).or_insert(0) += 1;
        }
    }
    through.values().map(|&c| c.div_ceil(g as usize)).sum()
}

/// The cut-based ring solver.
#[derive(Clone, Debug)]
pub struct CutSolver<S> {
    /// Scheduler for the unrolled (non-crossing) path instance.
    pub path_scheduler: S,
}

/// Result of a ring grooming.
#[derive(Clone, Debug)]
pub struct RingGroomingResult {
    /// The wavelength assignment, indexed like the input arcs.
    pub grooming: Grooming,
    /// Total regenerators on the ring.
    pub regenerators: usize,
    /// The cut edge chosen.
    pub cut_edge: usize,
    /// How many arcs crossed the cut (0 ⇒ pure path instance).
    pub crossing_arcs: usize,
}

impl<S: Scheduler> CutSolver<S> {
    /// Creates a solver with the given path scheduler.
    pub fn new(path_scheduler: S) -> Self {
        CutSolver { path_scheduler }
    }

    /// Solves the ring grooming instance.
    pub fn solve(
        &self,
        net: &RingNetwork,
        arcs: &[RingArc],
        g: u32,
    ) -> Result<RingGroomingResult, SchedulerError> {
        let n = net.node_count;
        // choose the cut: the edge with the fewest arcs on it
        let mut edge_load = vec![0usize; n];
        for arc in arcs {
            for e in arc.edges(n) {
                edge_load[e] += 1;
            }
        }
        let cut = edge_load
            .iter()
            .enumerate()
            .min_by_key(|(_, &l)| l)
            .map(|(e, _)| e)
            .unwrap_or(0);

        // rotate so that the cut edge becomes (n−1, 0): node x → (x − (cut+1)) mod n
        let rot = |x: usize| (x + n - (cut + 1) % n) % n;
        let mut path_ids = Vec::new();
        let mut crossing_ids = Vec::new();
        let mut path_jobs = Vec::new();
        let mut crossing_jobs = Vec::new();
        for (i, arc) in arcs.iter().enumerate() {
            let a = rot(arc.from);
            let b = rot(arc.to);
            if a < b {
                // does not use edge n−1 in rotated coordinates
                path_ids.push(i);
                path_jobs.push(Interval::new(2 * a as i64 + 1, 2 * b as i64 - 1));
            } else {
                // crosses the cut: unroll past n (all such arcs contain the
                // doubled coordinate of the cut edge → a clique)
                crossing_ids.push(i);
                crossing_jobs.push(Interval::new(2 * a as i64 + 1, 2 * (b + n) as i64 - 1));
            }
        }

        let mut wavelengths = vec![0usize; arcs.len()];
        let mut next_color = 0usize;

        if !path_jobs.is_empty() {
            let inst = Instance::new(path_jobs, g);
            let sched = self.path_scheduler.schedule(&inst)?;
            for (local, &orig) in path_ids.iter().enumerate() {
                wavelengths[orig] = sched.machine_of(local);
            }
            next_color = sched.machine_count();
        }
        if !crossing_jobs.is_empty() {
            let inst = Instance::new(crossing_jobs, g);
            let sched = CliqueScheduler::new().schedule(&inst)?;
            for (local, &orig) in crossing_ids.iter().enumerate() {
                wavelengths[orig] = next_color + sched.machine_of(local);
            }
        }

        let grooming = Grooming::from_wavelengths(wavelengths);
        validate_ring_grooming(net, arcs, &grooming, g).map_err(|(e, w, l)| {
            SchedulerError::UnsupportedInstance {
                scheduler: String::from("CutSolver"),
                reason: format!("internal: produced overload {l} on edge {e}, wavelength {w}"),
            }
        })?;
        Ok(RingGroomingResult {
            regenerators: ring_regenerator_count(net, arcs, &grooming, g),
            crossing_arcs: crossing_ids.len(),
            cut_edge: cut,
            grooming,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use busytime_core::algo::FirstFit;

    fn arc(a: usize, b: usize) -> RingArc {
        RingArc::new(a, b)
    }

    #[test]
    fn arc_geometry() {
        let n = 8;
        let a = arc(6, 2); // wraps: edges 6, 7, 0, 1
        assert_eq!(a.hop_count(n), 4);
        assert_eq!(a.edges(n).collect::<Vec<_>>(), vec![6, 7, 0, 1]);
        assert_eq!(a.intermediate_nodes(n).collect::<Vec<_>>(), vec![7, 0, 1]);
        assert!(a.uses_edge(7, n));
        assert!(a.uses_edge(1, n));
        assert!(!a.uses_edge(2, n));
        assert!(!a.uses_edge(5, n));
    }

    #[test]
    fn validation_counts_per_edge() {
        let net = RingNetwork::new(6);
        let arcs = [arc(0, 3), arc(1, 4), arc(2, 5)];
        let same = Grooming::from_wavelengths(vec![0, 0, 0]);
        // edge 2 carries all three
        let err = validate_ring_grooming(&net, &arcs, &same, 2).unwrap_err();
        assert_eq!(err.2, 3);
        let split = Grooming::from_wavelengths(vec![0, 1, 0]);
        assert!(validate_ring_grooming(&net, &arcs, &split, 2).is_ok());
    }

    #[test]
    fn regenerators_shared_up_to_g() {
        let net = RingNetwork::new(6);
        let arcs = [arc(0, 3), arc(0, 3)];
        let same = Grooming::from_wavelengths(vec![0, 0]);
        // nodes 1, 2 shared
        assert_eq!(ring_regenerator_count(&net, &arcs, &same, 2), 2);
        let diff = Grooming::from_wavelengths(vec![0, 1]);
        assert_eq!(ring_regenerator_count(&net, &arcs, &diff, 2), 4);
    }

    #[test]
    fn cut_solver_zero_crossing_matches_path_semantics() {
        // all arcs avoid edge 5: the cut lands there and nothing crosses
        let net = RingNetwork::new(6);
        let arcs = [arc(0, 2), arc(1, 4), arc(2, 5), arc(0, 3)];
        let result = CutSolver::new(FirstFit::paper())
            .solve(&net, &arcs, 2)
            .unwrap();
        assert_eq!(result.crossing_arcs, 0);
        assert_eq!(result.cut_edge, 5);
        validate_ring_grooming(&net, &arcs, &result.grooming, 2).unwrap();
    }

    #[test]
    fn cut_solver_handles_crossing_arcs() {
        let net = RingNetwork::new(8);
        // heavy wrap-around traffic: several arcs over edge 7→0
        let arcs = [
            arc(6, 2),
            arc(7, 3),
            arc(5, 1),
            arc(0, 4),
            arc(1, 5),
            arc(2, 6),
        ];
        for g in [1u32, 2, 3] {
            let result = CutSolver::new(FirstFit::paper())
                .solve(&net, &arcs, g)
                .unwrap();
            validate_ring_grooming(&net, &arcs, &result.grooming, g).unwrap();
            assert!(result.crossing_arcs > 0);
        }
    }

    #[test]
    fn full_circle_arcs_each_need_own_capacity_slot() {
        let net = RingNetwork::new(5);
        // near-full-circle arcs all overlap everywhere
        let arcs = [arc(0, 4), arc(1, 0), arc(2, 1)];
        let result = CutSolver::new(FirstFit::paper())
            .solve(&net, &arcs, 1)
            .unwrap();
        validate_ring_grooming(&net, &arcs, &result.grooming, 1).unwrap();
        // with g = 1 they can never share a wavelength
        assert_eq!(result.grooming.wavelength_count(), 3);
    }

    #[test]
    fn grooming_reduces_ring_regenerators() {
        let net = RingNetwork::new(12);
        let arcs: Vec<RingArc> = (0..12).map(|i| arc(i, (i + 4) % 12)).collect();
        let solver = CutSolver::new(FirstFit::paper());
        let r1 = solver.solve(&net, &arcs, 1).unwrap().regenerators;
        let r4 = solver.solve(&net, &arcs, 4).unwrap().regenerators;
        assert!(r4 < r1, "grooming should share regenerators: {r4} vs {r1}");
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        let _ = RingNetwork::new(2);
    }
}
