#![warn(missing_docs)]

//! The optical-network application of Section 4: traffic grooming on path
//! topologies, regenerator/ADM cost accounting, and the exact reduction to
//! busy-time scheduling.
//!
//! # Model (Section 4.1)
//!
//! An all-optical network over a **path topology** with nodes `0..n`.
//! Communication requests are *lightpaths* — node intervals `(a, b)` using
//! every edge between `a` and `b`. A wavelength assignment (coloring) must
//! respect the *grooming factor* `g`: at most `g` lightpaths of the same
//! wavelength may share an edge. Hardware costs:
//!
//! * a lightpath needs a **regenerator** at every intermediate node; up to
//!   `g` same-wavelength lightpaths through the same node share one;
//! * a lightpath needs an **ADM** at each endpoint; ADMs are shared by
//!   same-wavelength lightpaths that meet at a node without sharing an edge
//!   (up to `g` per side).
//!
//! The objective is `α·#regenerators + (1−α)·#ADMs`; this paper's algorithms
//! solve `α = 1` (regenerator minimization).
//!
//! # Reduction (Section 4.2)
//!
//! Lightpath `(a, b)` becomes job `[a+½, b−½]` with parallelism `g`;
//! wavelengths correspond to machines and a regenerator at node `i` to the
//! interval `[i−½, i+½]`. In the integral tick model we scale by 2: job
//! `[2a+1, 2b−1]`, so **total busy time = 2 × total regenerator count**,
//! exactly ([`reduction::schedule_cost_equals_twice_regenerators`] is tested
//! on random instances). Consequently every approximation guarantee of
//! `busytime-core` transfers verbatim to regenerator minimization:
//! 4-approx in general, 2-approx for pairwise-intersecting or proper
//! lightpath sets, (2+ε) for bounded-ratio lengths.

pub mod cost;
pub mod grooming;
pub mod network;
pub mod reduction;
pub mod ring;
pub mod solvers;

pub use cost::{adm_count, combined_cost, regenerator_count};
pub use grooming::{Grooming, GroomingViolation};
pub use network::{Lightpath, PathNetwork};
pub use reduction::{grooming_from_schedule, jobs_of_lightpaths, schedule_from_grooming};
pub use solvers::GroomingSolver;
