//! End-to-end coverage of the shard router over in-process listeners:
//! in-order fan-in across skewed shards, the additive-capacity speedup,
//! shard death mid-batch (retry on the survivor, no drops, no
//! duplicates), all-shards-down degradation, sticky pinning, and the
//! sniffed fleet health endpoint.

use std::borrow::Cow;
use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use busytime_core::algo::{FirstFit, Scheduler, SchedulerError};
use busytime_core::cancel::CancelToken;
use busytime_core::pool::Executor;
use busytime_core::solve::SolverRegistry;
use busytime_core::{Instance, Schedule};
use busytime_router::{RouteConfig, RouteReport, Router, ShardState};
use busytime_server::{
    parse_output_line, ConnLog, ListenConfig, ListenMode, ListenReport, Listener, OutputLine,
};

/// A solver that sleeps `hold` before delegating to FirstFit — the knob
/// that makes per-shard latency visible and skewable in these tests.
struct Nap {
    hold: Duration,
}

impl Scheduler for Nap {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("Nap")
    }

    fn schedule_with(
        &self,
        inst: &Instance,
        cancel: &CancelToken,
    ) -> Result<Schedule, SchedulerError> {
        let started = Instant::now();
        while started.elapsed() < self.hold && !cancel.is_cancelled() {
            std::thread::sleep(Duration::from_millis(1));
        }
        FirstFit::paper().schedule_with(inst, &CancelToken::never())
    }
}

fn nap_registry(hold: Duration) -> SolverRegistry {
    let mut registry = SolverRegistry::with_defaults();
    registry.register(
        "nap",
        "sleeps, then first-fit (test stub)",
        None,
        Box::new(move |_| Box::new(Nap { hold })),
    );
    registry
}

fn record(id: &str) -> String {
    format!(
        r#"{{"id": "{id}", "instance": {{"g": 2, "jobs": [[0, 4], [1, 5]]}}, "solver": "nap"}}"#
    )
}

/// One in-process shard: a real listener on an ephemeral port with its
/// own 1-worker executor and a `nap` solver of the given latency.
struct Shard {
    addr: SocketAddr,
    shutdown: CancelToken,
    handle: std::thread::JoinHandle<std::io::Result<ListenReport>>,
}

fn start_shard(nap: Duration, workers: usize, shard_id: &str) -> Shard {
    let config = ListenConfig {
        log: ConnLog::Quiet,
        read_timeout: Duration::from_millis(30),
        shard_id: Some(shard_id.to_string()),
        ..ListenConfig::default()
    };
    let mode = ListenMode::Tcp("127.0.0.1:0".to_string());
    let listener = Listener::bind(&mode, Arc::new(nap_registry(nap)), config)
        .unwrap()
        .executor(Executor::new(workers));
    let addr = listener.local_addr().unwrap();
    let shutdown = listener.shutdown_token();
    let handle = std::thread::spawn(move || listener.run());
    Shard {
        addr,
        shutdown,
        handle,
    }
}

impl Shard {
    fn stop(self) -> ListenReport {
        self.shutdown.cancel();
        self.handle.join().unwrap().unwrap()
    }
}

/// The router under test, on its own ephemeral port.
struct Front {
    addr: SocketAddr,
    shutdown: CancelToken,
    handle: std::thread::JoinHandle<std::io::Result<RouteReport>>,
}

fn quiet_route_config() -> RouteConfig {
    RouteConfig {
        quiet: true,
        read_timeout: Duration::from_millis(30),
        probe_interval: Duration::from_millis(100),
        ..RouteConfig::default()
    }
}

fn start_router(shards: Vec<Arc<ShardState>>, config: RouteConfig) -> Front {
    let mode = ListenMode::Tcp("127.0.0.1:0".to_string());
    let router = Router::bind(&mode, shards, config).unwrap();
    let addr = router.local_addr().unwrap();
    let shutdown = router.shutdown_token();
    let handle = std::thread::spawn(move || router.run());
    Front {
        addr,
        shutdown,
        handle,
    }
}

impl Front {
    fn stop(self) -> RouteReport {
        self.shutdown.cancel();
        self.handle.join().unwrap().unwrap()
    }
}

/// One NDJSON client connection with blocking line reads (generous
/// timeout so a hung router fails the test instead of wedging it).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client { stream, reader }
    }

    fn send(&mut self, line: &str) {
        self.stream.write_all(line.as_bytes()).unwrap();
        self.stream.write_all(b"\n").unwrap();
        self.stream.flush().unwrap();
    }

    /// Half-close the write side; the router answers the batch, appends
    /// the merged trailer, and closes.
    fn finish(&mut self) {
        self.stream.shutdown(Shutdown::Write).unwrap();
    }

    fn read_to_end(&mut self) -> Vec<String> {
        let mut rest = String::new();
        self.reader.read_to_string(&mut rest).unwrap();
        rest.lines().map(str::to_string).collect()
    }
}

/// Sends `ids` as one batch and returns all response lines (trailer
/// included, as the last line).
fn run_batch(addr: SocketAddr, ids: &[String]) -> Vec<String> {
    let mut client = Client::connect(addr);
    for id in ids {
        client.send(&record(id));
    }
    client.finish();
    client.read_to_end()
}

/// Asserts the first `n` lines are in-order responses answering lines
/// `1..=n` with each id exactly once, and returns the trailer line.
fn assert_ordered_batch(lines: &[String], ids: &[String]) -> String {
    assert_eq!(
        lines.len(),
        ids.len() + 1,
        "one response per record plus the trailer: {lines:#?}"
    );
    let mut seen = HashSet::new();
    for (i, line) in lines[..ids.len()].iter().enumerate() {
        let parsed = parse_output_line(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
        assert_eq!(parsed.line(), i + 1, "responses in input order: {line}");
        match parsed {
            OutputLine::Report { id, .. } => {
                let id = id.expect("ids echoed");
                assert_eq!(id, ids[i], "each line answers its own record");
                assert!(seen.insert(id), "no duplicated answers: {line}");
            }
            OutputLine::Error { .. } => panic!("unexpected error line: {line}"),
        }
    }
    lines[ids.len()].clone()
}

#[test]
fn responses_stay_in_input_order_across_skewed_shards() {
    // shard 0 is 25x slower than shard 1: late answers from the slow
    // shard force the fan-in to hold the fast shard's answers back
    let slow = start_shard(Duration::from_millis(25), 1, "slow");
    let fast = start_shard(Duration::from_millis(1), 1, "fast");
    let shards = vec![
        ShardState::new(0, slow.addr.to_string()),
        ShardState::new(1, fast.addr.to_string()),
    ];
    let front = start_router(shards, quiet_route_config());

    let ids: Vec<String> = (0..12).map(|i| format!("r-{i}")).collect();
    let lines = run_batch(front.addr, &ids);
    let trailer = assert_ordered_batch(&lines, &ids);
    assert!(trailer.contains("\"records\": 12"), "{trailer}");
    assert!(trailer.contains("\"solved\": 12"), "{trailer}");
    assert!(
        !trailer.contains("\"line\""),
        "the trailer is a summary, not a response: {trailer}"
    );

    let report = front.stop();
    assert_eq!(report.connections, 1);
    assert_eq!(report.records, 12);
    assert_eq!(report.failed, 0);
    // both shards actually served (the slow one was not starved out)
    let slow_report = slow.stop();
    let fast_report = fast.stop();
    assert_eq!(slow_report.records + fast_report.records, 12);
    assert!(
        slow_report.records > 0,
        "slow shard served part of the batch"
    );
    assert!(
        fast_report.records > 0,
        "fast shard served part of the batch"
    );
}

#[test]
fn merged_trailer_sums_solution_cache_counts_across_shards() {
    // two shards, two batches of one identical instance: the first batch
    // fills each shard's solution cache, the second is served from it, and
    // the router's merged trailer must report the *summed* per-shard
    // counts
    let a = start_shard(Duration::from_millis(5), 1, "a");
    let b = start_shard(Duration::from_millis(5), 1, "b");
    let shards = vec![
        ShardState::new(0, a.addr.to_string()),
        ShardState::new(1, b.addr.to_string()),
    ];
    let front = start_router(shards, quiet_route_config());

    let counts = |trailer: &str| {
        let summary = busytime_server::BatchSummary::from_json_line(trailer).unwrap();
        (summary.solution_cache_hits, summary.solution_cache_misses)
    };

    let ids: Vec<String> = (0..6).map(|i| format!("fill-{i}")).collect();
    let lines = run_batch(front.addr, &ids);
    let trailer = assert_ordered_batch(&lines, &ids);
    let (hits, misses) = counts(&trailer);
    assert_eq!(
        hits + misses,
        6,
        "every record consults the cache: {trailer}"
    );

    // repeats of an instance every shard has now solved: each shard
    // answers its share from its cache, at worst missing once per shard
    // (a shard the first batch never reached)
    let ids: Vec<String> = (0..6).map(|i| format!("hit-{i}")).collect();
    let lines = run_batch(front.addr, &ids);
    let trailer = assert_ordered_batch(&lines, &ids);
    let (hits, misses) = counts(&trailer);
    assert_eq!(hits + misses, 6, "{trailer}");
    assert!(hits >= 4, "warm shards serve repeats from cache: {trailer}");

    front.stop();
    a.stop();
    b.stop();
}

#[test]
fn two_one_worker_shards_beat_one_through_the_router() {
    // the additive-capacity claim: 8 records of ~40ms on one 1-worker
    // shard cost >= 320ms serialized; the same batch through a router
    // over TWO 1-worker shards must be strictly faster
    let nap = Duration::from_millis(40);
    let ids: Vec<String> = (0..8).map(|i| format!("p-{i}")).collect();

    let solo = start_shard(nap, 1, "solo");
    let started = Instant::now();
    let shards = vec![ShardState::new(0, solo.addr.to_string())];
    let front = start_router(shards, quiet_route_config());
    let lines = run_batch(front.addr, &ids);
    let solo_elapsed = started.elapsed();
    assert_ordered_batch(&lines, &ids);
    front.stop();
    solo.stop();

    let a = start_shard(nap, 1, "a");
    let b = start_shard(nap, 1, "b");
    let started = Instant::now();
    let shards = vec![
        ShardState::new(0, a.addr.to_string()),
        ShardState::new(1, b.addr.to_string()),
    ];
    let front = start_router(shards, quiet_route_config());
    let lines = run_batch(front.addr, &ids);
    let dual_elapsed = started.elapsed();
    assert_ordered_batch(&lines, &ids);
    front.stop();
    let served_a = a.stop().records;
    let served_b = b.stop().records;
    assert_eq!(served_a + served_b, 8);
    assert!(
        dual_elapsed < solo_elapsed,
        "two shards must beat one: dual {dual_elapsed:?} vs solo {solo_elapsed:?}"
    );
}

#[test]
fn shard_death_mid_batch_retries_on_the_survivor() {
    // shard 0 is a stub that accepts one connection, reads a single
    // record, then drops everything without answering — the worst-timed
    // death. Its records must be re-dispatched to the survivor with
    // their original line stamps.
    let stub = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let stub_addr = stub.local_addr().unwrap();
    let stub_thread = std::thread::spawn(move || {
        // the background prober may connect first (HTTP healthz probes);
        // shrug those off and keep accepting until the record dispatch
        // connection shows up, so the death is always record-holding
        loop {
            let (conn, _) = stub.accept().unwrap();
            let mut reader = BufReader::new(conn);
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            if !line.starts_with("GET ") {
                break;
            }
        }
        // conn and listener drop here: EOF towards the router, refused
        // connects afterwards
    });
    let survivor = start_shard(Duration::from_millis(5), 1, "survivor");
    let shards = vec![
        ShardState::new(0, stub_addr.to_string()),
        ShardState::new(1, survivor.addr.to_string()),
    ];
    let front = start_router(shards, quiet_route_config());

    let ids: Vec<String> = (0..8).map(|i| format!("k-{i}")).collect();
    let lines = run_batch(front.addr, &ids);
    let trailer = assert_ordered_batch(&lines, &ids);
    assert!(trailer.contains("\"records\": 8"), "{trailer}");

    let report = front.stop();
    assert_eq!(report.records, 8);
    assert!(report.retried >= 1, "the stub's record was re-dispatched");
    assert_eq!(report.failed, 0);
    stub_thread.join().unwrap();
    assert_eq!(
        survivor.stop().records,
        8,
        "the survivor answered everything"
    );
}

#[test]
fn all_shards_down_degrades_to_structured_errors_without_hanging() {
    // two bound-then-dropped ports: connects are refused immediately
    let dead_addr = |_| {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let shards = vec![
        ShardState::new(0, dead_addr(0)),
        ShardState::new(1, dead_addr(1)),
    ];
    let front = start_router(shards, quiet_route_config());

    let mut client = Client::connect(front.addr);
    for i in 0..3 {
        client.send(&record(&format!("d-{i}")));
    }
    client.finish();
    let lines = client.read_to_end();
    assert_eq!(
        lines.len(),
        4,
        "three error lines plus the trailer: {lines:#?}"
    );
    for (i, line) in lines[..3].iter().enumerate() {
        match parse_output_line(line).unwrap() {
            OutputLine::Error { line: l, id, error } => {
                assert_eq!(l, i + 1, "error lines keep input order");
                assert_eq!(id.as_deref(), Some(format!("d-{i}").as_str()));
                assert!(error.contains("no healthy shard"), "{error}");
            }
            other => panic!("expected error line, got {other:?}"),
        }
    }
    assert!(lines[3].contains("\"records\": 3"), "{}", lines[3]);
    assert!(lines[3].contains("\"errors\": 3"), "{}", lines[3]);

    let report = front.stop();
    assert_eq!(report.failed, 3);
}

#[test]
fn sticky_mode_pins_a_connection_to_one_shard() {
    let a = start_shard(Duration::from_millis(1), 1, "a");
    let b = start_shard(Duration::from_millis(1), 1, "b");
    let shards = vec![
        ShardState::new(0, a.addr.to_string()),
        ShardState::new(1, b.addr.to_string()),
    ];
    let config = RouteConfig {
        sticky: true,
        ..quiet_route_config()
    };
    let front = start_router(shards, config);

    let ids: Vec<String> = (0..6).map(|i| format!("s-{i}")).collect();
    let lines = run_batch(front.addr, &ids);
    assert_ordered_batch(&lines, &ids);
    front.stop();

    let mut served = [a.stop().records, b.stop().records];
    served.sort_unstable();
    assert_eq!(
        served,
        [0, 6],
        "sticky mode keeps the whole connection on one shard"
    );
}

#[test]
fn health_probe_on_the_ndjson_endpoint_reports_the_fleet() {
    let a = start_shard(Duration::from_millis(1), 1, "a");
    let b = start_shard(Duration::from_millis(1), 1, "b");
    let shards = vec![
        ShardState::new(0, a.addr.to_string()),
        ShardState::new(1, b.addr.to_string()),
    ];
    let front = start_router(shards, quiet_route_config());

    let mut stream = TcpStream::connect(front.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("\"role\": \"router\""), "{response}");
    assert!(response.contains("\"shards\": 2"), "{response}");

    let report = front.stop();
    assert_eq!(report.health_probes, 1, "a probe is not a connection");
    assert_eq!(report.connections, 0);
    a.stop();
    b.stop();
}
