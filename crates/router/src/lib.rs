#![warn(missing_docs)]

//! `busytime-router` — a cross-process shard router: N `busytime-cli
//! listen` backends served as one endpoint.
//!
//! One `listen` process caps its solve parallelism at its process-wide
//! executor budget. To scale past one process (or one machine), run
//! several and put this router in front: it speaks exactly the
//! listener's wire protocol on the front side — NDJSON records in, one
//! response line per record **in input order**, one
//! [`BatchSummary`](busytime_server::BatchSummary) trailer per
//! connection, `GET /healthz` on the same port — while fanning the
//! records out across the fleet on the back side and merging the
//! shards' trailers into one (counts and rates add, percentiles
//! recombine solved-weighted, wall clock takes the max).
//!
//! * [`shard`] — [`ShardState`]: one backend's address, health
//!   (probe-quorum demotion, instant demotion on broken pipes, revival
//!   on a successful probe or a spawn-mode restart) and the load score
//!   [`pick`] balances on.
//! * [`router`] — [`Router`]: the accept loop, the background prober,
//!   and the per-connection routed session: per-record fan-out (or
//!   whole-connection pinning with [`RouteConfig::sticky`]), an in-order
//!   fan-in reorder buffer, orphan retry when a shard dies mid-batch,
//!   and the merged summary trailer.
//! * [`spawn`] — [`ShardFleet`]: `--spawn N` mode, where the router
//!   launches and supervises local shard children (banner-based address
//!   discovery, restart with backoff, whole-tree SIGINT drain).
//!
//! The CLI front-end is `busytime-cli route`:
//!
//! ```text
//! $ busytime-cli route --tcp 127.0.0.1:7070 --spawn 2 --spawn-workers 4
//! routing on tcp://127.0.0.1:7070 (2 shards, per-record)
//! ```

pub mod router;
pub mod shard;
pub mod spawn;

pub use router::{RouteConfig, RouteReport, Router};
pub use shard::{pick, ShardState, UNHEALTHY_AFTER};
pub use spawn::ShardFleet;
