//! Spawn mode: the router launches and supervises its own local shard
//! fleet (`busytime-cli route --spawn N`).
//!
//! Each shard slot gets a monitor thread that spawns the child process,
//! forwards its stderr line by line under a `[shard-k]` prefix, learns
//! the shard's ephemeral address from its `listening on tcp://…` banner,
//! and restarts the child with exponential backoff when it dies. On
//! shutdown the whole tree drains: every child gets a SIGINT (the same
//! graceful-drain signal an operator would send), and
//! [`ShardFleet::shutdown_and_wait`] joins every monitor after its child
//! has exited.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use busytime_core::cancel::CancelToken;

use crate::shard::{lock, ShardState};

/// Initial restart backoff after a shard child dies.
const BACKOFF_FLOOR: Duration = Duration::from_millis(200);
/// Backoff ceiling: a shard that keeps crashing retries this often.
const BACKOFF_CEIL: Duration = Duration::from_secs(5);
/// A child that survived this long resets the backoff — it was working,
/// whatever killed it was not a crash loop.
const BACKOFF_RESET_AFTER: Duration = Duration::from_secs(10);

/// A supervised fleet of local shard processes, one per
/// [`ShardState`] slot handed to [`ShardFleet::launch`].
pub struct ShardFleet {
    monitors: Vec<std::thread::JoinHandle<()>>,
    children: Vec<Arc<Mutex<Option<Child>>>>,
    shards: Vec<Arc<ShardState>>,
    shutdown: CancelToken,
}

impl ShardFleet {
    /// Spawns one supervised child per shard. `build` produces the
    /// command for a given shard index (it is called again on every
    /// restart); the fleet nulls the child's stdin/stdout and pipes its
    /// stderr for banner detection and prefixed forwarding. Cancelling
    /// `shutdown` stops all restarts and drains the fleet.
    pub fn launch(
        shards: Vec<Arc<ShardState>>,
        shutdown: CancelToken,
        build: impl Fn(usize) -> Command + Send + Sync + 'static,
    ) -> ShardFleet {
        let build = Arc::new(build);
        let mut monitors = Vec::with_capacity(shards.len());
        let mut children = Vec::with_capacity(shards.len());
        for shard in &shards {
            let slot: Arc<Mutex<Option<Child>>> = Arc::new(Mutex::new(None));
            children.push(Arc::clone(&slot));
            let shard = Arc::clone(shard);
            let shutdown = shutdown.clone();
            let build = Arc::clone(&build);
            monitors.push(std::thread::spawn(move || {
                monitor_shard(&shard, &shutdown, &*build, &slot);
            }));
        }
        ShardFleet {
            monitors,
            children,
            shards,
            shutdown,
        }
    }

    /// Blocks until every shard has reported an address (its child's
    /// banner arrived) or `timeout` elapses.
    pub fn wait_ready(&self, timeout: Duration) -> std::io::Result<()> {
        let deadline = Instant::now() + timeout;
        loop {
            if self.shards.iter().all(|s| !s.addr().is_empty()) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                let missing: Vec<String> = self
                    .shards
                    .iter()
                    .filter(|s| s.addr().is_empty())
                    .map(|s| format!("shard-{}", s.index))
                    .collect();
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!(
                        "{} did not report an address within {timeout:?}",
                        missing.join(", ")
                    ),
                ));
            }
            if self.shutdown.is_cancelled() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    "shutdown before the fleet was ready",
                ));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Graceful whole-tree drain: cancels the shutdown token (stopping
    /// restarts), asks every live child to stop (SIGINT on unix — the
    /// same drain an operator's Ctrl-C delivers — a hard kill
    /// elsewhere), and joins every monitor after its child has exited.
    pub fn shutdown_and_wait(self) {
        self.shutdown.cancel();
        for slot in &self.children {
            if let Some(child) = lock(slot).as_mut() {
                request_stop(child);
            }
        }
        for monitor in self.monitors {
            let _ = monitor.join();
        }
    }
}

fn monitor_shard(
    shard: &ShardState,
    shutdown: &CancelToken,
    build: &(dyn Fn(usize) -> Command + Send + Sync),
    slot: &Mutex<Option<Child>>,
) {
    let index = shard.index;
    let mut backoff = BACKOFF_FLOOR;
    while !shutdown.is_cancelled() {
        let born = Instant::now();
        let mut command = build(index);
        command
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        let mut child = match command.spawn() {
            Ok(child) => child,
            Err(e) => {
                eprintln!("[shard-{index}] spawn failed: {e}");
                if !sleep_cancellably(shutdown, backoff) {
                    return;
                }
                backoff = (backoff * 2).min(BACKOFF_CEIL);
                continue;
            }
        };
        let stderr = child.stderr.take();
        *lock(slot) = Some(child);
        // a shutdown signalled between the loop check and the store above
        // would miss this child: re-check now that it is visible
        if shutdown.is_cancelled() {
            if let Some(mut child) = lock(slot).take() {
                request_stop(&mut child);
                let _ = child.wait();
            }
            return;
        }
        if let Some(stderr) = stderr {
            for line in BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(addr) = parse_banner(&line) {
                    shard.set_addr(&addr);
                }
                eprintln!("[shard-{index}] {line}");
            }
        }
        // stderr EOF: the child exited (or is exiting); reap it
        let status = lock(slot).take().and_then(|mut child| child.wait().ok());
        shard.mark_broken();
        if shutdown.is_cancelled() {
            return;
        }
        let verdict = status
            .map(|s| s.to_string())
            .unwrap_or_else(|| String::from("unknown status"));
        eprintln!("[shard-{index}] exited ({verdict}); restarting in {backoff:?}");
        if born.elapsed() >= BACKOFF_RESET_AFTER {
            backoff = BACKOFF_FLOOR;
        }
        if !sleep_cancellably(shutdown, backoff) {
            return;
        }
        backoff = (backoff * 2).min(BACKOFF_CEIL);
    }
}

/// Sleeps `total` in short slices; `false` means shutdown fired first.
fn sleep_cancellably(shutdown: &CancelToken, total: Duration) -> bool {
    let mut slept = Duration::ZERO;
    while slept < total {
        if shutdown.is_cancelled() {
            return false;
        }
        let slice = Duration::from_millis(25).min(total - slept);
        std::thread::sleep(slice);
        slept += slice;
    }
    !shutdown.is_cancelled()
}

/// Pulls the bound address out of a shard's startup banner
/// (`listening on tcp://127.0.0.1:41373 (2 workers process-wide)`).
fn parse_banner(line: &str) -> Option<String> {
    let rest = line.split_once("listening on tcp://")?.1;
    let addr: String = rest
        .chars()
        .take_while(|c| !c.is_whitespace() && *c != '(')
        .collect();
    if addr.is_empty() {
        None
    } else {
        Some(addr)
    }
}

/// Asks a child to stop: SIGINT on unix (the graceful drain path every
/// listener already implements for Ctrl-C), a hard kill elsewhere.
fn request_stop(child: &mut Child) {
    #[cfg(unix)]
    {
        // the libc std already links against; no crate dependency needed
        extern "C" {
            fn kill(pid: i32, sig: i32) -> i32;
        }
        const SIGINT: i32 = 2;
        unsafe {
            kill(child.id() as i32, SIGINT);
        }
    }
    #[cfg(not(unix))]
    {
        let _ = child.kill();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banner_parsing_extracts_the_bound_address() {
        assert_eq!(
            parse_banner("listening on tcp://127.0.0.1:41373 (2 workers process-wide)"),
            Some("127.0.0.1:41373".to_string())
        );
        assert_eq!(
            parse_banner("listening on tcp://[::1]:9000 (1 workers process-wide)"),
            Some("[::1]:9000".to_string())
        );
        assert_eq!(parse_banner("conn 1 (peer): 4 records"), None);
        assert_eq!(
            parse_banner("listening on unix:///tmp/x.sock (2 workers)"),
            None
        );
    }

    #[cfg(unix)]
    #[test]
    fn fleet_spawns_restarts_and_drains() {
        // a fake shard: prints a listener-shaped banner with a unique
        // port, then sleeps until signalled. `exec` matters: the process
        // must BE the sleep (not its parent) so SIGINT both kills it and
        // closes the monitored stderr pipe.
        let shards = vec![ShardState::new(0, ""), ShardState::new(1, "")];
        let shutdown = CancelToken::never();
        let fleet = ShardFleet::launch(shards.clone(), shutdown.clone(), |index| {
            let mut command = Command::new("sh");
            command.arg("-c").arg(format!(
                "echo 'listening on tcp://127.0.0.1:{} (1 workers process-wide)' >&2; exec sleep 30",
                40000 + index
            ));
            command
        });
        fleet
            .wait_ready(Duration::from_secs(10))
            .expect("both banners arrive");
        assert_eq!(shards[0].addr(), "127.0.0.1:40000");
        assert_eq!(shards[1].addr(), "127.0.0.1:40001");
        fleet.shutdown_and_wait();
    }

    #[cfg(unix)]
    #[test]
    fn fleet_restarts_a_dead_shard() {
        // first run: banner, then exit immediately (the monitor must reap
        // it and mark the shard broken). Restarted run: banner, then stay
        // alive — the shard must come back healthy and remain so.
        let flag = std::env::temp_dir().join(format!(
            "busytime-fleet-restart-{}.flag",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&flag);
        let script = format!(
            "echo 'listening on tcp://127.0.0.1:45678 (1 workers process-wide)' >&2; \
             if [ -e '{f}' ]; then exec sleep 30; else touch '{f}'; fi",
            f = flag.display()
        );
        let shards = vec![ShardState::new(0, "")];
        let shutdown = CancelToken::never();
        let fleet = ShardFleet::launch(shards.clone(), shutdown.clone(), move |_| {
            let mut command = Command::new("sh");
            command.arg("-c").arg(script.clone());
            command
        });
        fleet
            .wait_ready(Duration::from_secs(10))
            .expect("first banner");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut saw_broken = false;
        let mut revived = false;
        while Instant::now() < deadline {
            if !shards[0].is_healthy() {
                saw_broken = true;
            } else if saw_broken {
                revived = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(saw_broken, "a dead child demotes its shard");
        assert!(revived, "a restarted child's banner revives its shard");
        fleet.shutdown_and_wait();
        let _ = std::fs::remove_file(&flag);
    }
}
