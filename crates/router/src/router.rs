//! The router front-end: accept client batches on one endpoint, fan
//! records out across the shard fleet, fan responses back **in input
//! order**, and merge the shards' summary trailers into one.
//!
//! The wire contract is exactly the listener's: NDJSON in, one response
//! line per record in input order, one [`BatchSummary`] trailer line per
//! connection, `GET /healthz` answered on the same port (sniffed on
//! NDJSON endpoints, routed in `--http` mode). A client cannot tell a
//! router from a single `listen` process — except that the trailer's
//! `workers` field now sums the fleet.
//!
//! Ordering is restored per connection by a sequence number assigned at
//! dispatch: shard responses are restamped with the client's original
//! `line` via [`reline_output`] (no re-parse, no re-serialize) and held
//! in a small reorder buffer until every earlier record has answered.
//!
//! Failure model: a broken shard write or a shard that dies mid-batch
//! orphans its unanswered records; orphans are re-dispatched to a healthy
//! shard with their original `line` stamps, so the client still sees every
//! record answered exactly once, in order. Only when no healthy shard
//! remains does a record answer as a structured error line.
//!
//! The connection front-end is a readiness loop over the [`polling`]
//! epoll shim: one thread owns the acceptor, every not-yet-classified
//! connection, capacity rejections, and the NDJSON-endpoint `GET
//! /healthz` probes — none of which cost a thread. A connection is
//! sniffed nonblockingly; only once it shows real batch traffic is it
//! switched back to blocking mode and handed a session thread running
//! the fan-out/fan-in engine below (whose shard reader threads are
//! scoped to the batch and exit with it).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
#[cfg(unix)]
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use busytime_core::cancel::CancelToken;
use busytime_core::solve::REPORT_SCHEMA_VERSION;
use busytime_instances::json::{self, Value};
use busytime_server::http::{
    read_http_body, read_http_head, write_http_response, HttpError, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
use busytime_server::protocol::error_line;
use busytime_server::{reline_output, BatchSummary, ListenMode};
use polling::{Event, Interest, Poller, RawFd};

use crate::shard::{connect, lock, pick, ShardState};

/// Router configuration. [`Default`] is ready for production use.
#[derive(Clone, Debug)]
pub struct RouteConfig {
    /// Max concurrent client connections (`0` = 64). Beyond it, new
    /// connections get a polite structured rejection.
    pub max_conns: usize,
    /// Pin each client connection to one shard instead of balancing
    /// per record. Sticky mode keeps a shard's feature cache hot for a
    /// client that re-sends similar instances; per-record mode (default)
    /// spreads one big batch across the whole fleet.
    pub sticky: bool,
    /// How often the background prober refreshes every shard's
    /// `/healthz` snapshot.
    pub probe_interval: Duration,
    /// Per-probe budget (connect + request + response).
    pub probe_timeout: Duration,
    /// Budget for opening a shard connection on the dispatch path.
    pub connect_timeout: Duration,
    /// Socket read timeout — the cancellation poll cadence for client and
    /// shard readers, not a client deadline.
    pub read_timeout: Duration,
    /// Socket write timeout towards clients and shards; a peer that stops
    /// reading for this long is treated as gone.
    pub write_timeout: Duration,
    /// How many times an orphaned record may chase a new shard after the
    /// client's batch is fully read before answering as an error.
    pub retry_rounds: usize,
    /// Suppress per-connection stderr log lines.
    pub quiet: bool,
}

impl Default for RouteConfig {
    fn default() -> Self {
        RouteConfig {
            max_conns: 0,
            sticky: false,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(60),
            retry_rounds: 3,
            quiet: false,
        }
    }
}

/// Aggregate statistics over a router's lifetime, returned by
/// [`Router::run`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RouteReport {
    /// Client connections served (health probes not included).
    pub connections: usize,
    /// Connections rejected at capacity.
    pub rejected: usize,
    /// Records dispatched to shards.
    pub records: usize,
    /// Records re-dispatched after a shard broke under them.
    pub retried: usize,
    /// Records answered with a router-side error because no healthy shard
    /// remained.
    pub failed: usize,
    /// One-shot `GET /healthz` probes answered on the NDJSON endpoint.
    pub health_probes: usize,
}

impl std::fmt::Display for RouteReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "router: {} connections ({} rejected) | {} records routed ({} retried, {} failed)",
            self.connections, self.rejected, self.records, self.retried, self.failed,
        )?;
        if self.health_probes > 0 {
            write!(f, " | health probes: {}", self.health_probes)?;
        }
        Ok(())
    }
}

/// One accepted client connection, abstracted over the socket family.
enum RConn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl RConn {
    fn try_clone(&self) -> std::io::Result<RConn> {
        Ok(match self {
            RConn::Tcp(s) => RConn::Tcp(s.try_clone()?),
            #[cfg(unix)]
            RConn::Unix(s) => RConn::Unix(s.try_clone()?),
        })
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        // accepted sockets do not inherit the acceptor's non-blocking
        // flag on Linux — it must be set per connection
        match self {
            RConn::Tcp(s) => s.set_nonblocking(true),
            #[cfg(unix)]
            RConn::Unix(s) => s.set_nonblocking(true),
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        match self {
            RConn::Tcp(s) => s.as_raw_fd(),
            RConn::Unix(s) => s.as_raw_fd(),
        }
    }

    #[cfg(not(unix))]
    fn raw_fd(&self) -> RawFd {
        // the poller itself is Unsupported off Unix; this is never polled
        -1
    }

    fn prepare(&self, read_timeout: Duration, write_timeout: Duration) -> std::io::Result<()> {
        match self {
            RConn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(read_timeout))?;
                s.set_write_timeout(Some(write_timeout))
            }
            #[cfg(unix)]
            RConn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(read_timeout))?;
                s.set_write_timeout(Some(write_timeout))
            }
        }
    }

    /// Half-close: the client sees EOF after the merged trailer while its
    /// own pending writes still drain.
    fn shutdown_write(&self) {
        let _ = match self {
            RConn::Tcp(s) => s.shutdown(Shutdown::Write),
            #[cfg(unix)]
            RConn::Unix(s) => s.shutdown(Shutdown::Write),
        };
    }

    fn peer(&self) -> String {
        match self {
            RConn::Tcp(s) => s
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| String::from("tcp-peer")),
            #[cfg(unix)]
            RConn::Unix(_) => String::from("unix-peer"),
        }
    }
}

impl Read for RConn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            RConn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            RConn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for RConn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            RConn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            RConn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            RConn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            RConn::Unix(s) => s.flush(),
        }
    }
}

/// The bound front socket, abstracted over the socket family.
enum RAcceptor {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener, PathBuf),
}

impl RAcceptor {
    fn accept(&self) -> std::io::Result<RConn> {
        match self {
            RAcceptor::Tcp(l) => l.accept().map(|(s, _)| RConn::Tcp(s)),
            #[cfg(unix)]
            RAcceptor::Unix(l, _) => l.accept().map(|(s, _)| RConn::Unix(s)),
        }
    }

    #[cfg(unix)]
    fn raw_fd(&self) -> RawFd {
        use std::os::fd::AsRawFd;
        match self {
            RAcceptor::Tcp(l) => l.as_raw_fd(),
            RAcceptor::Unix(l, _) => l.as_raw_fd(),
        }
    }

    #[cfg(not(unix))]
    fn raw_fd(&self) -> RawFd {
        -1
    }
}

/// Everything a connection thread needs, bundled so spawning stays tidy.
struct RouteShared {
    shards: Vec<Arc<ShardState>>,
    config: RouteConfig,
    shutdown: CancelToken,
    http: bool,
    active: AtomicUsize,
    report: Mutex<RouteReport>,
    started: Instant,
}

/// Poller key of the accept socket; client connections start at
/// [`FIRST_CONN_KEY`].
const KEY_ACCEPT: usize = 1;
const FIRST_CONN_KEY: usize = 2;

/// How long a flushed rejection or health-probe response lingers
/// half-closed waiting for the peer's FIN before the socket is dropped,
/// so the response survives in flight.
const FRONT_LINGER: Duration = Duration::from_millis(150);

/// Poll-wait granularity of the front loop — the shutdown-token and
/// linger-deadline check cadence.
const FRONT_POLL: Duration = Duration::from_millis(25);

/// Bound on rejections concurrently flushing in the front loop. A
/// rejection costs one poller slot and a ~100-byte outbox (no thread);
/// past this a connect flood is shed by dropping connections outright.
const REJECT_BACKLOG_CAP: usize = 1024;

/// How long a shard reader keeps draining responses after shutdown is
/// signalled — in-flight solves finish cooperatively on the shard, and
/// cutting their answers off here would orphan records for no reason.
const SHARD_DRAIN_BUDGET: Duration = Duration::from_secs(10);

/// The shard-routing front-end; see the [module docs](self) for the wire
/// and failure contracts.
pub struct Router {
    acceptor: RAcceptor,
    http: bool,
    shards: Vec<Arc<ShardState>>,
    config: RouteConfig,
    shutdown: CancelToken,
}

impl Router {
    /// Binds `mode`'s endpoint in front of `shards`. The socket is open
    /// once this returns; clients are served once [`Router::run`] starts.
    pub fn bind(
        mode: &ListenMode,
        shards: Vec<Arc<ShardState>>,
        config: RouteConfig,
    ) -> std::io::Result<Router> {
        if shards.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a router needs at least one shard",
            ));
        }
        let (acceptor, http) = match mode {
            ListenMode::Tcp(addr) => (RAcceptor::Tcp(bind_tcp(addr)?), false),
            ListenMode::Http(addr) => (RAcceptor::Tcp(bind_tcp(addr)?), true),
            #[cfg(unix)]
            ListenMode::Unix(path) => {
                let listener = UnixListener::bind(path).map_err(|e| {
                    std::io::Error::new(
                        e.kind(),
                        format!(
                            "{}: {e} (a stale socket file from an unclean \
                             shutdown must be removed first)",
                            path.display()
                        ),
                    )
                })?;
                listener.set_nonblocking(true)?;
                (RAcceptor::Unix(listener, path.clone()), false)
            }
            #[cfg(not(unix))]
            ListenMode::Unix(_) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::Unsupported,
                    "unix-domain sockets are not available on this platform",
                ))
            }
        };
        Ok(Router {
            acceptor,
            http,
            shards,
            config,
            shutdown: CancelToken::never(),
        })
    }

    /// The actually-bound TCP address (resolves `:0` ephemeral ports);
    /// `None` for Unix-domain endpoints.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.acceptor {
            RAcceptor::Tcp(l) => l.local_addr().ok(),
            #[cfg(unix)]
            RAcceptor::Unix(..) => None,
        }
    }

    /// A URL-ish description of the bound endpoint.
    pub fn endpoint(&self) -> String {
        match &self.acceptor {
            RAcceptor::Tcp(l) => {
                let scheme = if self.http { "http" } else { "tcp" };
                match l.local_addr() {
                    Ok(addr) => format!("{scheme}://{addr}"),
                    Err(_) => format!("{scheme}://?"),
                }
            }
            #[cfg(unix)]
            RAcceptor::Unix(_, path) => format!("unix://{}", path.display()),
        }
    }

    /// The shutdown token: cancel it (from a signal handler thread, a
    /// supervisor, a test) to drain and stop the router.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Accepts and routes connections until the shutdown token fires,
    /// then drains every live connection and returns the aggregate
    /// report. The caller's thread runs the readiness front loop; a
    /// background prober keeps every shard's health snapshot fresh for
    /// the whole run.
    pub fn run(self) -> std::io::Result<RouteReport> {
        let max_conns = if self.config.max_conns == 0 {
            64
        } else {
            self.config.max_conns
        };
        let shared = Arc::new(RouteShared {
            shards: self.shards,
            config: self.config,
            shutdown: self.shutdown,
            http: self.http,
            active: AtomicUsize::new(0),
            report: Mutex::new(RouteReport::default()),
            started: Instant::now(),
        });

        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || run_prober(&shared))
        };

        let poller = Poller::new()?;
        poller.add(self.acceptor.raw_fd(), KEY_ACCEPT, Interest::READ)?;
        let mut front = FrontEnd {
            poller,
            acceptor: &self.acceptor,
            shared: &shared,
            max_conns,
            conns: HashMap::new(),
            next_key: FIRST_CONN_KEY,
            conn_id: 0,
            rejects_open: 0,
            handles: Vec::new(),
            draining: false,
            fatal: None,
        };
        front.run();
        let FrontEnd { handles, fatal, .. } = front;

        shared.shutdown.cancel();
        for handle in handles {
            let _ = handle.join();
        }
        let _ = prober.join();
        #[cfg(unix)]
        if let RAcceptor::Unix(_, path) = &self.acceptor {
            let _ = std::fs::remove_file(path);
        }
        match fatal {
            Some(e) => Err(e),
            None => Ok(lock(&shared.report).clone()),
        }
    }
}

/// Decrements the active-connection count when its thread ends,
/// panicking or not.
struct ActiveSlot {
    shared: Arc<RouteShared>,
}

impl Drop for ActiveSlot {
    fn drop(&mut self) {
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn bind_tcp(addr: &str) -> std::io::Result<TcpListener> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| std::io::Error::new(e.kind(), format!("{addr}: {e}")))?;
    listener.set_nonblocking(true)?;
    Ok(listener)
}

/// The background health loop: one `/healthz` round trip per shard per
/// interval. A spawned shard that has not reported an address yet is
/// skipped without charging its failure streak — not-born-yet is not
/// unhealthy.
fn run_prober(shared: &RouteShared) {
    while !shared.shutdown.is_cancelled() {
        for shard in &shared.shards {
            if shared.shutdown.is_cancelled() {
                return;
            }
            if shard.addr().is_empty() {
                continue;
            }
            let _ = shard.check(shared.config.probe_timeout);
        }
        let mut slept = Duration::ZERO;
        while slept < shared.config.probe_interval && !shared.shutdown.is_cancelled() {
            let slice = Duration::from_millis(25).min(shared.config.probe_interval - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// What a front-loop connection is tallied as when it closes in the
/// front loop (connections that are handed off tally in their session
/// thread instead).
#[derive(Clone, Copy, PartialEq, Eq)]
enum FrontTally {
    /// A real client, still being sniffed.
    Client,
    /// A `GET /healthz` probe on the NDJSON endpoint, answered inline.
    Probe,
    /// An at-capacity rejection flushing its structured error.
    Reject,
}

/// One connection owned by the front loop: either still being sniffed
/// (waiting for its first bytes) or flushing a threadless response
/// (health probe / capacity rejection) before a lingered close.
struct FrontConn {
    conn: RConn,
    conn_id: usize,
    peer: String,
    tally: FrontTally,
    /// Bytes read while sniffing; prepended to the session's reader at
    /// hand-off so nothing is lost.
    sniffed: Vec<u8>,
    /// Response bytes to flush before closing (probe / rejection).
    outbox: Vec<u8>,
    sent: usize,
    /// `true` once the connection is in flush-then-close mode.
    flushing: bool,
    half_closed: bool,
    peer_eof: bool,
    linger_until: Option<Instant>,
    interest: (bool, bool),
}

/// The readiness front loop: acceptor, sniffing connections, threadless
/// rejections and probes. Runs on the [`Router::run`] caller's thread.
struct FrontEnd<'a> {
    poller: Poller,
    acceptor: &'a RAcceptor,
    shared: &'a Arc<RouteShared>,
    max_conns: usize,
    conns: HashMap<usize, FrontConn>,
    next_key: usize,
    conn_id: usize,
    rejects_open: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
    draining: bool,
    fatal: Option<std::io::Error>,
}

impl FrontEnd<'_> {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shared.shutdown.is_cancelled() && !self.draining {
                self.draining = true;
                let _ = self.poller.delete(self.acceptor.raw_fd());
                // sniffing connections hand off so their sessions can
                // write drain trailers; flushers close after one last try
                let keys: Vec<usize> = self.conns.keys().copied().collect();
                for key in keys {
                    self.service(key);
                }
            }
            if self.draining && self.conns.is_empty() {
                break;
            }
            let mut timeout = FRONT_POLL;
            let now = Instant::now();
            for state in self.conns.values() {
                if let Some(when) = state.linger_until {
                    let until = when.saturating_duration_since(now);
                    timeout = timeout.min(until.max(Duration::from_millis(1)));
                }
            }
            events.clear();
            match self.poller.wait(&mut events, Some(timeout)) {
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.fatal = Some(e);
                    self.shared.shutdown.cancel();
                    continue; // the drain branch above cleans up and exits
                }
            }
            let now = Instant::now();
            let expired: Vec<usize> = self
                .conns
                .iter()
                .filter(|(_, s)| s.linger_until.is_some_and(|when| now >= when))
                .map(|(key, _)| *key)
                .collect();
            for key in expired {
                self.close(key);
            }
            let keys: Vec<usize> = events.iter().map(|event| event.key).collect();
            for key in keys {
                match key {
                    KEY_ACCEPT => self.accept_some(),
                    key => self.service(key),
                }
            }
        }
    }

    fn accept_some(&mut self) {
        loop {
            match self.acceptor.accept() {
                Ok(conn) => {
                    if conn.set_nonblocking().is_err() {
                        continue; // broken before it said anything
                    }
                    if self.shared.active.load(Ordering::SeqCst) >= self.max_conns {
                        lock(&self.shared.report).rejected += 1;
                        if self.rejects_open >= REJECT_BACKLOG_CAP {
                            continue; // flood: shed without the courtesy
                        }
                        let outbox = rejection_bytes(self.shared.http, self.max_conns);
                        self.register(conn, FrontTally::Reject, outbox);
                        continue;
                    }
                    self.conn_id += 1;
                    self.shared.active.fetch_add(1, Ordering::SeqCst);
                    self.register(conn, FrontTally::Client, Vec::new());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                Err(e) => {
                    self.fatal = Some(e);
                    self.shared.shutdown.cancel();
                    break;
                }
            }
        }
    }

    fn register(&mut self, conn: RConn, tally: FrontTally, outbox: Vec<u8>) {
        let key = self.next_key;
        self.next_key += 1;
        let flushing = tally != FrontTally::Client;
        let interest = if flushing {
            (false, true)
        } else {
            (true, false)
        };
        if self
            .poller
            .add(conn.raw_fd(), key, interest_of(interest))
            .is_err()
        {
            if tally != FrontTally::Reject {
                self.shared.active.fetch_sub(1, Ordering::SeqCst);
            }
            return;
        }
        if tally == FrontTally::Reject {
            self.rejects_open += 1;
        }
        let peer = conn.peer();
        self.conns.insert(
            key,
            FrontConn {
                conn,
                conn_id: self.conn_id,
                peer,
                tally,
                sniffed: Vec::new(),
                outbox,
                sent: 0,
                flushing,
                half_closed: false,
                peer_eof: false,
                linger_until: None,
                interest,
            },
        );
        // service immediately: a rejection usually flushes in one write,
        // and a fast client may already have bytes waiting
        self.service(key);
    }

    fn service(&mut self, key: usize) {
        let Some(state) = self.conns.get_mut(&key) else {
            return;
        };
        if !state.flushing {
            // HTTP mode needs no sniff: the only front-loop job is
            // noticing the first readable byte and handing off
            if self.shared.http {
                return self.hand_off(key);
            }
            let mut eof = false;
            let mut scratch = [0u8; 512];
            loop {
                match state.conn.read(&mut scratch) {
                    Ok(0) => {
                        eof = true;
                        break;
                    }
                    Ok(n) => {
                        state.sniffed.extend_from_slice(&scratch[..n]);
                        if state.sniffed.len() >= 4 || state.sniffed.contains(&b'\n') {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return self.close_aborted(key, &e),
                }
            }
            // four bytes tell "GET " apart from NDJSON; EOF and drain
            // decide with whatever arrived
            let decided =
                state.sniffed.len() >= 4 || state.sniffed.contains(&b'\n') || eof || self.draining;
            if !decided {
                return;
            }
            if !state.sniffed.starts_with(b"GET ") {
                return self.hand_off(key);
            }
            let body = router_healthz(self.shared);
            let _ = write_http_response(
                &mut state.outbox,
                "200 OK",
                "application/json",
                body.as_bytes(),
                false,
            );
            state.tally = FrontTally::Probe;
            state.flushing = true;
            state.peer_eof = eof;
        }
        self.flush_and_linger(key);
    }

    /// Drives a flush-then-close connection: write the outbox, half-close,
    /// linger-drain the peer's unread bytes until its FIN (or the linger
    /// deadline), then close.
    fn flush_and_linger(&mut self, key: usize) {
        let Some(state) = self.conns.get_mut(&key) else {
            return;
        };
        if !state.half_closed {
            match flush_front_outbox(state) {
                Err(_) => return self.close(key),
                Ok(false) => {} // WouldBlock: wait for writability
                Ok(true) => {
                    state.conn.shutdown_write();
                    state.half_closed = true;
                    state.linger_until = Some(Instant::now() + FRONT_LINGER);
                }
            }
        }
        if state.half_closed {
            let mut scratch = [0u8; 4096];
            loop {
                match state.conn.read(&mut scratch) {
                    Ok(0) => {
                        state.peer_eof = true;
                        break;
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        state.peer_eof = true;
                        break;
                    }
                }
            }
            let expired = state
                .linger_until
                .is_some_and(|when| Instant::now() >= when);
            if state.peer_eof || expired || self.draining {
                return self.close(key);
            }
        }
        let want = (
            state.half_closed,
            !state.half_closed && state.sent < state.outbox.len(),
        );
        if want != state.interest
            && self
                .poller
                .modify(state.conn.raw_fd(), key, interest_of(want))
                .is_ok()
        {
            state.interest = want;
        }
    }

    /// Deregisters a classified-as-real connection and gives it a session
    /// thread, with the sniffed bytes prepended to its reader.
    fn hand_off(&mut self, key: usize) {
        let Some(state) = self.conns.remove(&key) else {
            return;
        };
        let _ = self.poller.delete(state.conn.raw_fd());
        let shared = Arc::clone(self.shared);
        let (conn, sniffed, conn_id) = (state.conn, state.sniffed, state.conn_id);
        self.handles.push(std::thread::spawn(move || {
            let _slot = ActiveSlot {
                shared: Arc::clone(&shared),
            };
            handle_connection(conn, sniffed, conn_id, &shared);
        }));
        if self.handles.len() >= 2 * self.max_conns {
            self.handles.retain(|h| !h.is_finished());
        }
    }

    /// A sniffing client broke before classification: close and account
    /// for it here, since no session thread will.
    fn close_aborted(&mut self, key: usize, e: &std::io::Error) {
        let Some(state) = self.conns.remove(&key) else {
            return;
        };
        let _ = self.poller.delete(state.conn.raw_fd());
        lock(&self.shared.report).connections += 1;
        log_unless_quiet(
            self.shared,
            format!("conn {} ({}): aborted: {e}", state.conn_id, state.peer),
        );
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
    }

    fn close(&mut self, key: usize) {
        let Some(state) = self.conns.remove(&key) else {
            return;
        };
        let _ = self.poller.delete(state.conn.raw_fd());
        match state.tally {
            FrontTally::Reject => {
                self.rejects_open -= 1;
                return; // rejected was tallied at accept; no active slot
            }
            FrontTally::Probe => lock(&self.shared.report).health_probes += 1,
            FrontTally::Client => {}
        }
        self.shared.active.fetch_sub(1, Ordering::SeqCst);
    }
}

fn interest_of((read, write): (bool, bool)) -> Interest {
    match (read, write) {
        (true, true) => Interest::BOTH,
        (true, false) => Interest::READ,
        (false, true) => Interest::WRITE,
        (false, false) => Interest::NONE,
    }
}

/// The prefilled outbox of an at-capacity rejection.
fn rejection_bytes(http: bool, max_conns: usize) -> Vec<u8> {
    let message = format!("router at capacity ({max_conns} connections); retry later");
    let mut out = Vec::new();
    if http {
        let body = format!("{{\"error\": {message:?}}}\n");
        let _ = write_http_response(
            &mut out,
            "503 Service Unavailable",
            "application/json",
            body.as_bytes(),
            false,
        );
    } else {
        out.extend_from_slice(error_line(0, None, &message).as_bytes());
        out.push(b'\n');
    }
    out
}

/// Writes as much of the outbox as the socket takes right now.
/// `Ok(true)` = fully flushed, `Ok(false)` = the socket would block.
fn flush_front_outbox(state: &mut FrontConn) -> std::io::Result<bool> {
    while state.sent < state.outbox.len() {
        match state.conn.write(&state.outbox[state.sent..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => state.sent += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Briefly drains whatever the client was mid-sending before the socket
/// is dropped, so the close is a FIN and the response survives in flight.
fn drain_briefly<R: Read>(reader: &mut R) {
    let mut scratch = [0u8; 4096];
    for _ in 0..10 {
        match reader.read(&mut scratch) {
            Ok(0) | Err(_) => break,
            Ok(_) => continue,
        }
    }
}

/// One handed-off connection: restore blocking mode + socket timeouts,
/// then run the batch session with the front loop's sniffed bytes
/// prepended. Health probes never get here — the front loop answers them
/// inline.
fn handle_connection(conn: RConn, sniffed: Vec<u8>, conn_id: usize, shared: &RouteShared) {
    let peer = conn.peer();
    if conn
        .prepare(shared.config.read_timeout, shared.config.write_timeout)
        .is_err()
    {
        return;
    }
    let served = if shared.http {
        serve_http_route_conn(conn, sniffed, conn_id, &peer, shared)
    } else {
        serve_ndjson_route_conn(conn, sniffed, conn_id, &peer, shared)
    };
    lock(&shared.report).connections += 1;
    if let Err(e) = served {
        log_unless_quiet(shared, format!("conn {conn_id} ({peer}): aborted: {e}"));
    }
}

fn log_unless_quiet(shared: &RouteShared, line: String) {
    if !shared.config.quiet {
        eprintln!("{line}");
    }
}

/// One NDJSON connection: run one routed batch session (the front loop's
/// sniffed bytes first), write the merged trailer, half-close.
fn serve_ndjson_route_conn(
    conn: RConn,
    first: Vec<u8>,
    conn_id: usize,
    peer: &str,
    shared: &RouteShared,
) -> std::io::Result<()> {
    let reader = BufReader::new(conn.try_clone()?);
    let mut writer = BufWriter::new(conn);
    let mut input = std::io::Cursor::new(first).chain(reader);
    let stats = route_session(
        &mut input,
        &mut writer,
        &shared.shards,
        &shared.config,
        &shared.shutdown,
    );
    writer.flush()?;
    writer.get_ref().shutdown_write();
    drain_briefly(&mut input);
    absorb_session(shared, conn_id, peer, &stats);
    Ok(())
}

fn absorb_session(shared: &RouteShared, conn_id: usize, peer: &str, stats: &SessionStats) {
    {
        let mut report = lock(&shared.report);
        report.records += stats.records;
        report.retried += stats.retried;
        report.failed += stats.failed;
    }
    log_unless_quiet(
        shared,
        format!(
            "conn {conn_id} ({peer}): {} records routed ({} retried, {} failed) \
             across {} healthy shards",
            stats.records,
            stats.retried,
            stats.failed,
            shared.shards.iter().filter(|s| s.is_healthy()).count(),
        ),
    );
}

/// The router's own `/healthz` body: fleet-level status plus the summed
/// capacity picture from the latest shard snapshots.
fn router_healthz(shared: &RouteShared) -> String {
    let healthy = shared.shards.iter().filter(|s| s.is_healthy()).count();
    let status = if healthy == shared.shards.len() {
        "ok"
    } else if healthy > 0 {
        "degraded"
    } else {
        "down"
    };
    let (mut workers, mut busy, mut queue) = (0usize, 0usize, 0usize);
    for shard in &shared.shards {
        if let Some(snap) = shard.snapshot() {
            workers += snap.workers;
            busy += snap.busy_workers;
            queue += snap.queue_depth;
        }
    }
    format!(
        "{{\"schema_version\": {REPORT_SCHEMA_VERSION}, \"status\": \"{status}\", \
         \"role\": \"router\", \"shards\": {}, \"healthy_shards\": {healthy}, \
         \"workers\": {workers}, \"busy_workers\": {busy}, \"queue_depth\": {queue}, \
         \"active_connections\": {}, \"uptime_ms\": {}}}\n",
        shared.shards.len(),
        shared.active.load(Ordering::SeqCst),
        shared.started.elapsed().as_millis(),
    )
}

/// HTTP mode: `GET /healthz` answers fleet status, `POST /solve` routes
/// the body as one batch and returns the NDJSON responses + merged
/// trailer.
fn serve_http_route_conn(
    conn: RConn,
    first: Vec<u8>,
    conn_id: usize,
    peer: &str,
    shared: &RouteShared,
) -> std::io::Result<()> {
    let mut reader = std::io::Cursor::new(first).chain(BufReader::new(conn.try_clone()?));
    let mut writer = BufWriter::new(conn);
    loop {
        let request = match read_http_head(&mut reader, &shared.shutdown) {
            Ok(Some(request)) => request,
            Ok(None) => break,
            Err(HttpError::Malformed(reason)) => {
                let body = format!("{{\"error\": {reason:?}}}\n");
                write_http_response(
                    &mut writer,
                    "400 Bad Request",
                    "application/json",
                    body.as_bytes(),
                    false,
                )?;
                break;
            }
            Err(HttpError::Io(e)) => return Err(e),
        };
        let mut keep_alive = request.keep_alive && !shared.shutdown.is_cancelled();
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                match request.content_length {
                    None | Some(0) => {}
                    Some(length) if length <= MAX_HEAD_BYTES => {
                        match read_http_body(&mut reader, length, &shared.shutdown) {
                            Ok(Some(_)) => {}
                            Ok(None) => keep_alive = false,
                            Err(e) => return Err(e),
                        }
                    }
                    Some(_) => keep_alive = false,
                }
                let body = router_healthz(shared);
                write_http_response(
                    &mut writer,
                    "200 OK",
                    "application/json",
                    body.as_bytes(),
                    keep_alive,
                )?;
            }
            ("POST", "/solve") => {
                let Some(length) = request.content_length else {
                    write_http_response(
                        &mut writer,
                        "411 Length Required",
                        "application/json",
                        b"{\"error\": \"POST /solve needs a Content-Length body\"}\n",
                        false,
                    )?;
                    break;
                };
                if length > MAX_BODY_BYTES {
                    write_http_response(
                        &mut writer,
                        "413 Content Too Large",
                        "application/json",
                        b"{\"error\": \"batch body too large\"}\n",
                        false,
                    )?;
                    break;
                }
                let body = match read_http_body(&mut reader, length, &shared.shutdown)? {
                    Some(body) => body,
                    None => break, // shutdown or client gone mid-body
                };
                let mut out = Vec::new();
                let stats = route_session(
                    &mut body.as_slice(),
                    &mut out,
                    &shared.shards,
                    &shared.config,
                    &shared.shutdown,
                );
                write_http_response(
                    &mut writer,
                    "200 OK",
                    "application/x-ndjson",
                    &out,
                    keep_alive,
                )?;
                absorb_session(shared, conn_id, peer, &stats);
            }
            ("GET" | "POST", _) => {
                write_http_response(
                    &mut writer,
                    "404 Not Found",
                    "application/json",
                    b"{\"error\": \"unknown path (use POST /solve or GET /healthz)\"}\n",
                    keep_alive,
                )?;
            }
            _ => {
                write_http_response(
                    &mut writer,
                    "405 Method Not Allowed",
                    "application/json",
                    b"{\"error\": \"unsupported method\"}\n",
                    keep_alive,
                )?;
            }
        }
        if !keep_alive {
            break;
        }
    }
    writer.flush()?;
    writer.get_ref().shutdown_write();
    drain_briefly(&mut reader);
    Ok(())
}

// ---------------------------------------------------------------------------
// The routed batch session: fan-out, in-order fan-in, orphan retry,
// merged trailer
// ---------------------------------------------------------------------------

/// Per-session counters bubbled up into the [`RouteReport`].
#[derive(Clone, Debug, Default)]
struct SessionStats {
    records: usize,
    retried: usize,
    failed: usize,
}

/// One client record in flight: its fan-in slot, its original input line
/// (for restamping), and the raw bytes to (re)send.
#[derive(Clone, Debug)]
struct Pending {
    /// 0-based dispatch order — the fan-in emission key.
    seq: usize,
    /// 1-based client input line — what the response must be stamped
    /// with, wherever it is solved.
    orig_line: usize,
    /// The record's id, for router-side error lines.
    id: Option<String>,
    /// The record line as received (no trailing newline).
    raw: String,
}

/// The reorder buffer: responses arrive tagged with their dispatch `seq`
/// and are flushed to the client strictly in `seq` order.
struct Fanin<W: Write> {
    next: usize,
    ready: BTreeMap<usize, String>,
    writer: W,
    /// The client stopped reading (write error); responses are still
    /// consumed in order so the session drains, just not written.
    client_gone: bool,
}

impl<W: Write> Fanin<W> {
    fn new(writer: W) -> Self {
        Fanin {
            next: 0,
            ready: BTreeMap::new(),
            writer,
            client_gone: false,
        }
    }

    /// Stages one response and flushes the contiguous prefix.
    fn push(&mut self, seq: usize, text: String) {
        self.ready.insert(seq, text);
        while let Some(text) = self.ready.remove(&self.next) {
            if !self.client_gone {
                let wrote = writeln!(self.writer, "{text}").and_then(|_| self.writer.flush());
                if wrote.is_err() {
                    self.client_gone = true;
                }
            }
            self.next += 1;
        }
    }

    /// Defensive hole-fill: any dispatched seq that never produced a
    /// response (a bug or an unwinnable race, not a normal path) answers
    /// as a structured error so the client never counts short.
    fn finish(&mut self, total: usize, meta: &[(usize, Option<String>)]) -> usize {
        let mut holes = 0;
        for (seq, (orig_line, id)) in meta.iter().enumerate().take(total).skip(self.next) {
            self.ready.entry(seq).or_insert_with(|| {
                holes += 1;
                error_line(*orig_line, id.as_deref(), "record lost in routing")
            });
        }
        if total > self.next {
            // re-run the contiguous flush from wherever it stalled
            let restart = self.ready.remove(&self.next);
            if let Some(text) = restart {
                self.push(self.next, text);
            }
        }
        holes
    }
}

/// The cross-thread state of one routed session, passed by copy into
/// scoped reader threads.
struct Ctx<'a, W: Write + Send> {
    shards: &'a [Arc<ShardState>],
    config: &'a RouteConfig,
    shutdown: &'a CancelToken,
    /// Per-shard queues of dispatched-but-unanswered records, in send
    /// order (a shard answers in order, so the front is always the record
    /// its next response belongs to).
    pendings: &'a [Mutex<VecDeque<Pending>>],
    fanin: &'a Mutex<Fanin<W>>,
    /// Records reclaimed from dead shards awaiting re-dispatch.
    orphans: &'a Mutex<Vec<Pending>>,
    /// Summary trailers collected from shards, merged at session end.
    trailers: &'a Mutex<Vec<BatchSummary>>,
    /// Answer counts from shards that died before sending a trailer, so
    /// the merged trailer still accounts for every record.
    untallied: &'a Mutex<Untallied>,
}

// manual impls: derive(Copy) would demand W: Copy, which is neither true
// nor needed — only the references are copied
impl<'a, W: Write + Send> Clone for Ctx<'a, W> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, W: Write + Send> Copy for Ctx<'a, W> {}

#[derive(Default)]
struct Untallied {
    answered: usize,
    answered_ok: usize,
}

/// Routes one client batch: reads records, fans them out across healthy
/// shards, restores input order on the way back, retries orphans, and
/// writes one merged [`BatchSummary`] trailer. Never returns an error —
/// every failure mode degrades to structured error lines on the wire.
fn route_session<R: BufRead, W: Write + Send>(
    client: &mut R,
    writer: W,
    shards: &[Arc<ShardState>],
    config: &RouteConfig,
    shutdown: &CancelToken,
) -> SessionStats {
    let started = Instant::now();
    let mut stats = SessionStats::default();
    let fanin = Mutex::new(Fanin::new(writer));
    let pendings: Vec<Mutex<VecDeque<Pending>>> = (0..shards.len())
        .map(|_| Mutex::new(VecDeque::new()))
        .collect();
    let orphans = Mutex::new(Vec::new());
    let trailers = Mutex::new(Vec::new());
    let untallied = Mutex::new(Untallied::default());
    let ctx = Ctx {
        shards,
        config,
        shutdown,
        pendings: &pendings,
        fanin: &fanin,
        orphans: &orphans,
        trailers: &trailers,
        untallied: &untallied,
    };

    // (orig_line, id) per seq, for hole-filling after the threads join
    let mut seq_meta: Vec<(usize, Option<String>)> = Vec::new();

    std::thread::scope(|scope| {
        let mut streams: Vec<Option<TcpStream>> = (0..shards.len()).map(|_| None).collect();
        let mut pinned: Option<usize> = None;
        let mut orig_line = 0usize;
        let mut buf = Vec::new();
        let mut take_record =
            |buf: &[u8],
             streams: &mut [Option<TcpStream>],
             pinned: &mut Option<usize>,
             stats: &mut SessionStats,
             seq_meta: &mut Vec<(usize, Option<String>)>| {
                orig_line += 1;
                let text = String::from_utf8_lossy(buf);
                let text = text.trim();
                if text.is_empty() {
                    // blank lines consume a line number but produce no
                    // response — mirroring the listener's engine exactly
                    return;
                }
                let seq = seq_meta.len();
                let id = extract_id(text);
                seq_meta.push((orig_line, id.clone()));
                stats.records += 1;
                let pending = Pending {
                    seq,
                    orig_line,
                    id,
                    raw: text.to_string(),
                };
                dispatch(scope, ctx, pending, streams, pinned, stats);
            };
        loop {
            // a shard may have died since the last record: reclaim its
            // orphans onto healthy shards before (not after) blocking on
            // the client again
            drain_orphans(scope, ctx, &mut streams, &mut pinned, &mut stats);
            match client.read_until(b'\n', &mut buf) {
                Ok(0) => {
                    if !buf.is_empty() {
                        take_record(&buf, &mut streams, &mut pinned, &mut stats, &mut seq_meta);
                    }
                    break;
                }
                Ok(_) => {
                    if buf.ends_with(b"\n") {
                        take_record(&buf, &mut streams, &mut pinned, &mut stats, &mut seq_meta);
                        buf.clear();
                    }
                    // no trailing newline = EOF mid-line; the next read
                    // returns Ok(0) and the partial line is taken there
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if shutdown.is_cancelled() {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        // client EOF: half-close every shard stream so each shard ends
        // its batch, answers its tail, sends its trailer and closes —
        // which is what makes the reader threads return
        for stream in streams.iter().flatten() {
            let _ = stream.shutdown(Shutdown::Write);
        }
    });

    // shard readers have all joined; whatever they swept into `orphans`
    // gets retry_rounds chances on whichever shards remain healthy
    let mut leftovers: Vec<Pending> = std::mem::take(&mut *lock(&orphans));
    leftovers.sort_by_key(|p| p.seq);
    let mut queue: VecDeque<Pending> = leftovers.into();
    for _ in 0..config.retry_rounds {
        if queue.is_empty() {
            break;
        }
        let Some(shard) = pick(shards) else { break };
        stats.retried += queue.len();
        retry_batch(&shard, &mut queue, ctx);
    }
    for p in queue {
        stats.failed += 1;
        lock(&fanin).push(
            p.seq,
            error_line(
                p.orig_line,
                p.id.as_deref(),
                "no healthy shard available to solve this record",
            ),
        );
    }

    let holes = lock(&fanin).finish(seq_meta.len(), &seq_meta);
    stats.failed += holes;

    // the merged trailer: the shards' trailers folded together, plus a
    // base accounting for records no shard trailer covers (router-side
    // errors, and answers from shards that died before their trailer)
    let tally = std::mem::take(&mut *lock(&untallied));
    let mut merged = BatchSummary {
        records: stats.failed + tally.answered,
        solved: tally.answered_ok,
        errors: stats.failed + (tally.answered - tally.answered_ok),
        total_cost: 0,
        total_lower_bound: 0,
        aggregate_gap: BatchSummary::aggregate_gap(0, 0),
        wall: started.elapsed(),
        throughput: 0.0,
        solved_per_s: 0.0,
        p50_solve: Duration::ZERO,
        p99_solve: Duration::ZERO,
        cache_hits: 0,
        cache_misses: 0,
        solution_cache_hits: 0,
        solution_cache_misses: 0,
        workers: 0,
        deadline_hits: 0,
    };
    for trailer in lock(&trailers).iter() {
        merged.merge(trailer);
    }
    {
        let mut fanin = lock(&fanin);
        if !fanin.client_gone {
            let wrote = writeln!(fanin.writer, "{}", merged.to_json_line())
                .and_then(|_| fanin.writer.flush());
            if wrote.is_err() {
                fanin.client_gone = true;
            }
        }
    }
    stats
}

/// Pulls the record id out of a raw request line, if it parses at all —
/// best-effort, for router-side error lines only; shards do their own
/// parsing.
fn extract_id(text: &str) -> Option<String> {
    match json::parse(text) {
        Ok(Value::Object(fields)) => fields.iter().find_map(|(k, v)| {
            if k == "id" {
                v.as_str().map(str::to_string)
            } else {
                None
            }
        }),
        _ => None,
    }
}

/// Re-dispatches everything reclaimed from dead shards so far.
fn drain_orphans<'scope, 'a: 'scope, W: Write + Send>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: Ctx<'a, W>,
    streams: &mut [Option<TcpStream>],
    pinned: &mut Option<usize>,
    stats: &mut SessionStats,
) {
    let mut reclaimed: Vec<Pending> = std::mem::take(&mut *lock(ctx.orphans));
    if reclaimed.is_empty() {
        return;
    }
    reclaimed.sort_by_key(|p| p.seq);
    for pending in reclaimed {
        stats.retried += 1;
        dispatch(scope, ctx, pending, streams, pinned, stats);
    }
}

/// Sends one record to the least-loaded healthy shard (or the pinned one
/// in sticky mode), opening the shard stream and its reader thread
/// lazily. On a broken write the record is reclaimed and retried on
/// another shard; with no healthy shard it answers as an error line.
fn dispatch<'scope, 'a: 'scope, W: Write + Send>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: Ctx<'a, W>,
    pending: Pending,
    streams: &mut [Option<TcpStream>],
    pinned: &mut Option<usize>,
    stats: &mut SessionStats,
) {
    loop {
        let shard = if ctx.config.sticky {
            match pinned
                .map(|i| &ctx.shards[i])
                .filter(|s| s.is_healthy())
                .cloned()
            {
                Some(shard) => shard,
                None => match pick(ctx.shards) {
                    Some(shard) => {
                        *pinned = Some(shard.index);
                        shard
                    }
                    None => return fail_record(ctx, pending, stats),
                },
            }
        } else {
            match pick(ctx.shards) {
                Some(shard) => shard,
                None => return fail_record(ctx, pending, stats),
            }
        };
        let i = shard.index;
        if streams[i].is_none() {
            match open_shard_stream(scope, ctx, &shard) {
                Ok(stream) => streams[i] = Some(stream),
                Err(_) => {
                    shard.mark_broken();
                    continue; // pick() will skip it now
                }
            }
        }
        // enqueue BEFORE writing: the reader thread must be able to match
        // the shard's response (or sweep the record on shard death) from
        // the moment any byte of it may be on the wire
        lock(&ctx.pendings[i]).push_back(pending.clone());
        shard.note_dispatched();
        let wrote = {
            let stream = streams[i].as_mut().expect("stream opened above");
            writeln!(stream, "{}", pending.raw).and_then(|_| stream.flush())
        };
        match wrote {
            Ok(()) => return,
            Err(_) => {
                shard.mark_broken();
                if let Some(stream) = streams[i].take() {
                    let _ = stream.shutdown(Shutdown::Both);
                }
                // reclaim our own entry by seq; if it is already gone the
                // reader thread swept it into `orphans` first, and the
                // orphan path owns the retry — retrying here too would
                // answer the record twice
                let reclaimed = {
                    let mut queue = lock(&ctx.pendings[i]);
                    match queue.iter().rposition(|p| p.seq == pending.seq) {
                        Some(pos) => {
                            queue.remove(pos);
                            true
                        }
                        None => false,
                    }
                };
                if !reclaimed {
                    return;
                }
                shard.note_answered();
                stats.retried += 1;
                // a dead pinned shard releases the pin; the next pick
                // re-pins the connection
                if *pinned == Some(i) {
                    *pinned = None;
                }
            }
        }
    }
}

fn fail_record<W: Write + Send>(ctx: Ctx<'_, W>, pending: Pending, stats: &mut SessionStats) {
    stats.failed += 1;
    lock(ctx.fanin).push(
        pending.seq,
        error_line(
            pending.orig_line,
            pending.id.as_deref(),
            "no healthy shard available to solve this record",
        ),
    );
}

/// Connects to a shard and spawns its response-reader thread. The
/// returned stream is the write half; the reader owns a clone.
fn open_shard_stream<'scope, 'a: 'scope, W: Write + Send>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: Ctx<'a, W>,
    shard: &Arc<ShardState>,
) -> std::io::Result<TcpStream> {
    let stream = connect(&shard.addr(), ctx.config.connect_timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(ctx.config.read_timeout))?;
    stream.set_write_timeout(Some(ctx.config.write_timeout))?;
    let read_half = stream.try_clone()?;
    let shard = Arc::clone(shard);
    scope.spawn(move || {
        let i = shard.index;
        let got_trailer = pump_shard_responses(read_half, &shard, &ctx.pendings[i], ctx);
        // sweep: anything still pending on this shard when its stream
        // ended will never be answered by it — orphan for re-dispatch
        let leftovers: Vec<Pending> = lock(&ctx.pendings[i]).drain(..).collect();
        if !leftovers.is_empty() {
            shard.mark_broken();
            for _ in &leftovers {
                shard.note_answered();
            }
            lock(ctx.orphans).extend(leftovers);
        } else if !got_trailer {
            // answered everything it was sent but closed without a
            // trailer — still suspect
            shard.mark_broken();
        }
    });
    Ok(stream)
}

/// Reads one shard stream to EOF: response lines are matched to the
/// front of the shard's pending queue (shards answer in order), restamped
/// with the client's original line number, and staged into the fan-in;
/// the trailer is collected for the merge. Returns whether a trailer
/// arrived (the shard finished its batch cleanly).
fn pump_shard_responses<W: Write + Send>(
    stream: TcpStream,
    shard: &ShardState,
    queue: &Mutex<VecDeque<Pending>>,
    ctx: Ctx<'_, W>,
) -> bool {
    let mut reader = BufReader::new(stream);
    let mut buf: Vec<u8> = Vec::new();
    let mut got_trailer = false;
    let mut answered = 0usize;
    let mut answered_ok = 0usize;
    let mut cancelled_at: Option<Instant> = None;
    let mut take_line = |buf: &[u8], got_trailer: &mut bool| {
        let text = String::from_utf8_lossy(buf);
        let text = text.trim_end_matches(['\n', '\r']);
        if text.trim().is_empty() {
            return;
        }
        // match and pop under one lock: a concurrent write-failure
        // reclaim must not swap the front between the peek and the pop
        let matched = {
            let mut pending = lock(queue);
            match pending.front() {
                Some(front) => match reline_output(text, front.orig_line) {
                    Some(relined) => {
                        let front = pending.pop_front().expect("front observed above");
                        Some((front.seq, relined))
                    }
                    None => None,
                },
                None => None,
            }
        };
        if let Some((seq, relined)) = matched {
            shard.note_answered();
            answered += 1;
            if relined.ok {
                answered_ok += 1;
            }
            lock(ctx.fanin).push(seq, relined.text);
            return;
        }
        if let Ok(summary) = BatchSummary::from_json_line(text) {
            lock(ctx.trailers).push(summary);
            *got_trailer = true;
        }
        // anything else (free-text noise) is dropped: the wire contract
        // promises responses and a trailer, nothing more
    };
    loop {
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => {
                if !buf.is_empty() {
                    take_line(&buf, &mut got_trailer);
                }
                break;
            }
            Ok(_) => {
                if buf.ends_with(b"\n") {
                    take_line(&buf, &mut got_trailer);
                    buf.clear();
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                // after shutdown the shard still gets a drain budget to
                // answer in-flight records before the reader gives up
                if ctx.shutdown.is_cancelled() {
                    let since = cancelled_at.get_or_insert_with(Instant::now);
                    if since.elapsed() >= SHARD_DRAIN_BUDGET {
                        break;
                    }
                }
            }
            Err(_) => break,
        }
    }
    if !got_trailer && answered > 0 {
        // the shard died after answering some records: without its
        // trailer those answers would vanish from the merged accounting
        let mut tally = lock(ctx.untallied);
        tally.answered += answered;
        tally.answered_ok += answered_ok;
    }
    got_trailer
}

/// One retry round: sends every queued orphan to `shard` as a fresh
/// batch and pumps the answers back. Writing and reading run
/// concurrently (a large orphan batch must not deadlock on full socket
/// buffers). Unanswered records stay in `queue` for the next round.
fn retry_batch<W: Write + Send>(
    shard: &Arc<ShardState>,
    queue: &mut VecDeque<Pending>,
    ctx: Ctx<'_, W>,
) {
    let stream = match connect(&shard.addr(), ctx.config.connect_timeout) {
        Ok(stream) => stream,
        Err(_) => {
            shard.mark_broken();
            return;
        }
    };
    if stream.set_nodelay(true).is_err()
        || stream
            .set_read_timeout(Some(ctx.config.read_timeout))
            .is_err()
        || stream
            .set_write_timeout(Some(ctx.config.write_timeout))
            .is_err()
    {
        shard.mark_broken();
        return;
    }
    let write_half = match stream.try_clone() {
        Ok(half) => half,
        Err(_) => {
            shard.mark_broken();
            return;
        }
    };
    let raws: Vec<String> = queue.iter().map(|p| p.raw.clone()).collect();
    for _ in &raws {
        shard.note_dispatched();
    }
    let pending = Mutex::new(std::mem::take(queue));
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut writer = BufWriter::new(write_half);
            for raw in &raws {
                if writeln!(writer, "{raw}").is_err() {
                    break;
                }
            }
            let _ = writer.flush();
            let _ = writer.get_ref().shutdown(Shutdown::Write);
        });
        pump_shard_responses(stream, shard, &pending, ctx);
    });
    let leftovers = pending
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    if !leftovers.is_empty() {
        shard.mark_broken();
        for _ in &leftovers {
            shard.note_answered();
        }
    }
    *queue = leftovers;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanin_flushes_only_contiguous_prefixes() {
        let mut out = Vec::new();
        let mut fanin = Fanin::new(&mut out);
        fanin.push(2, "third".to_string());
        fanin.push(1, "second".to_string());
        assert!(fanin.writer.is_empty(), "nothing emits before seq 0 lands");
        fanin.push(0, "first".to_string());
        assert_eq!(
            String::from_utf8(fanin.writer.clone()).unwrap(),
            "first\nsecond\nthird\n"
        );
        assert_eq!(fanin.next, 3);
    }

    #[test]
    fn fanin_finish_fills_holes_with_error_lines() {
        let mut out = Vec::new();
        let mut fanin = Fanin::new(&mut out);
        fanin.push(0, "first".to_string());
        fanin.push(2, "third".to_string());
        let meta = vec![(1, None), (5, Some("b".to_string())), (9, None)];
        let holes = fanin.finish(3, &meta);
        assert_eq!(holes, 1);
        let text = String::from_utf8(fanin.writer.clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "first");
        assert!(
            lines[1].contains("\"line\": 5"),
            "hole keeps its line: {}",
            lines[1]
        );
        assert!(lines[1].contains("\"id\": \"b\""));
        assert!(lines[1].contains("record lost in routing"));
        assert_eq!(lines[2], "third");
    }

    #[test]
    fn extract_id_is_best_effort() {
        assert_eq!(
            extract_id(r#"{"id": "abc", "instance": {"g": 1, "jobs": []}}"#),
            Some("abc".to_string())
        );
        assert_eq!(extract_id(r#"{"instance": {}}"#), None);
        assert_eq!(extract_id("not json"), None);
        assert_eq!(
            extract_id(r#"{"id": 7}"#),
            None,
            "non-string ids are ignored"
        );
    }

    #[test]
    fn route_report_display_matches_grep_contract() {
        let mut report = RouteReport {
            connections: 2,
            rejected: 0,
            records: 16,
            retried: 3,
            failed: 0,
            health_probes: 0,
        };
        assert_eq!(
            report.to_string(),
            "router: 2 connections (0 rejected) | 16 records routed (3 retried, 0 failed)"
        );
        report.health_probes = 4;
        assert!(report.to_string().ends_with("| health probes: 4"));
    }
}
