//! One backend shard as the router sees it: its address, its health, and
//! the load score the dispatcher balances on.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use busytime_server::http::{parse_healthz, read_http_response, HealthSnapshot};

/// Consecutive failed `/healthz` probes before a shard is demoted to
/// unhealthy. A single missed probe (a GC-ish pause, a dropped packet)
/// must not evict a backend that is mid-batch; a broken pipe observed on
/// the dispatch path demotes immediately via [`ShardState::mark_broken`].
pub const UNHEALTHY_AFTER: usize = 2;

/// One backend `listen` process: address, health, in-flight load, and the
/// last health snapshot the prober got out of it.
#[derive(Debug)]
pub struct ShardState {
    /// Stable 0-based slot in the fleet (`shard-{index}` in spawn mode).
    pub index: usize,
    /// `host:port`; empty until a spawned shard reports its banner.
    addr: Mutex<String>,
    /// Optimistically true from birth: a shard is assumed good until a
    /// dispatch breaks on it or [`UNHEALTHY_AFTER`] probes fail.
    healthy: AtomicBool,
    probe_failures: AtomicUsize,
    /// Records dispatched to this shard and not yet answered (or
    /// reclaimed) — the load signal that exists even before the first
    /// health snapshot does.
    in_flight: AtomicUsize,
    last: Mutex<Option<HealthSnapshot>>,
}

impl ShardState {
    /// A shard at `addr` (may be empty for a spawned shard that has not
    /// bound yet), healthy until proven otherwise.
    pub fn new(index: usize, addr: impl Into<String>) -> Arc<ShardState> {
        Arc::new(ShardState {
            index,
            addr: Mutex::new(addr.into()),
            healthy: AtomicBool::new(true),
            probe_failures: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            last: Mutex::new(None),
        })
    }

    /// The shard's current address (empty = not bound yet).
    pub fn addr(&self) -> String {
        lock(&self.addr).clone()
    }

    /// (Re)binds the shard's address — a spawned child reported its
    /// banner — and marks it healthy: a fresh process starts clean no
    /// matter how its predecessor died.
    pub fn set_addr(&self, addr: &str) {
        *lock(&self.addr) = addr.to_string();
        *lock(&self.last) = None;
        self.probe_failures.store(0, Ordering::SeqCst);
        self.healthy.store(true, Ordering::SeqCst);
    }

    /// Healthy and addressable: eligible for dispatch.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst) && !lock(&self.addr).is_empty()
    }

    /// Demotes the shard immediately — a dispatch write or response read
    /// broke on it; no probe quorum needed.
    pub fn mark_broken(&self) {
        self.probe_failures
            .store(UNHEALTHY_AFTER.max(1), Ordering::SeqCst);
        self.healthy.store(false, Ordering::SeqCst);
    }

    /// A record was written to this shard.
    pub fn note_dispatched(&self) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    /// A previously dispatched record was answered or reclaimed.
    pub fn note_answered(&self) {
        // saturating: a restarted shard must never underflow the counter
        let _ = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1));
    }

    /// The last health snapshot the prober obtained, if any.
    pub fn snapshot(&self) -> Option<HealthSnapshot> {
        lock(&self.last).clone()
    }

    /// The load score the dispatcher minimizes: outstanding work
    /// (router-side in-flight plus the shard's own busy workers and queue)
    /// per worker. Before the first probe lands only the router-side
    /// in-flight count is known, which is exactly the round-robin-ish
    /// signal wanted at cold start.
    pub fn load_score(&self) -> f64 {
        let in_flight = self.in_flight.load(Ordering::SeqCst);
        match &*lock(&self.last) {
            Some(snap) => {
                (in_flight + snap.busy_workers + snap.queue_depth) as f64
                    / snap.workers.max(1) as f64
            }
            None => in_flight as f64,
        }
    }

    /// One synchronous `GET /healthz` round trip, updating the health
    /// state: success resets the failure streak (reviving a demoted
    /// shard), failure counts toward [`UNHEALTHY_AFTER`].
    pub fn check(&self, timeout: Duration) -> std::io::Result<HealthSnapshot> {
        match self.probe(timeout) {
            Ok(snapshot) => {
                *lock(&self.last) = Some(snapshot.clone());
                self.probe_failures.store(0, Ordering::SeqCst);
                self.healthy.store(true, Ordering::SeqCst);
                Ok(snapshot)
            }
            Err(e) => {
                let failures = self.probe_failures.fetch_add(1, Ordering::SeqCst) + 1;
                if failures >= UNHEALTHY_AFTER {
                    self.healthy.store(false, Ordering::SeqCst);
                }
                Err(e)
            }
        }
    }

    fn probe(&self, timeout: Duration) -> std::io::Result<HealthSnapshot> {
        let stream = connect(&self.addr(), timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let mut write_half = stream.try_clone()?;
        write_half
            .write_all(b"GET /healthz HTTP/1.1\r\nHost: shard\r\nConnection: close\r\n\r\n")?;
        write_half.flush()?;
        let mut reader = BufReader::new(stream);
        let response = read_http_response(&mut reader)?;
        if response.status != 200 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("healthz answered {}", response.status),
            ));
        }
        let body = std::str::from_utf8(&response.body).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "healthz body is not UTF-8")
        })?;
        parse_healthz(body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// The healthy shard with the lowest load score, if any shard is healthy.
pub fn pick(shards: &[Arc<ShardState>]) -> Option<Arc<ShardState>> {
    shards
        .iter()
        .filter(|s| s.is_healthy())
        .min_by(|a, b| {
            a.load_score()
                .partial_cmp(&b.load_score())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .cloned()
}

/// Connects with a timeout, resolving `addr` first. `to_socket_addrs` is
/// how `TcpStream::connect` itself resolves, so behavior matches plain
/// connect — just bounded.
pub(crate) fn connect(addr: &str, timeout: Duration) -> std::io::Result<TcpStream> {
    if addr.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            "shard has not reported an address yet",
        ));
    }
    let resolved: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    let mut last_err = None;
    for candidate in resolved {
        match TcpStream::connect_timeout(&candidate, timeout) {
            Ok(stream) => return Ok(stream),
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{addr}: no addresses resolved"),
        )
    }))
}

pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_failures_demote_after_quorum_and_success_revives() {
        // a bound-then-dropped port: connects are refused immediately
        let port = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().port()
        };
        let shard = ShardState::new(0, format!("127.0.0.1:{port}"));
        assert!(shard.is_healthy(), "optimistic at birth");

        let timeout = Duration::from_millis(200);
        assert!(shard.check(timeout).is_err());
        assert!(shard.is_healthy(), "one miss is not a quorum");
        assert!(shard.check(timeout).is_err());
        assert!(!shard.is_healthy(), "two misses demote");

        // a re-bind (spawn-mode restart) starts the shard clean
        shard.set_addr(&format!("127.0.0.1:{port}"));
        assert!(shard.is_healthy());
    }

    #[test]
    fn pick_prefers_low_load_and_skips_broken() {
        let a = ShardState::new(0, "127.0.0.1:1");
        let b = ShardState::new(1, "127.0.0.1:2");
        a.note_dispatched();
        a.note_dispatched();
        b.note_dispatched();
        let picked = pick(&[Arc::clone(&a), Arc::clone(&b)]).unwrap();
        assert_eq!(picked.index, 1, "less loaded shard wins");

        b.mark_broken();
        let picked = pick(&[Arc::clone(&a), Arc::clone(&b)]).unwrap();
        assert_eq!(picked.index, 0, "broken shard is skipped");

        a.mark_broken();
        assert!(pick(&[a, b]).is_none(), "no healthy shard");

        let unbound = ShardState::new(2, "");
        assert!(!unbound.is_healthy(), "no address = not dispatchable");
    }

    #[test]
    fn load_score_ignores_the_reactor_gauges() {
        // a readiness-loop listener reports open_connections / io_threads /
        // outbox_bytes; the dispatch score must keep ranking on solver
        // pressure (busy + queue per worker), not on idle socket counts
        let shard = ShardState::new(0, "127.0.0.1:1");
        let snap = parse_healthz(
            "{\"schema_version\": 1, \"status\": \"ok\", \"workers\": 4, \
             \"busy_workers\": 2, \"queue_depth\": 2, \"active_connections\": 1, \
             \"uptime_ms\": 5, \"open_connections\": 900, \"io_threads\": 2, \
             \"outbox_bytes\": 1048576}",
        )
        .unwrap();
        assert_eq!(snap.open_connections, 900);
        assert_eq!(snap.io_threads, 2);
        assert_eq!(snap.outbox_bytes, 1048576);
        *lock(&shard.last) = Some(snap);
        assert!(
            (shard.load_score() - 1.0).abs() < 1e-9,
            "(0 in-flight + 2 busy + 2 queued) / 4 workers = 1.0, got {}",
            shard.load_score()
        );
    }
}
