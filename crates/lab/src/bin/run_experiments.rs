//! Regenerates every experiment table (E1–E13).
//!
//! Usage:
//!
//! ```text
//! run_experiments [--quick] [e1 e2 …]       # default: all, full scale
//! run_experiments --csv-dir results/ e9     # also dump CSVs
//! ```

use std::io::Write;

use busytime_lab::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Full;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--csv-dir" => {
                csv_dir = Some(
                    it.next()
                        .expect("--csv-dir needs a directory argument")
                        .into(),
                )
            }
            "--help" | "-h" => {
                eprintln!("usage: run_experiments [--quick] [--csv-dir DIR] [e1 … e13]");
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = experiments::all_ids()
            .iter()
            .map(|s| s.to_string())
            .collect();
    }

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let _ = writeln!(
        out,
        "# busytime experiments ({})\n",
        match scale {
            Scale::Quick => "quick scale",
            Scale::Full => "full scale",
        }
    );
    for id in &ids {
        let start = std::time::Instant::now();
        match experiments::run_one(id, scale) {
            Some(table) => {
                let _ = writeln!(out, "{}", table.to_markdown());
                let _ = writeln!(
                    out,
                    "_{} finished in {:.1}s_\n",
                    id,
                    start.elapsed().as_secs_f64()
                );
                if let Some(dir) = &csv_dir {
                    std::fs::create_dir_all(dir).expect("create csv dir");
                    let path = dir.join(format!("{id}.csv"));
                    std::fs::write(&path, table.to_csv()).expect("write csv");
                }
            }
            None => {
                eprintln!("unknown experiment id: {id}");
                std::process::exit(2);
            }
        }
    }
}
