//! Result tables with markdown and CSV rendering.

use std::fmt::Write as _;

/// A rectangular result table.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Table id/title (e.g. "E2: Figure 4 adversarial family").
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each must match `columns` in length.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and columns.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} != column count {}",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as GitHub-flavored markdown (title as an H3 heading).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Serializes to JSON (`{"title", "columns", "rows"}`).
    pub fn to_json(&self) -> String {
        use busytime_instances::json::write_string;
        let mut out = String::new();
        out.push_str("{\"title\": ");
        write_string(&mut out, &self.title);
        let write_list = |out: &mut String, items: &[String]| {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_string(out, item);
            }
            out.push(']');
        };
        out.push_str(", \"columns\": ");
        write_list(&mut out, &self.columns);
        out.push_str(", \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_list(&mut out, row);
        }
        out.push_str("]}");
        out
    }

    /// Parses a table back from [`Table::to_json`] output.
    pub fn from_json(input: &str) -> Result<Table, String> {
        use busytime_instances::json::{parse, Value};
        let strings = |v: &Value, what: &str| -> Result<Vec<String>, String> {
            v.as_array()
                .ok_or_else(|| format!("{what} must be an array"))?
                .iter()
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| format!("{what} entries must be strings"))
                })
                .collect()
        };
        let value = parse(input).map_err(|e| e.to_string())?;
        let title = value
            .field("title")
            .map_err(|e| e.to_string())?
            .as_str()
            .ok_or("title must be a string")?
            .to_string();
        let columns = strings(
            value.field("columns").map_err(|e| e.to_string())?,
            "columns",
        )?;
        let rows = value
            .field("rows")
            .map_err(|e| e.to_string())?
            .as_array()
            .ok_or("rows must be an array")?
            .iter()
            .map(|row| strings(row, "row"))
            .collect::<Result<Vec<_>, _>>()?;
        for row in &rows {
            if row.len() != columns.len() {
                return Err(format!(
                    "ragged table: row width {} != column count {}",
                    row.len(),
                    columns.len()
                ));
            }
        }
        Ok(Table {
            title,
            columns,
            rows,
        })
    }

    /// Renders as CSV (header + rows, no title).
    pub fn to_csv(&self) -> String {
        let escape = |s: &str| {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a ratio with three decimals.
pub fn fmt_ratio(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["name", "note"]);
        t.push_row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a"]);
        t.push_row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(2.0), "2.000");
        assert_eq!(fmt_ratio(2.12345), "2.123");
    }
}
