//! E9: the optical grooming application (Section 4.2).

use busytime_core::algo::{FirstFit, MinMachines, NextFitProper};
use busytime_instances::optical::{hotspot_lightpaths, random_lightpaths};
use busytime_optical::reduction::{
    instance_of_lightpaths, schedule_cost_equals_twice_regenerators,
};
use busytime_optical::solvers::{regenerator_lower_bound, GroomingSolver};
use busytime_optical::PathNetwork;

use crate::table::fmt_ratio;
use busytime_core::pool::par_map;

use crate::{RatioStats, Scale, Table};

/// E9 — Section 4.2: regenerator minimization through the reduction.
///
/// For every configuration the reduction's cost identity
/// (busy time = 2 × regenerators) is asserted, and the busy-time-aware
/// FirstFit grooming is compared against the wavelength-minimizing baseline
/// and the lower bound — the "who wins" shape the paper's motivation
/// predicts: grooming-aware assignment saves regenerators, increasingly so
/// for larger `g`.
pub fn e9_grooming(scale: Scale) -> Table {
    let seeds: u64 = scale.pick(4, 20);
    let nodes = scale.pick(120usize, 400);
    let n_paths = scale.pick(150usize, 1_200);
    let mut table = Table::new(
        "E9 (§4.2): regenerator minimization on path networks",
        &[
            "workload",
            "g",
            "FF regs/LB",
            "MinWL regs/LB",
            "FF wavelengths",
            "MinWL wavelengths",
            "identity holds",
        ],
    );
    for &(label, hotspot) in &[("uniform", false), ("hotspot", true)] {
        for &g in &[1u32, 2, 4, 8, 16] {
            let cells: Vec<(f64, f64, usize, usize, bool)> =
                par_map(&(0..seeds).collect::<Vec<u64>>(), |&seed| {
                    let net = PathNetwork::new(nodes);
                    let paths = if hotspot {
                        hotspot_lightpaths(&net, n_paths, nodes / 2, 0.6, 16, seed)
                    } else {
                        random_lightpaths(&net, n_paths, 16, seed)
                    };
                    let lb = regenerator_lower_bound(&paths, g).max(1);
                    let ff = GroomingSolver::new(FirstFit::paper())
                        .solve(&paths, g)
                        .unwrap();
                    let mm = GroomingSolver::new(MinMachines).solve(&paths, g).unwrap();
                    // identity check on the FirstFit grooming
                    let (busy, regs) =
                        schedule_cost_equals_twice_regenerators(&paths, &ff.grooming, g);
                    let identity = busy == 2 * regs as i64 && regs == ff.regenerators;
                    (
                        ff.regenerators as f64 / lb as f64,
                        mm.regenerators as f64 / lb as f64,
                        ff.wavelengths,
                        mm.wavelengths,
                        identity,
                    )
                });
            let mut ff_stats = RatioStats::new();
            let mut mm_stats = RatioStats::new();
            let mut ff_wl = 0usize;
            let mut mm_wl = 0usize;
            let mut identity_all = true;
            for (ffr, mmr, fw, mw, id) in &cells {
                ff_stats.push(*ffr);
                mm_stats.push(*mmr);
                ff_wl += fw;
                mm_wl += mw;
                identity_all &= id;
            }
            assert!(identity_all, "reduction identity broke for {label}, g={g}");
            table.push_row(vec![
                label.into(),
                g.to_string(),
                fmt_ratio(ff_stats.mean()),
                fmt_ratio(mm_stats.mean()),
                format!("{:.1}", ff_wl as f64 / cells.len() as f64),
                format!("{:.1}", mm_wl as f64 / cells.len() as f64),
                identity_all.to_string(),
            ]);
        }
    }
    table
}

/// E14 (extension) — grooming on **ring** topologies via the cut solver:
/// cut at the least-loaded edge, color crossing arcs with the paper's
/// clique algorithm, the rest with FirstFit on the unrolled path. Compared
/// against one-wavelength-per-arc (no grooming) and per-g monotonicity.
pub fn e14_ring(scale: Scale) -> Table {
    use busytime_optical::ring::{ring_regenerator_count, CutSolver, RingArc, RingNetwork};
    let seeds: u64 = scale.pick(4, 20);
    let nodes = scale.pick(24usize, 64);
    let n_arcs = scale.pick(60usize, 400);
    let mut table = Table::new(
        "E14 (extension): ring grooming via cut + clique/FirstFit",
        &[
            "g",
            "cut regs (mean)",
            "no-grooming regs (mean)",
            "saving",
            "crossing arcs (mean)",
        ],
    );
    for &g in &[1u32, 2, 4, 8] {
        let cells: Vec<(usize, usize, usize)> =
            par_map(&(0..seeds).collect::<Vec<u64>>(), |&seed| {
                let net = RingNetwork::new(nodes);
                // deterministic arcs: mixed hop lengths, some wrapping
                let mut state = seed;
                let mut next = move || {
                    state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    z ^ (z >> 31)
                };
                let arcs: Vec<RingArc> = (0..n_arcs)
                    .map(|_| {
                        let from = (next() as usize) % nodes;
                        let hops = 1 + (next() as usize) % (nodes / 3);
                        RingArc::new(from, (from + hops) % nodes)
                    })
                    .collect();
                let solved = CutSolver::new(FirstFit::paper())
                    .solve(&net, &arcs, g)
                    .expect("cut solver always succeeds");
                let trivial =
                    busytime_optical::Grooming::from_wavelengths((0..arcs.len()).collect());
                let trivial_regs = ring_regenerator_count(&net, &arcs, &trivial, g);
                (solved.regenerators, trivial_regs, solved.crossing_arcs)
            });
        let count = cells.len();
        let (mut cut, mut triv, mut cross) = (0usize, 0usize, 0usize);
        for (c, t, x) in cells {
            assert!(c <= t, "grooming must not cost more than no grooming");
            cut += c;
            triv += t;
            cross += x;
        }
        table.push_row(vec![
            g.to_string(),
            format!("{:.1}", cut as f64 / count as f64),
            format!("{:.1}", triv as f64 / count as f64),
            format!("{:.1}%", 100.0 * (1.0 - cut as f64 / triv.max(1) as f64)),
            format!("{:.1}", cross as f64 / count as f64),
        ]);
    }
    table
}

/// Companion check used by integration tests: on *proper* lightpath sets
/// (no path contained in another) the Greedy algorithm gives the 2-approx
/// of result (iii) in Section 4.2.
pub fn proper_lightpaths_two_approx(seed: u64) -> (usize, usize) {
    let net = PathNetwork::new(200);
    // staircase lightpaths are proper
    let paths: Vec<busytime_optical::Lightpath> = (0..80)
        .map(|i| {
            busytime_optical::Lightpath::new(i + (seed as usize % 7), i + 10 + (seed as usize % 7))
        })
        .filter(|p| net.contains(p))
        .collect();
    let g = 3;
    let inst = instance_of_lightpaths(&paths, g);
    assert!(inst.is_proper());
    let greedy = GroomingSolver::new(NextFitProper::strict())
        .solve(&paths, g)
        .unwrap();
    let lb = regenerator_lower_bound(&paths, g);
    (greedy.regenerators, lb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_quick_shapes() {
        let t = e9_grooming(Scale::Quick);
        assert_eq!(t.len(), 10);
        for row in &t.rows {
            assert_eq!(row[6], "true");
            let ff: f64 = row[2].parse().unwrap();
            let mm: f64 = row[3].parse().unwrap();
            // FirstFit (4-approx through the reduction) never above 4×LB;
            // and never loses badly to the wavelength minimizer
            assert!(ff <= 4.0, "{row:?}");
            assert!(ff <= mm + 0.25, "grooming-aware should win: {row:?}");
        }
    }

    #[test]
    fn proper_lightpath_greedy_within_two() {
        for seed in 0..5 {
            let (regs, lb) = proper_lightpaths_two_approx(seed);
            assert!(regs <= 2 * lb.max(1));
        }
    }
}
