//! E4/E5/E6/E7: the special-case algorithms (Section 3 and the Appendix).

use busytime_core::algo::{
    BoundedLength, CliqueScheduler, FirstFit, GuessMatch, NextFitProper, Scheduler,
};
use busytime_core::verify;
use busytime_exact::ExactBB;
use busytime_instances::adversarial::{clique_tight, ranked_shift};
use busytime_instances::bounded::random_bounded;
use busytime_instances::clique::random_clique;
use busytime_instances::proper::random_proper;

use crate::table::fmt_ratio;
use busytime_core::pool::par_map;

use crate::{RatioStats, Scale, Table};

/// E4 — Theorem 3.1: the Greedy (NextFit) algorithm on proper families.
/// Ratio vs exact OPT must stay ≤ 2; the proof's Claim 1 is checked on every
/// run, and the tighter inner inequality `ALG ≤ OPT + span` as well.
pub fn e4_greedy_proper(scale: Scale) -> Table {
    let seeds: u64 = scale.pick(8, 50);
    let mut table = Table::new(
        "E4 (Thm 3.1): Greedy on proper families vs exact OPT",
        &[
            "n",
            "g",
            "seeds",
            "ratio mean",
            "ratio max",
            "ALG ≤ OPT+span",
            "Claim 1",
            "cap",
        ],
    );
    for &(n, g) in &[(8usize, 2u32), (10, 2), (12, 3), (14, 4)] {
        let cells: Vec<(i64, i64, i64, bool)> =
            par_map(&(0..seeds).collect::<Vec<u64>>(), |&seed| {
                let inst = random_proper(n, 3, 8, 5, g, seed);
                let sched = NextFitProper::strict().schedule(&inst).unwrap();
                let alg = sched.cost(&inst);
                let opt = ExactBB::new().opt_value(&inst).unwrap();
                let claim1 = verify::theorem_3_1_claims(&inst, &sched).is_ok();
                (alg, opt, inst.span(), claim1)
            });
        let mut stats = RatioStats::new();
        let mut inner_ok = true;
        let mut claims_ok = true;
        for (alg, opt, span, claim1) in cells {
            assert!(alg <= 2 * opt, "Theorem 3.1 violated: ALG={alg} OPT={opt}");
            inner_ok &= alg <= opt + span;
            claims_ok &= claim1;
            stats.push_fraction(alg, opt);
        }
        table.push_row(vec![
            n.to_string(),
            g.to_string(),
            seeds.to_string(),
            fmt_ratio(stats.mean()),
            fmt_ratio(stats.max),
            inner_ok.to_string(),
            claims_ok.to_string(),
            "2.000".into(),
        ]);
    }
    table
}

/// E5 — the ranked-shift remark closing Section 3.1: a *proper* family on
/// which FirstFit stays near ratio 3 while the Greedy algorithm is optimal.
pub fn e5_ranked_shift(scale: Scale) -> Table {
    let gs: Vec<u32> = scale.pick(vec![2, 3, 4], vec![2, 3, 4, 5, 6, 8]);
    let mut table = Table::new(
        "E5 (§3.1 remark): ranked-shift proper family — FirstFit vs Greedy",
        &["g", "OPT", "FirstFit", "FF ratio", "Greedy", "Greedy ratio"],
    );
    let rows: Vec<(u32, i64, i64, i64)> = par_map(&gs, |&g| {
        let eps = i64::from(g * (g - 1)) + 8;
        let unit = 50 * eps;
        let fam = ranked_shift(g, unit, eps);
        assert!(fam.instance.is_proper());
        let ff = FirstFit::paper()
            .schedule(&fam.instance)
            .unwrap()
            .cost(&fam.instance);
        let greedy = NextFitProper::strict()
            .schedule(&fam.instance)
            .unwrap()
            .cost(&fam.instance);
        assert_eq!(ff, fam.first_fit, "FirstFit escaped at g={g}");
        assert_eq!(greedy, fam.opt, "Greedy missed the optimum at g={g}");
        (g, fam.opt, ff, greedy)
    });
    for (g, opt, ff, greedy) in rows {
        table.push_row(vec![
            g.to_string(),
            opt.to_string(),
            ff.to_string(),
            fmt_ratio(ff as f64 / opt as f64),
            greedy.to_string(),
            fmt_ratio(greedy as f64 / opt as f64),
        ]);
    }
    table
}

/// E6 — Theorem 3.2 + Lemma 3.3: Bounded_Length with an exact per-segment
/// solver vs the global exact optimum. The segmentation loses at most a
/// factor 2 (Lemma 3.3); the per-segment solver here is exact, so the
/// overall ratio must stay ≤ 2. The literal guess-and-b-match solver is
/// cross-validated against the exact segment solver on the smallest sizes.
pub fn e6_bounded_length(scale: Scale) -> Table {
    let seeds: u64 = scale.pick(8, 40);
    let mut table = Table::new(
        "E6 (Thm 3.2 + Lemma 3.3): Bounded_Length(exact segments) vs global OPT",
        &[
            "n",
            "d",
            "g",
            "seeds",
            "ratio mean",
            "ratio max",
            "cap",
            "guess-match agrees",
        ],
    );
    for &(n, d, g) in &[(8usize, 2i64, 2u32), (10, 3, 2), (12, 3, 3), (14, 4, 3)] {
        let cells: Vec<(i64, i64, bool)> = par_map(&(0..seeds).collect::<Vec<u64>>(), |&seed| {
            let inst = random_bounded(n, (2 * n) as i64, d, g, seed);
            let segmented = BoundedLength::with_solver(ExactBB::new())
                .with_width(d)
                .schedule(&inst)
                .unwrap();
            segmented.validate(&inst).unwrap();
            let opt = ExactBB::new().opt_value(&inst).unwrap();
            // cross-validate the literal guess+b-matching solver on the
            // smallest segments
            let gm_agrees = if n <= 10 {
                let gm = BoundedLength::with_solver(GuessMatch::new())
                    .with_width(d)
                    .schedule(&inst);
                match gm {
                    Ok(s) => s.cost(&inst) == segmented.cost(&inst),
                    Err(_) => true, // segment too large for the guard
                }
            } else {
                true
            };
            (segmented.cost(&inst), opt, gm_agrees)
        });
        let mut stats = RatioStats::new();
        let mut gm_all = true;
        for (seg, opt, gm) in cells {
            assert!(seg <= 2 * opt, "Lemma 3.3 violated: seg={seg} OPT={opt}");
            gm_all &= gm;
            stats.push_fraction(seg, opt);
        }
        table.push_row(vec![
            n.to_string(),
            d.to_string(),
            g.to_string(),
            seeds.to_string(),
            fmt_ratio(stats.mean()),
            fmt_ratio(stats.max),
            "2.000".into(),
            gm_all.to_string(),
        ]);
    }
    table
}

/// E7 — Theorem A.1 / Figure 5: the clique algorithm. Random cliques vs
/// exact OPT stay ≤ 2; the tight family reaches the factor exactly.
pub fn e7_clique(scale: Scale) -> Table {
    let seeds: u64 = scale.pick(10, 60);
    let mut table = Table::new(
        "E7 (Thm A.1, Fig. 5): clique algorithm vs exact OPT",
        &["family", "n", "g", "ratio mean", "ratio max", "cap"],
    );
    for &(n, g) in &[(8usize, 2u32), (10, 3), (12, 4)] {
        let cells: Vec<(i64, i64)> = par_map(&(0..seeds).collect::<Vec<u64>>(), |&seed| {
            let inst = random_clique(n, 100, 40, g, seed);
            let alg = CliqueScheduler::new().schedule(&inst).unwrap().cost(&inst);
            let opt = ExactBB::new().opt_value(&inst).unwrap();
            (alg, opt)
        });
        let mut stats = RatioStats::new();
        for (alg, opt) in cells {
            assert!(alg <= 2 * opt, "Theorem A.1 violated: ALG={alg} OPT={opt}");
            stats.push_fraction(alg, opt);
        }
        table.push_row(vec![
            "random clique".into(),
            n.to_string(),
            g.to_string(),
            fmt_ratio(stats.mean()),
            fmt_ratio(stats.max),
            "2.000".into(),
        ]);
    }
    // tight family: ratio exactly 2 for every g
    for &g in &[2u32, 3, 4, 6] {
        let inst = clique_tight(g, 100);
        let alg = CliqueScheduler::new().schedule(&inst).unwrap().cost(&inst);
        let opt = ExactBB::new().opt_value(&inst).unwrap();
        assert_eq!(alg, 2 * opt, "tight family must hit the factor exactly");
        table.push_row(vec![
            "tight (alternating sides)".into(),
            (2 * g).to_string(),
            g.to_string(),
            fmt_ratio(alg as f64 / opt as f64),
            fmt_ratio(alg as f64 / opt as f64),
            "2.000".into(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_quick() {
        let t = e4_greedy_proper(Scale::Quick);
        for row in &t.rows {
            assert_eq!(row[5], "true", "inner inequality failed: {row:?}");
            assert_eq!(row[6], "true", "Claim 1 failed: {row:?}");
            let max: f64 = row[4].parse().unwrap();
            assert!(max <= 2.0);
        }
    }

    #[test]
    fn e5_quick_separation() {
        let t = e5_ranked_shift(Scale::Quick);
        for row in &t.rows {
            let ff: f64 = row[3].parse().unwrap();
            let greedy: f64 = row[5].parse().unwrap();
            assert!(ff > 1.5, "FirstFit should be trapped: {row:?}");
            assert_eq!(greedy, 1.0, "Greedy should be optimal: {row:?}");
        }
    }

    #[test]
    fn e6_quick() {
        let t = e6_bounded_length(Scale::Quick);
        for row in &t.rows {
            let max: f64 = row[5].parse().unwrap();
            assert!(max <= 2.0);
            assert_eq!(row[7], "true", "guess-match disagreed: {row:?}");
        }
    }

    #[test]
    fn e7_quick_tight_rows_hit_two() {
        let t = e7_clique(Scale::Quick);
        let tight_rows: Vec<_> = t
            .rows
            .iter()
            .filter(|r| r[0].starts_with("tight"))
            .collect();
        assert_eq!(tight_rows.len(), 4);
        for row in tight_rows {
            assert_eq!(row[4], "2.000");
        }
    }
}
