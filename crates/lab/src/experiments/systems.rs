//! E10/E12: systems-side experiments — runtime scaling and the capacitated
//! demand extension.

use busytime_core::algo::demand::{DemandInstance, DemandJob, FirstFitDemand};
use busytime_core::algo::{FirstFit, Scheduler};
use busytime_instances::clique::random_clique;
use busytime_instances::proper::random_proper;
use busytime_instances::random::{uniform, LengthDist};
use busytime_interval::Interval;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::solve::solve_cell;
use crate::table::fmt_ratio;
use crate::{RatioStats, Scale, Table};

/// E10 — runtime scaling. Greedy and the clique algorithm are
/// `O(n log n)`-ish; FirstFit pays for machine probing. Criterion benches
/// (`busytime-bench`) time these precisely; this experiment reads the
/// schedule-phase wall clock off each cell's `SolveReport` (so detection,
/// bounding and validation overheads are excluded) and also records the
/// pipeline's total for FirstFit.
pub fn e10_scalability(scale: Scale) -> Table {
    let sizes: Vec<usize> = scale.pick(vec![1_000, 5_000], vec![1_000, 10_000, 100_000]);
    let mut table = Table::new(
        "E10: runtime scaling (single-threaded, wall clock)",
        &[
            "n",
            "FirstFit ms",
            "pipeline total ms",
            "Greedy ms",
            "Clique ms",
            "FF machines",
        ],
    );
    let schedule_ms = |report: &busytime_core::solve::SolveReport| {
        report
            .phases
            .iter()
            .find(|p| p.name == "schedule")
            .map_or(0.0, |p| p.duration.as_secs_f64() * 1e3)
    };
    for &n in &sizes {
        let inst = uniform(n, n as i64 / 2, LengthDist::Uniform(4, 100), 4, 1);
        let ff = solve_cell(&inst, "first-fit");

        let proper = random_proper(n, 3, 40, 10, 4, 1);
        let greedy = solve_cell(&proper, "next-fit-proper");

        let clique = random_clique(n, 1_000_000, 500_000, 4, 1);
        let clique_report = solve_cell(&clique, "clique");

        table.push_row(vec![
            n.to_string(),
            format!("{:.1}", schedule_ms(&ff)),
            format!("{:.1}", ff.total.as_secs_f64() * 1e3),
            format!("{:.1}", schedule_ms(&greedy)),
            format!("{:.1}", schedule_ms(&clique_report)),
            ff.machines.to_string(),
        ]);
    }
    table
}

/// E12 — the \[15\] extension: jobs with machine-capacity demands.
/// Generalized FirstFit stays feasible and within the 5× cap of \[15\]
/// (measured against the generalized lower bound); with unit demands it
/// degenerates to the paper's FirstFit exactly.
pub fn e12_demand(scale: Scale) -> Table {
    let seeds: u64 = scale.pick(6, 30);
    let n = scale.pick(150usize, 800);
    let mut table = Table::new(
        "E12 ([15] extension): FirstFit with capacity demands",
        &[
            "g",
            "demand dist",
            "ratio mean",
            "ratio max",
            "cap",
            "unit = plain FF",
        ],
    );
    for &g in &[4u32, 8] {
        for &(label, max_demand) in &[
            ("unit", 1u32),
            ("mixed 1..g/2", 0),
            ("heavy 1..g", u32::MAX),
        ] {
            let mut stats = RatioStats::new();
            let mut unit_matches = true;
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(seed ^ 0xD1F7);
                let jobs: Vec<DemandJob> = (0..n)
                    .map(|_| {
                        let s = rng.random_range(0..n as i64 / 2);
                        let l = rng.random_range(4..100);
                        let d = match max_demand {
                            1 => 1,
                            0 => rng.random_range(1..=(g / 2).max(1)),
                            _ => rng.random_range(1..=g),
                        };
                        DemandJob {
                            interval: Interval::with_len(s, l),
                            demand: d,
                        }
                    })
                    .collect();
                let dinst = DemandInstance::new(jobs.clone(), g);
                let sched = FirstFitDemand.schedule(&dinst);
                let cost = dinst.validate(&sched).expect("demand schedule feasible");
                stats.push_fraction(cost, dinst.lower_bound());
                assert!(
                    cost <= 5 * dinst.lower_bound(),
                    "[15]'s 5× cap exceeded: {cost} vs {}",
                    dinst.lower_bound()
                );
                if max_demand == 1 {
                    // cross-check against plain FirstFit
                    let plain =
                        busytime_core::Instance::new(jobs.iter().map(|j| j.interval).collect(), g);
                    let pf = FirstFit::paper().schedule(&plain).unwrap();
                    unit_matches &= pf.assignment() == sched.assignment();
                }
            }
            table.push_row(vec![
                g.to_string(),
                label.into(),
                fmt_ratio(stats.mean()),
                fmt_ratio(stats.max),
                "5.000".into(),
                if max_demand == 1 {
                    unit_matches.to_string()
                } else {
                    "n/a".into()
                },
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_has_rows() {
        let t = e10_scalability(Scale::Quick);
        assert_eq!(t.len(), 2);
        for row in &t.rows {
            let ff_ms: f64 = row[1].parse().unwrap();
            assert!(ff_ms >= 0.0);
        }
    }

    #[test]
    fn e12_quick_caps_hold() {
        let t = e12_demand(Scale::Quick);
        for row in &t.rows {
            let max: f64 = row[3].parse().unwrap();
            assert!(max <= 5.0);
            if row[1] == "unit" {
                assert_eq!(row[5], "true");
            }
        }
    }
}
