//! E1/E2/E3/E11: the FirstFit experiments (Section 2).

use busytime_core::algo::{FirstFit, Scheduler, SortOrder, TieBreak};
use busytime_core::solve::SolveReport;
use busytime_core::{bounds, Instance};
use busytime_instances::adversarial::fig4;
use busytime_instances::random::{uniform, LengthDist};

use crate::solve::solve_cell;
use crate::table::fmt_ratio;
use busytime_core::pool::par_map;

use crate::{RatioStats, Scale, Table};

/// E1 — Theorem 2.1: FirstFit/OPT on random instances (exact OPT for small
/// `n`; the component lower bound as the OPT proxy for large `n`). The
/// theorem asserts the ratio never exceeds 4.
pub fn e1_first_fit_vs_opt(scale: Scale) -> Table {
    let seeds: u64 = scale.pick(6, 40);
    let mut table = Table::new(
        "E1 (Thm 2.1): FirstFit vs OPT on uniform random instances",
        &[
            "n",
            "g",
            "baseline",
            "seeds",
            "ratio min",
            "ratio mean",
            "ratio max",
            "cap",
        ],
    );
    // small instances: exact OPT by branch-and-bound; both costs come out
    // of the unified pipeline as SolveReports
    for &(n, g) in &[(8usize, 2u32), (10, 2), (12, 3), (14, 3), (16, 5)] {
        let cells: Vec<(i64, i64)> = par_map(&(0..seeds).collect::<Vec<u64>>(), |&seed| {
            let inst = uniform(
                n,
                3 * n as i64,
                LengthDist::Uniform(2, 2 * n as i64),
                g,
                seed,
            );
            let ff = solve_cell(&inst, "first-fit").cost;
            let opt = solve_cell(&inst, "exact-bb").cost;
            (ff, opt)
        });
        let mut stats = RatioStats::new();
        for (ff, opt) in cells {
            assert!(ff <= 4 * opt, "Theorem 2.1 violated: FF={ff} OPT={opt}");
            stats.push_fraction(ff, opt);
        }
        table.push_row(vec![
            n.to_string(),
            g.to_string(),
            "exact OPT".into(),
            seeds.to_string(),
            fmt_ratio(stats.min),
            fmt_ratio(stats.mean()),
            fmt_ratio(stats.max),
            "4.000".into(),
        ]);
    }
    // large instances: lower bound as OPT proxy (ratio is an upper bound on
    // the true ratio); one SolveReport carries both cost and certified LB
    let big_n = scale.pick(2_000usize, 20_000);
    for &g in &[2u32, 4, 16] {
        let cells: Vec<(i64, i64)> = par_map(&(0..seeds.min(10)).collect::<Vec<u64>>(), |&seed| {
            let inst = uniform(
                big_n,
                big_n as i64 / 4,
                LengthDist::Uniform(4, 200),
                g,
                seed,
            );
            let report = solve_cell(&inst, "first-fit");
            (report.cost, report.lower_bound)
        });
        let mut stats = RatioStats::new();
        for (ff, lb) in cells {
            assert!(ff <= 4 * lb, "FF exceeded 4×LB: FF={ff} LB={lb}");
            stats.push_fraction(ff, lb);
        }
        table.push_row(vec![
            big_n.to_string(),
            g.to_string(),
            "LB (Obs 1.1)".into(),
            seeds.min(10).to_string(),
            fmt_ratio(stats.min),
            fmt_ratio(stats.mean()),
            fmt_ratio(stats.max),
            "4.000".into(),
        ]);
    }
    table
}

/// E2 — Theorem 2.4 / Figure 4: the adversarial family. Measured FirstFit
/// cost must equal the construction's prediction `g(3·unit − 2·eps)` and the
/// ratio `g(3−2ε′)/(g+1)` must march towards 3.
pub fn e2_fig4_sweep(scale: Scale) -> Table {
    let gs: Vec<u32> = scale.pick(
        vec![2, 3, 4, 6, 8],
        vec![2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64],
    );
    let unit = 1_000i64;
    let eps = 10i64; // ε′ = 0.01 units
    let mut table = Table::new(
        "E2 (Thm 2.4, Fig. 4): FirstFit on the adversarial family (unit=1000, eps=10)",
        &[
            "g",
            "jobs",
            "FF measured",
            "FF predicted",
            "OPT (analytic)",
            "ratio",
            "limit 3-2eps'",
        ],
    );
    let rows: Vec<(u32, usize, i64, i64, i64)> = par_map(&gs, |&g| {
        let fam = fig4(g, unit, eps);
        let sched = FirstFit::paper().schedule(&fam.instance).unwrap();
        sched.validate(&fam.instance).unwrap();
        (
            g,
            fam.instance.len(),
            sched.cost(&fam.instance),
            fam.first_fit,
            fam.opt,
        )
    });
    for (g, jobs, measured, predicted, opt) in rows {
        assert_eq!(
            measured, predicted,
            "FirstFit escaped the Fig. 4 trap at g={g}"
        );
        table.push_row(vec![
            g.to_string(),
            jobs.to_string(),
            measured.to_string(),
            predicted.to_string(),
            opt.to_string(),
            fmt_ratio(measured as f64 / opt as f64),
            fmt_ratio(3.0 - 2.0 * (eps as f64 / unit as f64)),
        ]);
    }
    table
}

/// E3 — Theorem 2.5: the FirstFit ratio band `[3, 4]`. Reports the largest
/// ratio any experiment observed (the Fig. 4 family) against both ends.
pub fn e3_ratio_band(scale: Scale) -> Table {
    let g_max = scale.pick(16u32, 96);
    let unit = 1_000i64;
    let mut table = Table::new(
        "E3 (Thm 2.5): the FirstFit approximation band",
        &[
            "family",
            "largest measured ratio",
            "lower end (Thm 2.4)",
            "upper end (Thm 2.1)",
        ],
    );
    // adversarial family with shrinking eps pushes the measured ratio up
    let mut worst: f64 = 0.0;
    for &eps in &[50i64, 20, 10, 4, 2] {
        let fam = fig4(g_max, unit, eps);
        let cost = FirstFit::paper()
            .schedule(&fam.instance)
            .unwrap()
            .cost(&fam.instance);
        worst = worst.max(cost as f64 / fam.opt as f64);
    }
    table.push_row(vec![
        format!("fig4(g={g_max}, eps→2)"),
        fmt_ratio(worst),
        "3.000 (asymptotic)".into(),
        "4.000".into(),
    ]);
    assert!(worst < 4.0, "ratio above the proven cap");
    assert!(worst > 2.5, "adversarial family lost its bite");
    table
}

/// E11 — ablation: what the paper's *longest-first* sort buys. Runs
/// FirstFit with each sort order on dense random instances and on the
/// Fig. 4 family; longest-first is the only one with a guarantee, and the
/// arrival/shortest orders visibly degrade.
pub fn e11_sort_ablation(scale: Scale) -> Table {
    let seeds: u64 = scale.pick(5, 30);
    let n = scale.pick(200usize, 1_000);
    let variants: Vec<(&str, FirstFit)> = vec![
        (
            "longest (paper)",
            FirstFit {
                order: SortOrder::LongestFirst,
                tie: TieBreak::Input,
            },
        ),
        (
            "shortest",
            FirstFit {
                order: SortOrder::ShortestFirst,
                tie: TieBreak::Input,
            },
        ),
        (
            "arrival",
            FirstFit {
                order: SortOrder::Arrival,
                tie: TieBreak::Input,
            },
        ),
        ("longest+seeded ties", FirstFit::seeded(1)),
    ];
    let mut table = Table::new(
        "E11 (ablation): FirstFit sort order vs cost (ratio to Obs 1.1 LB)",
        &[
            "order",
            "dense random mean",
            "dense random max",
            "fig4(g=8) ratio",
        ],
    );
    for (label, ff) in variants {
        let cells: Vec<f64> = par_map(&(0..seeds).collect::<Vec<u64>>(), |&seed| {
            let inst = uniform(n, n as i64 / 3, LengthDist::Uniform(4, 120), 3, seed);
            let cost = ff.schedule(&inst).unwrap().cost(&inst);
            cost as f64 / bounds::component_lower_bound(&inst) as f64
        });
        let stats = RatioStats::from_iter(cells);
        let fam = fig4(8, 1_000, 10);
        let fig_cost = ff.schedule(&fam.instance).unwrap().cost(&fam.instance);
        table.push_row(vec![
            label.into(),
            fmt_ratio(stats.mean()),
            fmt_ratio(stats.max),
            fmt_ratio(fig_cost as f64 / fam.opt as f64),
        ]);
    }
    table
}

/// Helper shared with E8: one FirstFit [`SolveReport`] carrying the cost
/// and the certified lower bound together (no separate bound recomputation).
pub fn first_fit_report(inst: &Instance) -> SolveReport {
    solve_cell(inst, "first-fit")
}

/// Back-compat shim over [`first_fit_report`].
pub fn first_fit_cost_and_bound(inst: &Instance) -> (i64, i64) {
    let report = first_fit_report(inst);
    (report.cost, report.lower_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_quick_runs_and_respects_cap() {
        let t = e1_first_fit_vs_opt(Scale::Quick);
        assert!(t.len() >= 5);
        for row in &t.rows {
            let max: f64 = row[6].parse().unwrap();
            assert!(max <= 4.0);
        }
    }

    #[test]
    fn e2_quick_matches_predictions() {
        let t = e2_fig4_sweep(Scale::Quick);
        assert_eq!(t.len(), 5);
        // ratio column is monotone increasing in g
        let ratios: Vec<f64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        assert!(ratios.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn e3_band_within_proof() {
        let t = e3_ratio_band(Scale::Quick);
        let worst: f64 = t.rows[0][1].parse().unwrap();
        assert!(worst > 2.5 && worst < 4.0);
    }

    #[test]
    fn e11_paper_order_wins_on_fig4() {
        let t = e11_sort_ablation(Scale::Quick);
        // the longest-first row is first; on fig4 all orders are trapped or
        // worse, so its random-instance mean must be sane (≥ 1)
        let mean: f64 = t.rows[0][1].parse().unwrap();
        assert!(mean >= 1.0);
    }
}
