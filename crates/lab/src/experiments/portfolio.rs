//! E15: the unified solve pipeline and the `Auto` portfolio.
//!
//! Drives every generator family through `SolveRequest` with the `auto`
//! solver and checks the portfolio contract: the dispatch decision matches
//! the detected structure (cliques → clique algorithm, proper families →
//! greedy, bounded lengths → Bounded_Length, otherwise FirstFit), and the
//! returned schedule is never costlier than plain FirstFit through the
//! same pipeline.

use busytime_core::solve::AutoChoice;
use busytime_core::Instance;
use busytime_instances::bounded::random_bounded;
use busytime_instances::clique::random_clique;
use busytime_instances::proper::random_proper;
use busytime_instances::random::{uniform, LengthDist};

use crate::solve::{solve_cell, solve_cell_with_deadline};
use crate::table::fmt_ratio;
use busytime_core::pool::par_map;
use busytime_core::verify;

use crate::{RatioStats, Scale, Table};

fn family(name: &str, n: usize, seed: u64) -> Instance {
    match name {
        "proper" => random_proper(n, 3, 12, 6, 3, seed),
        "clique" => random_clique(n, 1_000, 400, 3, seed),
        "bounded d=3" => random_bounded(n, (3 * n) as i64, 3, 2, seed),
        "uniform wide" => uniform(n, n as i64, LengthDist::Uniform(2, 64), 3, seed),
        other => unreachable!("unknown family {other}"),
    }
}

/// The specialist each family is designed to trigger.
fn nominal_choice(name: &str) -> AutoChoice {
    match name {
        "proper" => AutoChoice::Proper,
        "clique" => AutoChoice::Clique,
        "bounded d=3" => AutoChoice::BoundedLength,
        "uniform wide" => AutoChoice::General,
        other => unreachable!("unknown family {other}"),
    }
}

/// E15 — portfolio dispatch and quality. For every family: how often the
/// `auto` choice equals the family's nominal specialist, the gap achieved,
/// whether `auto` ever lost to FirstFit (it must not — FirstFit is its
/// safety net), and whether every cell stays *interruptible*: the same
/// request under an already-expired deadline must still return a feasible,
/// `check_schedule`-passing incumbent flagged `deadline_hit`.
pub fn e15_portfolio(scale: Scale) -> Table {
    let seeds: u64 = scale.pick(6, 30);
    let n = scale.pick(60usize, 300);
    let mut table = Table::new(
        "E15: Auto portfolio — dispatch per family, gap, dominance over FirstFit",
        &[
            "family",
            "nominal specialist",
            "seeds",
            "dispatched as nominal",
            "gap(auto) mean",
            "gap(FF) mean",
            "auto ≤ FF always",
            "deadline(0) incumbent ok",
        ],
    );
    for name in ["proper", "clique", "bounded d=3", "uniform wide"] {
        let cells: Vec<(AutoChoice, f64, f64, bool, bool)> =
            par_map(&(0..seeds).collect::<Vec<u64>>(), |&seed| {
                let inst = family(name, n, seed);
                let auto = solve_cell(&inst, "auto");
                let ff = solve_cell(&inst, "first-fit");
                let choice = auto.auto_choice.expect("auto requests carry a choice");
                // the dispatch contract: choice follows detected structure
                let f = &auto.features;
                match choice {
                    AutoChoice::Clique => assert!(f.clique),
                    AutoChoice::Proper => assert!(f.proper && !f.clique),
                    AutoChoice::BoundedLength => {
                        assert!(!f.proper && !f.clique && f.min_len >= 1)
                    }
                    AutoChoice::General => {}
                }
                // interruptibility probe: an expired deadline still yields
                // a feasible incumbent, flagged
                let cut = solve_cell_with_deadline(&inst, "auto", std::time::Duration::ZERO);
                let cut_ok =
                    cut.deadline_hit && verify::check_schedule(&inst, &cut.schedule).is_ok();
                (choice, auto.gap, ff.gap, auto.cost <= ff.cost, cut_ok)
            });
        let mut auto_gaps = RatioStats::new();
        let mut ff_gaps = RatioStats::new();
        let mut nominal = 0usize;
        let mut never_lost = true;
        let mut always_interruptible = true;
        for (choice, auto_gap, ff_gap, dominated, cut_ok) in &cells {
            if *choice == nominal_choice(name) {
                nominal += 1;
            }
            auto_gaps.push(*auto_gap);
            ff_gaps.push(*ff_gap);
            never_lost &= dominated;
            always_interruptible &= cut_ok;
        }
        assert!(never_lost, "auto lost to FirstFit on family {name}");
        assert!(
            always_interruptible,
            "a deadline(0) cell returned no valid incumbent on family {name}"
        );
        table.push_row(vec![
            name.into(),
            nominal_choice(name).to_string(),
            seeds.to_string(),
            format!("{nominal}/{}", cells.len()),
            fmt_ratio(auto_gaps.mean()),
            fmt_ratio(ff_gaps.mean()),
            never_lost.to_string(),
            always_interruptible.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_quick_dominance_and_dispatch() {
        let t = e15_portfolio(Scale::Quick);
        assert_eq!(t.len(), 4);
        for row in &t.rows {
            assert_eq!(row[6], "true", "auto lost to FirstFit: {row:?}");
            assert_eq!(row[7], "true", "deadline(0) incumbent invalid: {row:?}");
            // generator families are built to trigger their specialist on
            // every seed (the clique generator is a clique by construction,
            // etc.); allow no misses for clique, which is structural
            if row[0] == "clique" {
                let parts: Vec<&str> = row[3].split('/').collect();
                assert_eq!(
                    parts[0], parts[1],
                    "clique family must always dispatch clique"
                );
            }
        }
    }
}
